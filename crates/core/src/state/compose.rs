//! Composition of entangled state monads — the §5 open problem, realised
//! for state-monad carriers.
//!
//! The paper: *"the question of whether entangled state monads can be
//! composed seems nontrivial; some restrictions on the class of monads
//! considered may be necessary for composability."*
//!
//! For state-based bx the natural construction pairs the hidden states:
//! given `t1 : A ⇔ B` over `S1` and `t2 : B ⇔ C` over `S2`, the composite
//! acts over `(S1, S2)` by propagating updates through the shared `B`
//! interface. The catch — exactly the restriction the paper predicts — is
//! that the composite satisfies the set-bx laws only on the **consistent
//! subset** `{(s1, s2) | t1.view_b(s1) == t2.view_a(s2)}`:
//!
//! * On consistent states, (GS)/(SG) (and (SS), when both components are
//!   overwriteable) all hold, and every update preserves consistency.
//! * Off the consistent subset, (GS) fails: re-writing the current `A` view
//!   repairs the mismatch and therefore *changes* the state. The test suite
//!   demonstrates both halves.
//!
//! [`Composed::is_consistent`], [`Composed::align_left`] and
//! [`Composed::align_right`] make the invariant checkable and restorable.

use std::marker::PhantomData;

use super::ops::SbxOps;

/// The composite of two ops-level bx sharing their middle type `B`.
///
/// The `B` type parameter names the shared interface; it is phantom (a bx
/// implementation could expose several view types, so Rust needs the middle
/// type pinned for coherence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Composed<T1, T2, B> {
    /// The left component, `A ⇔ B` over `S1`.
    pub left: T1,
    /// The right component, `B ⇔ C` over `S2`.
    pub right: T2,
    _mid: PhantomData<fn() -> B>,
}

/// Compose `t1 : A ⇔ B` (over `S1`) with `t2 : B ⇔ C` (over `S2`) into an
/// `A ⇔ C` bx over `(S1, S2)`. See the module docs for the consistency
/// restriction.
pub fn compose<T1, T2, B>(t1: T1, t2: T2) -> Composed<T1, T2, B> {
    Composed {
        left: t1,
        right: t2,
        _mid: PhantomData,
    }
}

impl<S1, S2, A, B, C, T1, T2> SbxOps<(S1, S2), A, C> for Composed<T1, T2, B>
where
    T1: SbxOps<S1, A, B>,
    T2: SbxOps<S2, B, C>,
{
    fn view_a(&self, s: &(S1, S2)) -> A {
        self.left.view_a(&s.0)
    }

    fn view_b(&self, s: &(S1, S2)) -> C {
        self.right.view_b(&s.1)
    }

    /// Write `a` into the left component, then push the refreshed `B` view
    /// through the right component.
    fn update_a(&self, s: (S1, S2), a: A) -> (S1, S2) {
        let s1 = self.left.update_a(s.0, a);
        let b = self.left.view_b(&s1);
        let s2 = self.right.update_a(s.1, b);
        (s1, s2)
    }

    /// Write `c` into the right component, then pull the refreshed `B` view
    /// back through the left component.
    fn update_b(&self, s: (S1, S2), c: C) -> (S1, S2) {
        let s2 = self.right.update_b(s.1, c);
        let b = self.right.view_a(&s2);
        let s1 = self.left.update_b(s.0, b);
        (s1, s2)
    }
}

impl<T1, T2, B> Composed<T1, T2, B> {
    /// Does the paired state agree on the shared `B` interface?
    ///
    /// All four bx operations preserve this invariant, and the set-bx laws
    /// hold exactly on states satisfying it.
    pub fn is_consistent<S1, S2, A, C>(&self, s: &(S1, S2)) -> bool
    where
        T1: SbxOps<S1, A, B>,
        T2: SbxOps<S2, B, C>,
        B: PartialEq,
    {
        self.left.view_b(&s.0) == self.right.view_a(&s.1)
    }

    /// Restore consistency by pushing the left component's `B` view into
    /// the right component (the left side wins).
    pub fn align_right<S1, S2, A, C>(&self, s: (S1, S2)) -> (S1, S2)
    where
        T1: SbxOps<S1, A, B>,
        T2: SbxOps<S2, B, C>,
    {
        let b = self.left.view_b(&s.0);
        let s2 = self.right.update_a(s.1, b);
        (s.0, s2)
    }

    /// Restore consistency by pulling the right component's `B` view into
    /// the left component (the right side wins).
    pub fn align_left<S1, S2, A, C>(&self, s: (S1, S2)) -> (S1, S2)
    where
        T1: SbxOps<S1, A, B>,
        T2: SbxOps<S2, B, C>,
    {
        let b = self.right.view_a(&s.1);
        let s1 = self.left.update_b(s.0, b);
        (s1, s.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::combinators::IdBx;
    use crate::state::statebx::StateBx;

    /// A bx between a Celsius temperature (A) and "Fauxenheit" (B), an
    /// exactly-invertible stand-in (`F = 2C + 32`) so the conversion is a
    /// lawful lens over integers.
    fn c_to_f() -> StateBx<i64, i64, i64> {
        StateBx::new(|s| *s, |s| s * 2 + 32, |_, a| a, |_, b| (b - 32) / 2)
    }

    /// A bx between Fahrenheit (A) and a "hot?" flag rendered as a string
    /// (B), over a Fahrenheit-valued state paired with the last-written
    /// flag to keep updates faithful on the flag side.
    fn f_to_label() -> StateBx<i64, i64, String> {
        StateBx::new(
            |s| *s,
            |s| {
                if *s >= 80 {
                    "hot".to_string()
                } else {
                    "mild".to_string()
                }
            },
            |_, a| a,
            // Writing a label snaps the temperature to a canonical
            // representative of that label, keeping (SG) for label reads.
            |s, b| match b.as_str() {
                "hot" => {
                    if s >= 80 {
                        s
                    } else {
                        80
                    }
                }
                _ => {
                    if s < 80 {
                        s
                    } else {
                        78
                    }
                }
            },
        )
    }

    #[test]
    fn updates_propagate_through_the_middle() {
        let pipeline = compose(c_to_f(), f_to_label());
        // Start consistent: 20C = 72F = "mild".
        let s = (20i64, 72i64);
        assert!(pipeline.is_consistent(&s));
        assert_eq!(pipeline.view_b(&s), "mild");

        // Writing 30C -> 92F -> "hot".
        let s = pipeline.update_a(s, 30);
        assert!(pipeline.is_consistent(&s));
        assert_eq!(s.1, 92);
        assert_eq!(pipeline.view_b(&s), "hot");

        // Writing "mild" pulls the temperature back below the threshold.
        let s = pipeline.update_b(s, "mild".to_string());
        assert!(pipeline.is_consistent(&s));
        assert_eq!(s.1, 78);
        assert_eq!(pipeline.view_a(&s), 23);
    }

    #[test]
    fn updates_preserve_consistency_even_from_inconsistent_starts() {
        let pipeline = compose(c_to_f(), f_to_label());
        let junk = (25i64, 400i64); // 25C is not 400F
        assert!(!pipeline.is_consistent(&junk));
        assert!(pipeline.is_consistent(&pipeline.update_a(junk, 10)));
        assert!(pipeline.is_consistent(&pipeline.update_b(junk, "hot".to_string())));
    }

    #[test]
    fn gs_holds_on_consistent_states_only() {
        // (GS): update_a(s, view_a(s)) == s. On a consistent state this is
        // a no-op; on an inconsistent state it *repairs* s — the paper's
        // predicted restriction.
        let pipeline = compose(c_to_f(), f_to_label());
        let good = (20i64, 72i64);
        let refreshed = pipeline.update_a(good, pipeline.view_a(&good));
        assert_eq!(refreshed, good);

        let bad = (25i64, 400i64);
        let repaired = pipeline.update_a(bad, pipeline.view_a(&bad));
        assert_ne!(repaired, bad);
        assert!(pipeline.is_consistent(&repaired));
    }

    #[test]
    fn align_restores_the_invariant_in_both_directions() {
        let pipeline = compose(c_to_f(), IdBx::<i64>::new());
        let bad = (25i64, 0i64);
        assert!(!pipeline.is_consistent(&bad));

        let right = pipeline.align_right(bad);
        assert!(pipeline.is_consistent(&right));
        assert_eq!(right.0, 25); // left untouched

        let left = pipeline.align_left(bad);
        assert!(pipeline.is_consistent(&left));
        assert_eq!(left.1, 0); // right untouched
    }

    #[test]
    fn composition_with_identity_changes_nothing() {
        let pipeline = compose(c_to_f(), IdBx::<i64>::new());
        let plain = c_to_f();
        let s0 = 20i64;
        let paired = (s0, plain.view_b(&s0));
        assert_eq!(pipeline.view_a(&paired), plain.view_a(&s0));
        assert_eq!(pipeline.view_b(&paired), plain.view_b(&s0));
        let updated = pipeline.update_a(paired, 33);
        assert_eq!(updated.0, plain.update_a(s0, 33));
        assert_eq!(updated.1, plain.view_b(&33));
    }
}
