//! Nondeterministic and probabilistic bx — the §5 programme, implemented.
//!
//! The paper closes: *"our approach offers the possibility of
//! generalisation to reconcile effects such as I/O, nondeterminism,
//! exceptions, or probabilistic choice with bidirectionality"*. The §4
//! I/O case lives in [`crate::effectful`]; this module does nondeterminism
//! and probabilistic choice.
//!
//! A **nondeterministic bx** ([`NdOps`]) has updates that may restore
//! consistency in several ways — the carrier monad is
//! `StateT<S, NonDet>`, the paper's recipe applied to the list monad its
//! §2 uses as the canonical nondeterminism example. A **probabilistic
//! bx** ([`ProbOps`]) weights those restorations — carrier
//! `StateT<S, Dist>`.
//!
//! Law status (checked in tests through the observational machinery):
//! (GG), (GS), (SG) hold for the instances here — in particular (GS)
//! requires *Hippocratic determinism*: writing back the current view must
//! restore in exactly one way, to exactly the current state. (SS)
//! generally fails, because chained choicy updates multiply branches; the
//! tests witness this, mirroring how the §4 I/O example fails (SS).

use esm_monad::{Dist, NonDetOf, StateT, StateTOf, Val};

use crate::monadic::SetBx;

/// A set-bx whose updates may succeed in several ways.
pub trait NdOps<S, A, B> {
    /// Observe the `A` view (queries are deterministic, keeping (GG)).
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view.
    fn view_b(&self, s: &S) -> B;
    /// All consistent states reachable by writing `a`. Must be non-empty;
    /// must be exactly `vec![s]` when `a` is already the current view
    /// (Hippocratic determinism, required for (GS)).
    fn update_a(&self, s: S, a: A) -> Vec<S>;
    /// All consistent states reachable by writing `b`.
    fn update_b(&self, s: S, b: B) -> Vec<S>;
}

/// Adapter embedding a nondeterministic bx into the monadic interface over
/// `StateT<S, NonDet>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonadicNd<T>(pub T);

impl<S, A, B, T> SetBx<StateTOf<S, NonDetOf>, A, B> for MonadicNd<T>
where
    S: Val,
    A: Val,
    B: Val,
    T: NdOps<S, A, B> + Clone + 'static,
{
    fn get_a(&self) -> StateT<S, NonDetOf, A> {
        let t = self.0.clone();
        StateT::new(move |s: S| vec![(t.view_a(&s), s)])
    }

    fn get_b(&self) -> StateT<S, NonDetOf, B> {
        let t = self.0.clone();
        StateT::new(move |s: S| vec![(t.view_b(&s), s)])
    }

    fn set_a(&self, a: A) -> StateT<S, NonDetOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            t.update_a(s, a.clone())
                .into_iter()
                .map(|s2| ((), s2))
                .collect()
        })
    }

    fn set_b(&self, b: B) -> StateT<S, NonDetOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            t.update_b(s, b.clone())
                .into_iter()
                .map(|s2| ((), s2))
                .collect()
        })
    }
}

/// A set-bx whose updates restore consistency with weighted choice.
pub trait ProbOps<S, A, B> {
    /// Observe the `A` view.
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view.
    fn view_b(&self, s: &S) -> B;
    /// Distribution over consistent states after writing `a`. Must be the
    /// point distribution on `s` when `a` is the current view.
    fn update_a(&self, s: S, a: A) -> Dist<S>;
    /// Distribution over consistent states after writing `b`.
    fn update_b(&self, s: S, b: B) -> Dist<S>;
}

/// Adapter embedding a probabilistic bx into the monadic interface over
/// `StateT<S, Dist>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonadicProb<T>(pub T);

impl<S, A, B, T> SetBx<StateTOf<S, esm_monad::DistOf>, A, B> for MonadicProb<T>
where
    S: Val,
    A: Val,
    B: Val,
    T: ProbOps<S, A, B> + Clone + 'static,
{
    fn get_a(&self) -> StateT<S, esm_monad::DistOf, A> {
        let t = self.0.clone();
        StateT::new(move |s: S| Dist::point((t.view_a(&s), s)))
    }

    fn get_b(&self) -> StateT<S, esm_monad::DistOf, B> {
        let t = self.0.clone();
        StateT::new(move |s: S| Dist::point((t.view_b(&s), s)))
    }

    fn set_a(&self, a: A) -> StateT<S, esm_monad::DistOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let d = t.update_a(s, a.clone());
            Dist::weighted(
                d.outcomes()
                    .iter()
                    .map(|(s2, w)| (((), s2.clone()), *w))
                    .collect(),
            )
        })
    }

    fn set_b(&self, b: B) -> StateT<S, esm_monad::DistOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let d = t.update_b(s, b.clone());
            Dist::weighted(
                d.outcomes()
                    .iter()
                    .map(|(s2, w)| (((), s2.clone()), *w))
                    .collect(),
            )
        })
    }
}

/// A concrete nondeterministic bx: state `(a, b)` with consistency
/// `|a − b| ≤ slack`. Writing one side, if the other is now out of range,
/// branches over **all** in-range values for the other side — a genuinely
/// relational repair with multiple minimal candidates (an algebraic bx
/// cannot express the branching; cf. `esm_algebraic::builders::interval_bx`,
/// which must pick one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzyInterval {
    /// The allowed distance between the two sides.
    pub slack: i64,
}

impl NdOps<(i64, i64), i64, i64> for FuzzyInterval {
    fn view_a(&self, s: &(i64, i64)) -> i64 {
        s.0
    }
    fn view_b(&self, s: &(i64, i64)) -> i64 {
        s.1
    }
    fn update_a(&self, s: (i64, i64), a: i64) -> Vec<(i64, i64)> {
        if (a - s.1).abs() <= self.slack {
            vec![(a, s.1)]
        } else {
            ((a - self.slack)..=(a + self.slack))
                .map(|b| (a, b))
                .collect()
        }
    }
    fn update_b(&self, s: (i64, i64), b: i64) -> Vec<(i64, i64)> {
        if (s.0 - b).abs() <= self.slack {
            vec![(s.0, b)]
        } else {
            ((b - self.slack)..=(b + self.slack))
                .map(|a| (a, b))
                .collect()
        }
    }
}

/// The probabilistic refinement of [`FuzzyInterval`]: out-of-range repairs
/// prefer values closer to the written one (weight `slack + 1 − |d|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedInterval {
    /// The allowed distance between the two sides.
    pub slack: i64,
}

impl ProbOps<(i64, i64), i64, i64> for WeightedInterval {
    fn view_a(&self, s: &(i64, i64)) -> i64 {
        s.0
    }
    fn view_b(&self, s: &(i64, i64)) -> i64 {
        s.1
    }
    fn update_a(&self, s: (i64, i64), a: i64) -> Dist<(i64, i64)> {
        if (a - s.1).abs() <= self.slack {
            Dist::point((a, s.1))
        } else {
            Dist::weighted(
                ((a - self.slack)..=(a + self.slack))
                    .map(|b| ((a, b), (self.slack + 1 - (a - b).abs()) as f64))
                    .collect(),
            )
        }
    }
    fn update_b(&self, s: (i64, i64), b: i64) -> Dist<(i64, i64)> {
        if (s.0 - b).abs() <= self.slack {
            Dist::point((s.0, b))
        } else {
            Dist::weighted(
                ((b - self.slack)..=(b + self.slack))
                    .map(|a| ((a, b), (self.slack + 1 - (a - b).abs()) as f64))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::laws::{check_set_bx, LawOptions};
    use esm_monad::{DistOf, MonadFamily};

    type Nd = StateTOf<(i64, i64), NonDetOf>;
    type Pr = StateTOf<(i64, i64), DistOf>;

    fn consistent_states(slack: i64) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        for a in -3..4 {
            for d in -slack..=slack {
                out.push((a, a + d));
            }
        }
        out
    }

    #[test]
    fn nd_updates_branch_only_when_repair_is_needed() {
        let t = FuzzyInterval { slack: 1 };
        // In range: deterministic.
        assert_eq!(t.update_a((0, 0), 1), vec![(1, 0)]);
        // Out of range: three candidate repairs.
        assert_eq!(t.update_a((0, 0), 5), vec![(5, 4), (5, 5), (5, 6)]);
    }

    #[test]
    fn nd_bx_satisfies_gg_gs_sg_observationally() {
        let t = MonadicNd(FuzzyInterval { slack: 1 });
        let ctx = (consistent_states(1), ());
        let samples = [-2i64, 0, 3];
        let v = check_set_bx::<Nd, i64, i64, _>(&t, &samples, &samples, &ctx, LawOptions::BASE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn nd_bx_fails_ss_by_branch_multiplicity() {
        let t = MonadicNd(FuzzyInterval { slack: 1 });
        let ctx = (vec![(0i64, 0i64)], ());
        let samples = [10i64, -10];
        let v = check_set_bx::<Nd, i64, i64, _>(
            &t,
            &samples,
            &samples,
            &ctx,
            LawOptions::OVERWRITEABLE,
        );
        assert!(!v.is_empty());
        assert!(v.iter().all(|viol| viol.law.starts_with("(SS)")), "{v:?}");
    }

    #[test]
    fn nd_set_then_get_returns_written_value_on_every_branch() {
        let t = MonadicNd(FuzzyInterval { slack: 2 });
        let prog = Nd::bind(SetBx::<Nd, i64, i64>::set_a(&t, 9), move |()| {
            SetBx::<Nd, i64, i64>::get_a(&t)
        });
        let branches = prog.run((0, 0));
        assert_eq!(branches.len(), 5); // slack 2: five repairs
        assert!(branches.iter().all(|(a, s)| *a == 9 && s.0 == 9));
    }

    #[test]
    fn prob_bx_satisfies_gg_gs_sg_observationally() {
        let t = MonadicProb(WeightedInterval { slack: 1 });
        let ctx = (consistent_states(1), ());
        let samples = [-2i64, 0, 3];
        let v = check_set_bx::<Pr, i64, i64, _>(&t, &samples, &samples, &ctx, LawOptions::BASE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn prob_repairs_prefer_nearby_values() {
        let t = WeightedInterval { slack: 1 };
        let d = t.update_b((0, 0), 10);
        // Repairs for a: 9, 10, 11 with weights 1, 2, 1.
        assert!((d.probability(|s| s.0 == 10) - 0.5).abs() < 1e-9);
        assert!((d.probability(|s| s.0 == 9) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn prob_hippocratic_updates_are_point_masses() {
        let t = WeightedInterval { slack: 2 };
        let d = t.update_a((3, 4), 3);
        assert_eq!(d.normalized(), vec![((3, 4), 1.0)]);
    }
}
