//! Set-bx (§3.1): a monad equipped with `get`/`set` on two entangled views.

use esm_monad::{MonadFamily, Val};

/// A **set-bx** between `A` and `B` over carrier monad family `M` (§3.1).
///
/// The paper writes `(getA, getB, setA, setB) : A ⇔M B`. The required laws
/// — for each side `X ∈ {A, B}`:
///
/// ```text
/// (GG) getX >>= \s. getX >>= \s'. k s s'   =  getX >>= \s. k s s
/// (GS) getX >>= setX                       =  return ()
/// (SG) setX x >> getX                      =  setX x >> return x
/// ```
///
/// are *not* expressible in Rust's type system; they are checked
/// observationally by [`crate::monadic::laws::check_set_bx`]. A set-bx
/// additionally satisfying
///
/// ```text
/// (SS) setX x >> setX x'                   =  setX x'
/// ```
///
/// is called **overwriteable**.
///
/// Note what is *absent*: no law relates `setA` to `getB` directly. That
/// freedom is exactly what lets the two state structures be *entangled* —
/// setting one side may (and usually does) change the other to restore
/// consistency. See [`crate::monadic::product`] for the unentangled special
/// case and [`crate::state::entangle`] for commutation analysis.
pub trait SetBx<M: MonadFamily, A: Val, B: Val> {
    /// `getA : M A` — observe the `A` view.
    fn get_a(&self) -> M::Repr<A>;
    /// `getB : M B` — observe the `B` view.
    fn get_b(&self) -> M::Repr<B>;
    /// `setA : A -> M ()` — replace the `A` view, restoring consistency.
    fn set_a(&self, a: A) -> M::Repr<()>;
    /// `setB : B -> M ()` — replace the `B` view, restoring consistency.
    fn set_b(&self, b: B) -> M::Repr<()>;
}

/// Blanket implementation for references, so checkers can take `&T`
/// without consuming the bx.
impl<M: MonadFamily, A: Val, B: Val, T: SetBx<M, A, B> + ?Sized> SetBx<M, A, B> for &T {
    fn get_a(&self) -> M::Repr<A> {
        (**self).get_a()
    }
    fn get_b(&self) -> M::Repr<B> {
        (**self).get_b()
    }
    fn set_a(&self, a: A) -> M::Repr<()> {
        (**self).set_a(a)
    }
    fn set_b(&self, b: B) -> M::Repr<()> {
        (**self).set_b(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::product::ProductBx;
    use esm_monad::{State, StateOf};

    #[test]
    fn reference_forwarding_preserves_behaviour() {
        let t: ProductBx<i32, String> = ProductBx::new();
        let r = &t;
        let direct: State<(i32, String), i32> = t.get_a();
        let via_ref: State<(i32, String), i32> = SetBx::<StateOf<(i32, String)>, _, _>::get_a(&r);
        let s0 = (7, "x".to_string());
        assert_eq!(direct.run(s0.clone()), via_ref.run(s0));
    }
}
