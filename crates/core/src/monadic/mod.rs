//! The paper's §3, literally: set-bx and put-bx as structures on an
//! arbitrary monad family, their laws, the §3.3 equivalence, and the §3.4
//! entanglement analysis.

pub mod laws;
pub mod product;
pub mod putbx;
pub mod setbx;
pub mod translate;

pub use product::ProductBx;
pub use putbx::PutBx;
pub use setbx::SetBx;
pub use translate::{Pp2Set, Set2Pp};
