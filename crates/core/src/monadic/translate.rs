//! The §3.3 equivalence between set-bx and put-bx: the translations
//! `set2pp` and `pp2set`, which Lemmas 1–3 of the paper show to be
//! law-preserving and mutually inverse.
//!
//! In Rust the translations are zero-cost wrapper types: [`Set2Pp`] makes a
//! put-bx out of any set-bx, [`Pp2Set`] a set-bx out of any put-bx.
//! `Pp2Set<Set2Pp<T>>` and `T` then denote *observationally equal* set-bx
//! (Lemma 3) — a fact checked by
//! [`crate::monadic::laws::check_roundtrip_set`] and the test suites.

use esm_monad::{MonadFamily, Val};

use super::putbx::PutBx;
use super::setbx::SetBx;

/// `set2pp(t)`: view a set-bx as a put-bx (§3.3).
///
/// ```text
/// set2pp(t).getA    = t.getA
/// set2pp(t).getB    = t.getB
/// set2pp(t).putBA a = t.setA a >> t.getB
/// set2pp(t).putAB b = t.setB b >> t.getA
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Set2Pp<T>(pub T);

impl<M: MonadFamily, A: Val, B: Val, T: SetBx<M, A, B>> PutBx<M, A, B> for Set2Pp<T> {
    fn get_a(&self) -> M::Repr<A> {
        self.0.get_a()
    }
    fn get_b(&self) -> M::Repr<B> {
        self.0.get_b()
    }
    fn put_ba(&self, a: A) -> M::Repr<B> {
        M::seq(self.0.set_a(a), self.0.get_b())
    }
    fn put_ab(&self, b: B) -> M::Repr<A> {
        M::seq(self.0.set_b(b), self.0.get_a())
    }
}

/// `pp2set(u)`: view a put-bx as a set-bx (§3.3).
///
/// ```text
/// pp2set(u).getA   = u.getA
/// pp2set(u).getB   = u.getB
/// pp2set(u).setA a = u.putBA a >> return ()
/// pp2set(u).setB b = u.putAB b >> return ()
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pp2Set<U>(pub U);

impl<M: MonadFamily, A: Val, B: Val, U: PutBx<M, A, B>> SetBx<M, A, B> for Pp2Set<U> {
    fn get_a(&self) -> M::Repr<A> {
        self.0.get_a()
    }
    fn get_b(&self) -> M::Repr<B> {
        self.0.get_b()
    }
    fn set_a(&self, a: A) -> M::Repr<()> {
        M::seq(self.0.put_ba(a), M::pure(()))
    }
    fn set_b(&self, b: B) -> M::Repr<()> {
        M::seq(self.0.put_ab(b), M::pure(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::product::ProductBx;
    use esm_monad::{State, StateOf};

    type S = (i64, i64);

    fn product() -> ProductBx<i64, i64> {
        ProductBx::new()
    }

    #[test]
    fn set2pp_put_ba_sets_then_reads_other_side() {
        let u = Set2Pp(product());
        let ma: State<S, i64> = PutBx::<StateOf<S>, i64, i64>::put_ba(&u, 9);
        assert_eq!(ma.run((0, 4)), (4, (9, 4)));
    }

    #[test]
    fn pp2set_set_a_discards_the_returned_view() {
        let t = Pp2Set(Set2Pp(product()));
        let ma: State<S, ()> = SetBx::<StateOf<S>, i64, i64>::set_a(&t, 9);
        assert_eq!(ma.run((0, 4)), ((), (9, 4)));
    }

    #[test]
    fn roundtrip_agrees_with_original_pointwise() {
        // Lemma 3 specialised: pp2set(set2pp(t)) behaves exactly like t.
        let t = product();
        let rt = Pp2Set(Set2Pp(product()));
        for s0 in [(0i64, 0i64), (3, -7), (100, 100)] {
            let direct: State<S, ()> = t.set_a(5);
            let round: State<S, ()> = SetBx::<StateOf<S>, i64, i64>::set_a(&rt, 5);
            assert_eq!(direct.run(s0), round.run(s0));

            let direct_g: State<S, i64> = t.get_b();
            let round_g: State<S, i64> = SetBx::<StateOf<S>, i64, i64>::get_b(&rt);
            assert_eq!(direct_g.run(s0), round_g.run(s0));
        }
    }
}
