//! Put-bx (§3.2): the symmetric-lens-flavoured presentation, where setting
//! one side immediately returns the refreshed other side.

use esm_monad::{MonadFamily, Val};

/// A **put-bx** between `A` and `B` over carrier monad family `M` (§3.2).
///
/// The paper writes `(getA, getB, putBA, putAB) : A ⇔M B`, with laws
///
/// ```text
/// (GG)  getX >>= \s. getX >>= \s'. k s s'  =  getX >>= \s. k s s
/// (GP)  getA >>= putBA                     =  getB
/// (PG1) putBA a >> getA                    =  putBA a >> return a
/// (PG2) putBA a >> getB                    =  putBA a
/// ```
///
/// (and symmetrically, swapping `A` and `B`), checked observationally by
/// [`crate::monadic::laws::check_put_bx`]. A put-bx additionally satisfying
///
/// ```text
/// (PP)  putBA a >> putBA a'                =  putBA a'
/// ```
///
/// is called **overwriteable**.
///
/// Method-name convention: the paper's superscript is the *returned* side
/// and the subscript the *written* side, so `putBA : A -> M B` is
/// [`PutBx::put_ba`] ("write an `A`, get back the updated `B`").
pub trait PutBx<M: MonadFamily, A: Val, B: Val> {
    /// `getA : M A` — observe the `A` view.
    fn get_a(&self) -> M::Repr<A>;
    /// `getB : M B` — observe the `B` view.
    fn get_b(&self) -> M::Repr<B>;
    /// `putBA : A -> M B` — replace the `A` view, returning the updated `B`.
    fn put_ba(&self, a: A) -> M::Repr<B>;
    /// `putAB : B -> M A` — replace the `B` view, returning the updated `A`.
    fn put_ab(&self, b: B) -> M::Repr<A>;
}

/// Blanket implementation for references, so checkers can take `&T`
/// without consuming the bx.
impl<M: MonadFamily, A: Val, B: Val, T: PutBx<M, A, B> + ?Sized> PutBx<M, A, B> for &T {
    fn get_a(&self) -> M::Repr<A> {
        (**self).get_a()
    }
    fn get_b(&self) -> M::Repr<B> {
        (**self).get_b()
    }
    fn put_ba(&self, a: A) -> M::Repr<B> {
        (**self).put_ba(a)
    }
    fn put_ab(&self, b: B) -> M::Repr<A> {
        (**self).put_ab(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::product::ProductBx;
    use crate::monadic::translate::Set2Pp;
    use esm_monad::{State, StateOf};

    #[test]
    fn put_returns_the_other_side() {
        // On the product bx, putBA writes A and reports the (unchanged) B.
        let t = Set2Pp(ProductBx::<i32, String>::new());
        let ma: State<(i32, String), String> =
            PutBx::<StateOf<(i32, String)>, i32, String>::put_ba(&t, 5);
        let (b, s) = ma.run((0, "keep".to_string()));
        assert_eq!(b, "keep");
        assert_eq!(s, (5, "keep".to_string()));
    }
}
