//! Observational checkers for the §3.1/§3.2 laws and the Lemma 1–3
//! equivalences, stated over any [`ObserveMonad`].
//!
//! Each checker builds the two sides of each law as *computations* in the
//! carrier monad and compares their observations; a mismatch produces a
//! [`LawViolation`] carrying both observations. The sample values supplied
//! by the caller quantify the laws' universally-bound variables.
//!
//! Checkers require `T: Clone + 'static` because laws like
//! `(GS) getA >>= setA` bind one operation of the bx into another: the
//! continuation must own a handle to the bx. Every bx in this workspace is
//! cheaply cloneable (zero-sized or `Rc`-backed).

use esm_monad::laws::{expect_obs_eq, LawViolation};
use esm_monad::{ObsVal, ObserveMonad};

use super::putbx::PutBx;
use super::setbx::SetBx;
use super::translate::{Pp2Set, Set2Pp};

/// Which optional laws to include when checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LawOptions {
    /// Also check the overwrite laws (SS)/(PP). Only *overwriteable*
    /// bx (§3.1/§3.2) are expected to pass these.
    pub overwrite: bool,
}

impl LawOptions {
    /// Check only the mandatory laws.
    pub const BASE: LawOptions = LawOptions { overwrite: false };
    /// Check the mandatory laws plus (SS)/(PP).
    pub const OVERWRITEABLE: LawOptions = LawOptions { overwrite: true };
}

/// Check the set-bx laws (§3.1) for `t`, quantifying the bound variables
/// over the supplied samples and observing in `ctx`.
///
/// Laws checked on the `A` side (the `B` side is symmetric):
///
/// ```text
/// (GG) getA >>= \s. getA >>= \s'. k s s'  =  getA >>= \s. k s s
/// (GS) getA >>= setA                      =  return ()
/// (SG) setA a >> getA                     =  setA a >> return a
/// (SS) setA a >> setA a'                  =  setA a'          [optional]
/// ```
pub fn check_set_bx<M, A, B, T>(
    t: &T,
    samples_a: &[A],
    samples_b: &[B],
    ctx: &M::Ctx,
    opts: LawOptions,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
    B: ObsVal,
    T: SetBx<M, A, B> + Clone + 'static,
{
    let mut out = Vec::new();
    out.extend(check_state_side::<M, A>(
        "A",
        t.get_a(),
        {
            let t = t.clone();
            move |a| t.set_a(a)
        },
        samples_a,
        ctx,
        opts,
    ));
    out.extend(check_state_side::<M, B>(
        "B",
        t.get_b(),
        {
            let t = t.clone();
            move |b| t.set_b(b)
        },
        samples_b,
        ctx,
        opts,
    ));
    out
}

/// Check the four single-cell laws for one side, given that side's `get`
/// computation and `set` operation. This is the paper's observation that a
/// set-bx is exactly a monad with *two* state-monad structures: each side
/// independently satisfies the state-algebra laws.
fn check_state_side<M, X>(
    side: &'static str,
    get: M::Repr<X>,
    set: impl Fn(X) -> M::Repr<()> + Clone + 'static,
    samples: &[X],
    ctx: &M::Ctx,
    opts: LawOptions,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    X: ObsVal,
{
    let mut out = Vec::new();
    let tag = |law: &'static str| -> &'static str {
        // Static names for the A/B-tagged law identifiers.
        match (law, side) {
            ("(GG)", "A") => "(GG)A",
            ("(GG)", "B") => "(GG)B",
            ("(GS)", "A") => "(GS)A",
            ("(GS)", "B") => "(GS)B",
            ("(SG)", "A") => "(SG)A",
            ("(SG)", "B") => "(SG)B",
            ("(SS)", "A") => "(SS)A",
            ("(SS)", "B") => "(SS)B",
            _ => law,
        }
    };

    // (GG) with the observing continuation k x y = return (x, y).
    {
        let g2 = get.clone();
        let lhs: M::Repr<(X, X)> = M::bind(get.clone(), move |x| {
            let g2 = g2.clone();
            M::bind(g2, move |y| M::pure((x.clone(), y)))
        });
        let rhs: M::Repr<(X, X)> = M::bind(get.clone(), |x| M::pure((x.clone(), x)));
        if let Err(v) = expect_obs_eq::<M, (X, X)>(tag("(GG)"), &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (GS) get >>= set = return ()   — written literally.
    {
        let set_ = set.clone();
        let lhs = M::bind(get.clone(), set_);
        let rhs = M::pure(());
        if let Err(v) = expect_obs_eq::<M, ()>(tag("(GS)"), &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (SG) set x >> get = set x >> return x
    for x in samples {
        let lhs = M::seq(set(x.clone()), get.clone());
        let rhs = M::seq(set(x.clone()), M::pure(x.clone()));
        if let Err(v) = expect_obs_eq::<M, X>(tag("(SG)"), &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (SS) set x >> set x' = set x'
    if opts.overwrite {
        for x in samples {
            for x2 in samples {
                let lhs = M::seq(set(x.clone()), set(x2.clone()));
                let rhs = set(x2.clone());
                if let Err(v) = expect_obs_eq::<M, ()>(tag("(SS)"), &lhs, &rhs, ctx) {
                    out.push(v);
                }
            }
        }
    }

    out
}

/// Check the put-bx laws (§3.2) for `u`, quantifying bound variables over
/// the samples and observing in `ctx`.
///
/// ```text
/// (GG)  getX >>= \s. getX >>= \s'. k s s'  =  getX >>= \s. k s s
/// (GP)  getA >>= putBA                     =  getB
/// (PG1) putBA a >> getA                    =  putBA a >> return a
/// (PG2) putBA a >> getB                    =  putBA a
/// (PP)  putBA a >> putBA a'                =  putBA a'        [optional]
/// ```
/// plus the four symmetric (`B`-side) versions.
pub fn check_put_bx<M, A, B, U>(
    u: &U,
    samples_a: &[A],
    samples_b: &[B],
    ctx: &M::Ctx,
    opts: LawOptions,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
    B: ObsVal,
    U: PutBx<M, A, B> + Clone + 'static,
{
    let mut out = Vec::new();

    // (GG) on both getters.
    {
        let ga = u.get_a();
        let g2 = ga.clone();
        let lhs: M::Repr<(A, A)> = M::bind(ga.clone(), move |x| {
            let g2 = g2.clone();
            M::bind(g2, move |y| M::pure((x.clone(), y)))
        });
        let rhs: M::Repr<(A, A)> = M::bind(ga, |x| M::pure((x.clone(), x)));
        if let Err(v) = expect_obs_eq::<M, (A, A)>("(GG)A", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }
    {
        let gb = u.get_b();
        let g2 = gb.clone();
        let lhs: M::Repr<(B, B)> = M::bind(gb.clone(), move |x| {
            let g2 = g2.clone();
            M::bind(g2, move |y| M::pure((x.clone(), y)))
        });
        let rhs: M::Repr<(B, B)> = M::bind(gb, |x| M::pure((x.clone(), x)));
        if let Err(v) = expect_obs_eq::<M, (B, B)>("(GG)B", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (GP) getA >>= putBA = getB — written literally.
    {
        let u2 = u.clone();
        let lhs: M::Repr<B> = M::bind(u.get_a(), move |a| u2.put_ba(a));
        let rhs = u.get_b();
        if let Err(v) = expect_obs_eq::<M, B>("(GP)A", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }
    {
        let u2 = u.clone();
        let lhs: M::Repr<A> = M::bind(u.get_b(), move |b| u2.put_ab(b));
        let rhs = u.get_a();
        if let Err(v) = expect_obs_eq::<M, A>("(GP)B", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (PG1) putBA a >> getA = putBA a >> return a
    for a in samples_a {
        let lhs = M::seq(u.put_ba(a.clone()), u.get_a());
        let rhs = M::seq(u.put_ba(a.clone()), M::pure(a.clone()));
        if let Err(v) = expect_obs_eq::<M, A>("(PG1)A", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }
    for b in samples_b {
        let lhs = M::seq(u.put_ab(b.clone()), u.get_b());
        let rhs = M::seq(u.put_ab(b.clone()), M::pure(b.clone()));
        if let Err(v) = expect_obs_eq::<M, B>("(PG1)B", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (PG2) putBA a >> getB = putBA a
    for a in samples_a {
        let lhs = M::seq(u.put_ba(a.clone()), u.get_b());
        let rhs = u.put_ba(a.clone());
        if let Err(v) = expect_obs_eq::<M, B>("(PG2)A", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }
    for b in samples_b {
        let lhs = M::seq(u.put_ab(b.clone()), u.get_a());
        let rhs = u.put_ab(b.clone());
        if let Err(v) = expect_obs_eq::<M, A>("(PG2)B", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (PP) putBA a >> putBA a' = putBA a'
    if opts.overwrite {
        for a in samples_a {
            for a2 in samples_a {
                let lhs = M::seq(u.put_ba(a.clone()), u.put_ba(a2.clone()));
                let rhs = u.put_ba(a2.clone());
                if let Err(v) = expect_obs_eq::<M, B>("(PP)A", &lhs, &rhs, ctx) {
                    out.push(v);
                }
            }
        }
        for b in samples_b {
            for b2 in samples_b {
                let lhs = M::seq(u.put_ab(b.clone()), u.put_ab(b2.clone()));
                let rhs = u.put_ab(b2.clone());
                if let Err(v) = expect_obs_eq::<M, A>("(PP)B", &lhs, &rhs, ctx) {
                    out.push(v);
                }
            }
        }
    }

    out
}

/// Lemma 3, one direction: `pp2set(set2pp(t))` is observationally equal to
/// `t` as a set-bx.
pub fn check_roundtrip_set<M, A, B, T>(
    t: &T,
    samples_a: &[A],
    samples_b: &[B],
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
    B: ObsVal,
    T: SetBx<M, A, B> + Clone,
{
    let rt = Pp2Set(Set2Pp(t.clone()));
    let mut out = Vec::new();
    if let Err(v) = expect_obs_eq::<M, A>("roundtrip getA", &t.get_a(), &rt.get_a(), ctx) {
        out.push(v);
    }
    if let Err(v) = expect_obs_eq::<M, B>("roundtrip getB", &t.get_b(), &rt.get_b(), ctx) {
        out.push(v);
    }
    for a in samples_a {
        if let Err(v) = expect_obs_eq::<M, ()>(
            "roundtrip setA",
            &t.set_a(a.clone()),
            &rt.set_a(a.clone()),
            ctx,
        ) {
            out.push(v);
        }
    }
    for b in samples_b {
        if let Err(v) = expect_obs_eq::<M, ()>(
            "roundtrip setB",
            &t.set_b(b.clone()),
            &rt.set_b(b.clone()),
            ctx,
        ) {
            out.push(v);
        }
    }
    out
}

/// Lemma 3, other direction: `set2pp(pp2set(u))` is observationally equal
/// to `u` as a put-bx.
pub fn check_roundtrip_put<M, A, B, U>(
    u: &U,
    samples_a: &[A],
    samples_b: &[B],
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
    B: ObsVal,
    U: PutBx<M, A, B> + Clone,
{
    let rt = Set2Pp(Pp2Set(u.clone()));
    let mut out = Vec::new();
    if let Err(v) = expect_obs_eq::<M, A>("roundtrip getA", &u.get_a(), &rt.get_a(), ctx) {
        out.push(v);
    }
    if let Err(v) = expect_obs_eq::<M, B>("roundtrip getB", &u.get_b(), &rt.get_b(), ctx) {
        out.push(v);
    }
    for a in samples_a {
        if let Err(v) = expect_obs_eq::<M, B>(
            "roundtrip putBA",
            &u.put_ba(a.clone()),
            &rt.put_ba(a.clone()),
            ctx,
        ) {
            out.push(v);
        }
    }
    for b in samples_b {
        if let Err(v) = expect_obs_eq::<M, A>(
            "roundtrip putAB",
            &u.put_ab(b.clone()),
            &rt.put_ab(b.clone()),
            ctx,
        ) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monadic::product::ProductBx;
    use esm_monad::StateOf;

    type S = (i64, i64);
    type M = StateOf<S>;

    fn ctx() -> Vec<S> {
        vec![(0, 0), (1, -1), (42, 7)]
    }

    #[test]
    fn product_bx_is_an_overwriteable_set_bx() {
        let t: ProductBx<i64, i64> = ProductBx::new();
        let v =
            check_set_bx::<M, _, _, _>(&t, &[1, 2], &[10, 20], &ctx(), LawOptions::OVERWRITEABLE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn product_bx_translates_to_a_lawful_put_bx() {
        // Lemma 1: set2pp of a set-bx is a put-bx.
        let u = Set2Pp(ProductBx::<i64, i64>::new());
        let v =
            check_put_bx::<M, _, _, _>(&u, &[1, 2], &[10, 20], &ctx(), LawOptions::OVERWRITEABLE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn roundtrips_are_identities() {
        // Lemma 3, both directions, on the product bx.
        let t: ProductBx<i64, i64> = ProductBx::new();
        let v = check_roundtrip_set::<M, _, _, _>(&t, &[1, 2], &[10, 20], &ctx());
        assert!(v.is_empty(), "{v:?}");

        let u = Set2Pp(ProductBx::<i64, i64>::new());
        let v = check_roundtrip_put::<M, _, _, _>(&u, &[1, 2], &[10, 20], &ctx());
        assert!(v.is_empty(), "{v:?}");
    }
}
