//! §3.4: the product state monad `M_{A×B}` as a set-bx — the *unentangled*
//! special case, where the two views share storage but not fate.

use std::marker::PhantomData;

use esm_monad::{gets, modify, MonadFamily, State, StateOf, Val};

use super::setbx::SetBx;

/// The set-bx determined by the state monad on pairs (§3.4):
///
/// ```text
/// getA   = get >>= \(a, _). return a
/// getB   = get >>= \(_, b). return b
/// setA a = get >>= \(_, b). set (a, b)
/// setB b = get >>= \(a, _). set (a, b)
/// ```
///
/// This structure satisfies *stronger* laws than a set-bx requires — in
/// particular commutativity `setA a >> setB b = setB b >> setA a`, because
/// each `set` touches only its own component. A general set-bx need not
/// commute: that failure of commutativity is precisely what the paper calls
/// **entanglement**, and [`crate::state::entangle`] measures it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductBx<A, B>(PhantomData<(A, B)>);

impl<A, B> ProductBx<A, B> {
    /// The product bx between `A` and `B` over hidden state `(A, B)`.
    pub fn new() -> Self {
        ProductBx(PhantomData)
    }
}

impl<A, B> Default for ProductBx<A, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Val, B: Val> SetBx<StateOf<(A, B)>, A, B> for ProductBx<A, B> {
    fn get_a(&self) -> State<(A, B), A> {
        gets(|s: &(A, B)| s.0.clone())
    }

    fn get_b(&self) -> State<(A, B), B> {
        gets(|s: &(A, B)| s.1.clone())
    }

    fn set_a(&self, a: A) -> State<(A, B), ()> {
        modify(move |s: (A, B)| (a.clone(), s.1))
    }

    fn set_b(&self, b: B) -> State<(A, B), ()> {
        modify(move |s: (A, B)| (s.0, b.clone()))
    }
}

/// Check the §3.4 commutativity equation `setA a >> setB b = setB b >> setA a`
/// for an arbitrary set-bx over the state monad, on a given initial state.
///
/// Returns `true` when the two orders agree. For [`ProductBx`] this always
/// holds; for entangled instances (e.g. a lens-derived bx) it generally does
/// not.
pub fn sets_commute_on<S, A, B, T>(t: &T, s0: S, a: A, b: B) -> bool
where
    S: Val + PartialEq,
    A: Val,
    B: Val,
    T: SetBx<StateOf<S>, A, B>,
{
    type M<S> = StateOf<S>;
    let ab: State<S, ()> = M::<S>::seq(t.set_a(a.clone()), t.set_b(b.clone()));
    let ba: State<S, ()> = M::<S>::seq(t.set_b(b), t.set_a(a));
    ab.exec(s0.clone()) == ba.exec(s0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_monad::StateOf;

    type S = (i32, &'static str);
    type M = StateOf<S>;

    #[test]
    fn gets_project_components() {
        let t: ProductBx<i32, &'static str> = ProductBx::new();
        assert_eq!(t.get_a().run((1, "x")), (1, (1, "x")));
        assert_eq!(t.get_b().run((1, "x")), ("x", (1, "x")));
    }

    #[test]
    fn sets_update_only_their_component() {
        let t: ProductBx<i32, &'static str> = ProductBx::new();
        assert_eq!(t.set_a(9).exec((1, "x")), (9, "x"));
        assert_eq!(t.set_b("y").exec((1, "x")), (1, "y"));
    }

    #[test]
    fn product_sets_commute() {
        let t: ProductBx<i32, &'static str> = ProductBx::new();
        assert!(sets_commute_on(&t, (0, "z"), 5, "w"));
    }

    #[test]
    fn set_then_get_roundtrips() {
        let t: ProductBx<i32, &'static str> = ProductBx::new();
        let ma = M::seq(t.set_a(42), t.get_a());
        assert_eq!(ma.eval((0, "q")), 42);
    }
}
