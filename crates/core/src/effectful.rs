//! Effectful bx (§4 "Stateful bx"): bidirectional transformations whose
//! updates perform observable I/O, carried by the monad
//! `M A = S -> IO (A, S)` — here `StateT<S, IoSimOf>`.
//!
//! The paper's example is a set-bx on an `Integer` state whose `set`
//! operations print `"Changed A"` / `"Changed B"` **exactly when the state
//! changes**; it satisfies (GG), (GS) and (SG) but is not a lens of any
//! kind, because no lens can print. The paper adds: *"we should be able to
//! add similar stateful behaviour to any (symmetric) lens or algebraic bx
//! following a similar pattern"* — [`Announce`] is that pattern, as a
//! combinator over any ops-level bx.

use esm_monad::{IoEvent, IoSim, IoSimOf, StateT, StateTOf, Trace, Val};

use crate::monadic::SetBx;
use crate::state::SbxOps;

/// An effectful set-bx over hidden state `S`: like
/// [`crate::state::SbxOps`], but updates may append to an I/O [`Trace`].
pub trait EffOps<S, A, B> {
    /// Observe the `A` view (queries perform no I/O, preserving (GG)).
    fn view_a(&self, s: &S) -> A;
    /// Observe the `B` view.
    fn view_b(&self, s: &S) -> B;
    /// Replace the `A` view, possibly recording I/O events.
    fn update_a(&self, s: S, a: A, io: &mut Trace) -> S;
    /// Replace the `B` view, possibly recording I/O events.
    fn update_b(&self, s: S, b: B, io: &mut Trace) -> S;
}

impl<S, A, B, T: EffOps<S, A, B> + ?Sized> EffOps<S, A, B> for &T {
    fn view_a(&self, s: &S) -> A {
        (**self).view_a(s)
    }
    fn view_b(&self, s: &S) -> B {
        (**self).view_b(s)
    }
    fn update_a(&self, s: S, a: A, io: &mut Trace) -> S {
        (**self).update_a(s, a, io)
    }
    fn update_b(&self, s: S, b: B, io: &mut Trace) -> S {
        (**self).update_b(s, b, io)
    }
}

/// The paper's §4 pattern as a combinator: wrap any pure ops-level bx so
/// that each update prints a message **iff it changed the state**.
///
/// `Announce::trivial_int()` reproduces the paper's example verbatim: the
/// underlying bx is the identity bx on `i64` and the messages are
/// `"Changed A"` / `"Changed B"`.
///
/// Law status (checked in tests, matching the paper's claims): (GG), (GS),
/// (SG) hold — writing back the current view changes nothing, so nothing is
/// printed — while (SS) fails whenever both writes take effect, because the
/// traces differ. The paper accordingly does *not* claim overwriteability
/// for this example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Announce<T> {
    inner: T,
    msg_a: String,
    msg_b: String,
}

impl<T> Announce<T> {
    /// Wrap `inner` with change announcements.
    pub fn new(inner: T, msg_a: impl Into<String>, msg_b: impl Into<String>) -> Self {
        Announce {
            inner,
            msg_a: msg_a.into(),
            msg_b: msg_b.into(),
        }
    }

    /// The underlying pure bx.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl Announce<crate::state::IdBx<i64>> {
    /// The paper's §4 example, verbatim: the trivial bx on an `Integer`
    /// state, printing `"Changed A"` / `"Changed B"` when a set actually
    /// changes the state.
    pub fn trivial_int() -> Self {
        Announce::new(crate::state::IdBx::new(), "Changed A", "Changed B")
    }
}

impl<S, A, B, T> EffOps<S, A, B> for Announce<T>
where
    S: Clone + PartialEq,
    T: SbxOps<S, A, B>,
{
    fn view_a(&self, s: &S) -> A {
        self.inner.view_a(s)
    }

    fn view_b(&self, s: &S) -> B {
        self.inner.view_b(s)
    }

    fn update_a(&self, s: S, a: A, io: &mut Trace) -> S {
        let next = self.inner.update_a(s.clone(), a);
        if next != s {
            io.push(IoEvent::Print(self.msg_a.clone()));
        }
        next
    }

    fn update_b(&self, s: S, b: B, io: &mut Trace) -> S {
        let next = self.inner.update_b(s.clone(), b);
        if next != s {
            io.push(IoEvent::Print(self.msg_b.clone()));
        }
        next
    }
}

/// Adapter embedding an effectful ops-level bx into the paper's monadic
/// interface over the §4 carrier `StateT<S, IoSim>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonadicEff<T>(pub T);

impl<S, A, B, T> SetBx<StateTOf<S, IoSimOf>, A, B> for MonadicEff<T>
where
    S: Val,
    A: Val,
    B: Val,
    T: EffOps<S, A, B> + Clone + 'static,
{
    fn get_a(&self) -> StateT<S, IoSimOf, A> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let a = t.view_a(&s);
            IoSim::silent((a, s))
        })
    }

    fn get_b(&self) -> StateT<S, IoSimOf, B> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let b = t.view_b(&s);
            IoSim::silent((b, s))
        })
    }

    fn set_a(&self, a: A) -> StateT<S, IoSimOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let mut trace = Trace::new();
            let s2 = t.update_a(s, a.clone(), &mut trace);
            IoSim::new(((), s2), trace)
        })
    }

    fn set_b(&self, b: B) -> StateT<S, IoSimOf, ()> {
        let t = self.0.clone();
        StateT::new(move |s: S| {
            let mut trace = Trace::new();
            let s2 = t.update_b(s, b.clone(), &mut trace);
            IoSim::new(((), s2), trace)
        })
    }
}

/// An owned session over an effectful bx, accumulating the I/O trace across
/// operations (the effectful sibling of [`crate::state::BxSession`]).
#[derive(Debug, Clone)]
pub struct EffSession<S, T> {
    state: S,
    bx: T,
    trace: Trace,
}

impl<S, T> EffSession<S, T> {
    /// Start a session from an initial hidden state.
    pub fn new(state: S, bx: T) -> Self {
        EffSession {
            state,
            bx,
            trace: Trace::new(),
        }
    }

    /// The current hidden state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Every I/O event performed so far, in order.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// All printed strings so far, in order.
    pub fn printed(&self) -> Vec<&str> {
        self.trace
            .iter()
            .filter_map(|e| match e {
                IoEvent::Print(s) => Some(s.as_str()),
                IoEvent::Effect(..) => None,
            })
            .collect()
    }
}

impl<S: Clone, T> EffSession<S, T> {
    /// Read the `A` view.
    pub fn a<A, B>(&self) -> A
    where
        T: EffOps<S, A, B>,
    {
        self.bx.view_a(&self.state)
    }

    /// Read the `B` view.
    pub fn b<A, B>(&self) -> B
    where
        T: EffOps<S, A, B>,
    {
        self.bx.view_b(&self.state)
    }

    /// Write the `A` view, appending any I/O to the session trace.
    pub fn set_a<A, B>(&mut self, a: A)
    where
        T: EffOps<S, A, B>,
    {
        self.state = self.bx.update_a(self.state.clone(), a, &mut self.trace);
    }

    /// Write the `B` view, appending any I/O to the session trace.
    pub fn set_b<A, B>(&mut self, b: B)
    where
        T: EffOps<S, A, B>,
    {
        self.state = self.bx.update_b(self.state.clone(), b, &mut self.trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_monad::MonadFamily;

    type M = StateTOf<i64, IoSimOf>;

    #[test]
    fn paper_example_prints_only_on_change() {
        // setA 3 from state 3: no print. setA 4 from state 3: prints.
        let t = MonadicEff(Announce::trivial_int());
        let quiet = t.set_a(3).run(3);
        assert_eq!(quiet.value.1, 3);
        assert!(quiet.printed().is_empty());

        let loud = t.set_a(4).run(3);
        assert_eq!(loud.value.1, 4);
        assert_eq!(loud.printed(), vec!["Changed A"]);
    }

    #[test]
    fn gs_holds_with_effects() {
        // getA >>= setA = return (): reading then writing back produces no
        // output and leaves the state alone.
        let t = MonadicEff(Announce::trivial_int());
        let t2 = t.clone();
        let prog = M::bind(t.get_a(), move |a| t2.set_a(a));
        for s0 in [-7i64, 0, 12] {
            let out = prog.run(s0);
            assert_eq!(out.value.1, s0);
            assert!(out.trace.is_empty());
        }
    }

    #[test]
    fn ss_fails_with_effects() {
        // setA 1 >> setA 2 prints twice; setA 2 prints once. Same final
        // state, different traces — not overwriteable, as the paper notes.
        let t = MonadicEff(Announce::trivial_int());
        let two = M::seq(t.set_a(1), t.set_a(2)).run(0);
        let one = t.set_a(2).run(0);
        assert_eq!(two.value.1, one.value.1);
        assert_eq!(two.printed(), vec!["Changed A", "Changed A"]);
        assert_eq!(one.printed(), vec!["Changed A"]);
    }

    #[test]
    fn session_accumulates_traces() {
        let mut sess = EffSession::new(0i64, Announce::trivial_int());
        sess.set_a(1);
        sess.set_a(1); // no-op, no print
        sess.set_b(2);
        assert_eq!(*sess.state(), 2);
        assert_eq!(sess.printed(), vec!["Changed A", "Changed B"]);
        assert_eq!(sess.a(), 2);
    }

    #[test]
    fn announce_wraps_any_bx() {
        // Announce over the quantity/price bx: only real changes print.
        use crate::state::StateBx;
        let base: StateBx<(u32, u32), u32, u32> = StateBx::new(
            |s: &(u32, u32)| s.0,
            |s| s.0 * s.1,
            |s, q| (q, s.1),
            |s, total| (total / s.1, s.1),
        );
        let eff = Announce::new(base, "qty changed", "total changed");
        let mut sess = EffSession::new((3u32, 10u32), eff);
        sess.set_b(30); // total 30 == current: silent
        sess.set_b(50);
        assert_eq!(sess.printed(), vec!["total changed"]);
        assert_eq!(sess.a(), 5);
    }
}
