//! Programs written against the monadic bx interface — exercising the
//! paper's computational reading: bx operations are ordinary monadic
//! computations that sequence, branch and compose like any other.

use esm_core::monadic::{ProductBx, Set2Pp, SetBx};
use esm_core::state::{IdBx, Monadic};
use esm_monad::{MonadFamily, State, StateOf};

type Pair = (i64, String);
type M = StateOf<Pair>;

fn lens_bx() -> Monadic<esm_core::state::PutToSet<esm_core::state::SetToPut<IdBx<i64>>>> {
    Monadic(esm_core::state::PutToSet(esm_core::state::SetToPut(
        IdBx::new(),
    )))
}

#[test]
fn programs_compose_operations_from_both_sides() {
    // A synchronisation transaction: read A, derive a B, write it, read
    // back A — one monadic program, run like any state computation.
    let t = Monadic(esm_core::state::ProductOps::<i64, String>::new());
    let t2 = t.clone();
    let t3 = t.clone();
    let prog: State<(i64, String), (i64, String)> =
        M::bind(SetBx::<M, i64, String>::get_a(&t), move |a| {
            let label = format!("value-{a}");
            let t4 = t3.clone();
            M::seq(
                SetBx::<M, i64, String>::set_b(&t2, label),
                M::bind(SetBx::<M, i64, String>::get_a(&t3), move |a2| {
                    M::map(SetBx::<M, i64, String>::get_b(&t4), move |b| (a2, b))
                }),
            )
        });
    let ((a, b), s) = prog.run((7, "old".to_string()));
    assert_eq!(a, 7);
    assert_eq!(b, "value-7");
    assert_eq!(s, (7, "value-7".to_string()));
}

#[test]
fn conditional_updates_branch_on_observed_views() {
    // if getA > threshold then setB "high" else setB "low"
    let t = Monadic(esm_core::state::ProductOps::<i64, String>::new());
    let t2 = t.clone();
    let prog = M::bind(SetBx::<M, i64, String>::get_a(&t), move |a| {
        let msg = if a > 10 { "high" } else { "low" };
        SetBx::<M, i64, String>::set_b(&t2, msg.to_string())
    });
    assert_eq!(prog.exec((42, String::new())).1, "high");
    assert_eq!(prog.exec((3, String::new())).1, "low");
}

#[test]
fn sequence_of_puts_through_the_translated_interface() {
    // Drive a put-bx in a fold: push a list of A values, collecting the
    // returned B views (the paper's putBA used as a stream transducer).
    use esm_core::monadic::PutBx;
    type MI = StateOf<(i64, i64)>;
    let u = Set2Pp(ProductBx::<i64, i64>::new());
    let values = [1i64, 2, 3];
    let mut prog: State<(i64, i64), Vec<i64>> = MI::pure(Vec::new());
    for v in values {
        let u2 = u;
        prog = MI::bind(prog, move |acc| {
            MI::map(PutBx::<MI, i64, i64>::put_ba(&u2, v), move |b| {
                let mut acc = acc.clone();
                acc.push(b);
                acc
            })
        });
    }
    let (bs, s) = prog.run((0, 99));
    // B never changes (product bx): every put reports the standing B.
    assert_eq!(bs, vec![99, 99, 99]);
    assert_eq!(s, (3, 99));
}

#[test]
fn rerunnable_computations_support_what_if_analysis() {
    // Build one program, run it from many hypothetical states — the
    // pay-off of re-runnable computations (Repr: Clone).
    let t = lens_bx();
    let t2 = t;
    type MI = StateOf<i64>;
    let prog: State<i64, i64> = MI::bind(SetBx::<MI, i64, i64>::get_a(&t), move |a| {
        MI::seq(SetBx::<MI, i64, i64>::set_b(&t2, a * 2), esm_monad::get())
    });
    for s0 in [-5i64, 0, 21] {
        assert_eq!(prog.eval(s0), s0 * 2);
    }
}

#[test]
fn sequence_helper_collects_view_snapshots() {
    // M::sequence over repeated getA: all snapshots agree ((GG) writ
    // large).
    let t = Monadic(esm_core::state::ProductOps::<i64, String>::new());
    type MI = StateOf<(i64, String)>;
    let reads: Vec<State<(i64, String), i64>> = (0..4)
        .map(|_| SetBx::<MI, i64, String>::get_a(&t))
        .collect();
    let prog = MI::sequence(reads);
    let (snaps, _) = prog.run((9, "x".to_string()));
    assert_eq!(snaps, vec![9, 9, 9, 9]);
}
