//! Output effects: the writer monad family over a [`Monoid`].

use std::marker::PhantomData;

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// A monoid: an associative [`combine`](Monoid::combine) with an
/// [`empty`](Monoid::empty) unit. The accumulator of a writer computation.
pub trait Monoid: Val {
    /// The unit element.
    fn empty() -> Self;
    /// Associative combination. `empty` must be a left and right unit.
    fn combine(self, other: Self) -> Self;
}

impl Monoid for () {
    fn empty() {}
    fn combine(self, _other: ()) {}
}

impl Monoid for String {
    fn empty() -> String {
        String::new()
    }
    fn combine(mut self, other: String) -> String {
        self.push_str(&other);
        self
    }
}

impl<T: Val> Monoid for Vec<T> {
    fn empty() -> Vec<T> {
        Vec::new()
    }
    fn combine(mut self, other: Vec<T>) -> Vec<T> {
        self.extend(other);
        self
    }
}

impl Monoid for u64 {
    fn empty() -> u64 {
        0
    }
    fn combine(self, other: u64) -> u64 {
        self + other
    }
}

/// A writer computation: a value plus accumulated output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writer<W, A> {
    /// The computed value.
    pub value: A,
    /// The accumulated output.
    pub output: W,
}

impl<W: Monoid, A> Writer<W, A> {
    /// A computation yielding `value` with output `output`.
    pub fn new(value: A, output: W) -> Self {
        Writer { value, output }
    }
}

/// Emit output and yield `()`.
pub fn tell<W: Monoid>(w: W) -> Writer<W, ()> {
    Writer::new((), w)
}

/// Family marker for the writer monad over monoid `W`, where
/// `Repr<A> = Writer<W, A>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterOf<W>(PhantomData<W>);

impl<W: Monoid> MonadFamily for WriterOf<W> {
    type Repr<A: Val> = Writer<W, A>;

    fn pure<A: Val>(a: A) -> Writer<W, A> {
        Writer::new(a, W::empty())
    }

    fn bind<A: Val, B: Val, F>(ma: Writer<W, A>, f: F) -> Writer<W, B>
    where
        F: Fn(A) -> Writer<W, B> + 'static,
    {
        let Writer { value, output } = ma;
        let Writer {
            value: b,
            output: out2,
        } = f(value);
        Writer::new(b, output.combine(out2))
    }
}

impl<W: Monoid + ObsVal> ObserveMonad for WriterOf<W> {
    type Ctx = ();
    type Obs<A: ObsVal> = (A, W);

    fn observe<A: ObsVal>(ma: &Writer<W, A>, _ctx: &()) -> (A, W) {
        (ma.value.clone(), ma.output.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = WriterOf<String>;

    #[test]
    fn outputs_accumulate_in_order() {
        let ma = M::seq(tell("hello ".to_string()), M::pure(1));
        let out = M::bind(ma, |x| M::seq(tell("world".to_string()), M::pure(x + 1)));
        assert_eq!(out, Writer::new(2, "hello world".to_string()));
    }

    #[test]
    fn pure_emits_nothing() {
        let ma: Writer<String, i32> = M::pure(5);
        assert_eq!(ma.output, "");
    }

    #[test]
    fn vec_monoid_concatenates() {
        let a: Vec<i32> = vec![1, 2];
        assert_eq!(a.combine(vec![3]), vec![1, 2, 3]);
        assert_eq!(Vec::<i32>::empty(), Vec::<i32>::new());
    }

    #[test]
    fn u64_monoid_is_additive() {
        assert_eq!(3u64.combine(4), 7);
        assert_eq!(u64::empty(), 0);
    }

    #[test]
    fn unit_monoid_is_trivial() {
        let _: () = <() as Monoid>::empty();
        ().combine(());
    }
}
