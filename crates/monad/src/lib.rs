//! Monadic substrate for the *entangled state monads* library.
//!
//! The paper ("Entangled State Monads", BX 2014) works in Haskell, where a
//! monad is a type constructor `M :: * -> *` with `return` and `(>>=)`.
//! Rust has no higher-kinded types, so this crate encodes the same structure
//! with a *generic associated type*: a [`MonadFamily`] is a (usually
//! zero-sized) marker type whose associated `Repr<A>` plays the role of
//! `M A`.
//!
//! Computations are **re-runnable values**: `Repr<A>: Clone`, and `bind`
//! takes an `Fn` continuation. This is what lets the library state the
//! paper's equational laws *observationally*: two computations are equal iff
//! they are indistinguishable under [`ObserveMonad::observe`], and a single
//! computation can be observed under many contexts (e.g. many initial
//! states). The price is that values flowing through a computation must be
//! [`Clone`] (see [`Val`]) — every type this library synchronises (integers,
//! strings, tables, models) is.
//!
//! Families provided:
//!
//! | family | `Repr<A>` | paper role |
//! |---|---|---|
//! | [`IdentityOf`] | `A` | pure computation |
//! | [`StateOf<S>`] | `S -> (A, S)` | §2 "The State Monad" |
//! | [`WriterOf<W>`] | `(A, W)` | output effects |
//! | [`OptionOf`] | `Option<A>` | partiality |
//! | [`ResultOf<E>`] | `Result<A, E>` | exceptions (§5) |
//! | [`NonDetOf`] | `Vec<A>` | nondeterminism (§2 `List` example) |
//! | [`DistOf`] | finite distribution | probabilistic choice (§5) |
//! | [`StateTOf<S, F>`] | `S -> F::Repr<(A, S)>` | §4 `M A = Integer -> IO (A, Integer)` |
//! | [`IoSimOf`] | `(A, Trace)` | §4 Haskell `IO`, simulated as a trace |
//!
//! The simulated-`IO` substitution is deliberate and documented in
//! `DESIGN.md`: the paper only ever observes `IO` through the sequence of
//! `print`s it performs, so a recorded [`Trace`] preserves exactly the
//! observable behaviour while making it testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod dist;
pub mod family;
pub mod identity;
pub mod iosim;
pub mod laws;
pub mod nondet;
pub mod option;
pub mod result;
pub mod state;
pub mod statet;
pub mod writer;

pub use algebra::{check_commutation, check_two_cell_theory, Cell};
pub use dist::{Dist, DistOf};
pub use family::{MonadFamily, ObsVal, ObserveMonad, Val};
pub use identity::IdentityOf;
pub use iosim::{print, IoEvent, IoSim, IoSimOf, Trace};
pub use nondet::NonDetOf;
pub use option::OptionOf;
pub use result::ResultOf;
pub use state::{get, gets, modify, set, State, StateOf};
pub use statet::{lift, state_t_get, state_t_set, StateT, StateTOf};
pub use writer::{tell, Monoid, Writer, WriterOf};
