//! Nondeterminism: the list monad family, exactly the `List` example from
//! §2 of the paper ("non-deterministic computations of type `A -> B` in
//! terms of the List monad").

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// Family marker for the list monad, where `Repr<A> = Vec<A>` and a
/// computation denotes all its possible outcomes in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonDetOf;

impl NonDetOf {
    /// The computation with no outcomes.
    pub fn fail<A: Val>() -> Vec<A> {
        Vec::new()
    }

    /// Nondeterministically choose one of `choices`.
    pub fn choose<A: Val>(choices: impl IntoIterator<Item = A>) -> Vec<A> {
        choices.into_iter().collect()
    }

    /// Nondeterministic alternation: all outcomes of `ma`, then all of `mb`.
    pub fn alt<A: Val>(ma: Vec<A>, mb: Vec<A>) -> Vec<A> {
        let mut out = ma;
        out.extend(mb);
        out
    }
}

impl MonadFamily for NonDetOf {
    type Repr<A: Val> = Vec<A>;

    fn pure<A: Val>(a: A) -> Vec<A> {
        vec![a]
    }

    fn bind<A: Val, B: Val, F>(ma: Vec<A>, f: F) -> Vec<B>
    where
        F: Fn(A) -> Vec<B> + 'static,
    {
        ma.into_iter().flat_map(f).collect()
    }
}

impl ObserveMonad for NonDetOf {
    type Ctx = ();
    type Obs<A: ObsVal> = Vec<A>;

    fn observe<A: ObsVal>(ma: &Vec<A>, _ctx: &()) -> Vec<A> {
        ma.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_explores_all_outcomes() {
        let ma = NonDetOf::choose([1, 2, 3]);
        let out = NonDetOf::bind(ma, |x| vec![x, x * 10]);
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn fail_annihilates_bind() {
        let out: Vec<i32> = NonDetOf::bind(NonDetOf::fail::<i32>(), |x| vec![x]);
        assert!(out.is_empty());
    }

    #[test]
    fn pair_is_cartesian_product() {
        let out = NonDetOf::pair(vec![1, 2], vec!["a", "b"]);
        assert_eq!(out, vec![(1, "a"), (1, "b"), (2, "a"), (2, "b")]);
    }

    #[test]
    fn alt_concatenates() {
        assert_eq!(NonDetOf::alt(vec![1], vec![2, 3]), vec![1, 2, 3]);
    }
}
