//! Exceptions: the `Result` monad family with a fixed error type.

use std::marker::PhantomData;

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// Family marker for the `Result<_, E>` monad, where `Repr<A> = Result<A, E>`.
///
/// Models computations that may abort with an error of type `E` — the
/// "exceptions" effect §5 of the paper proposes reconciling with
/// bidirectionality. [`ResultOf::throw`] raises, [`ResultOf::catch`]
/// handles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultOf<E>(PhantomData<E>);

impl<E: Val> ResultOf<E> {
    /// Raise an exception.
    pub fn throw<A: Val>(e: E) -> Result<A, E> {
        Err(e)
    }

    /// Handle an exception with `handler`; successful computations pass
    /// through untouched.
    pub fn catch<A: Val>(
        ma: Result<A, E>,
        handler: impl FnOnce(E) -> Result<A, E>,
    ) -> Result<A, E> {
        match ma {
            Ok(a) => Ok(a),
            Err(e) => handler(e),
        }
    }
}

impl<E: Val> MonadFamily for ResultOf<E> {
    type Repr<A: Val> = Result<A, E>;

    fn pure<A: Val>(a: A) -> Result<A, E> {
        Ok(a)
    }

    fn bind<A: Val, B: Val, F>(ma: Result<A, E>, f: F) -> Result<B, E>
    where
        F: Fn(A) -> Result<B, E> + 'static,
    {
        ma.and_then(f)
    }
}

impl<E: ObsVal> ObserveMonad for ResultOf<E> {
    type Ctx = ();
    type Obs<A: ObsVal> = Result<A, E>;

    fn observe<A: ObsVal>(ma: &Result<A, E>, _ctx: &()) -> Result<A, E> {
        ma.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = ResultOf<String>;

    #[test]
    fn throw_aborts_bind_chain() {
        let ma: Result<i32, String> = M::throw("boom".to_string());
        let out = M::bind(ma, |x| Ok(x + 1));
        assert_eq!(out, Err("boom".to_string()));
    }

    #[test]
    fn catch_recovers() {
        let ma: Result<i32, String> = M::throw("boom".to_string());
        let out = M::catch(ma, |e| Ok(e.len() as i32));
        assert_eq!(out, Ok(4));
    }

    #[test]
    fn catch_leaves_success_alone() {
        let out = M::catch(Ok(10), |_| Ok(0));
        assert_eq!(out, Ok(10));
    }
}
