//! Partiality: the `Option` monad family.

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// Family marker for the `Option` monad, where `Repr<A> = Option<A>`.
///
/// Models computations that may fail without an error value — the simplest
/// of the effects §5 of the paper proposes combining with bidirectionality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptionOf;

impl OptionOf {
    /// The failing computation.
    pub fn fail<A: Val>() -> Option<A> {
        None
    }

    /// Recover from failure with a fallback computation.
    pub fn or_else<A: Val>(ma: Option<A>, fallback: Option<A>) -> Option<A> {
        ma.or(fallback)
    }

    /// Turn a boolean guard into a computation: succeeds with `()` iff
    /// `cond` holds.
    pub fn guard(cond: bool) -> Option<()> {
        cond.then_some(())
    }
}

impl MonadFamily for OptionOf {
    type Repr<A: Val> = Option<A>;

    fn pure<A: Val>(a: A) -> Option<A> {
        Some(a)
    }

    fn bind<A: Val, B: Val, F>(ma: Option<A>, f: F) -> Option<B>
    where
        F: Fn(A) -> Option<B> + 'static,
    {
        ma.and_then(f)
    }
}

impl ObserveMonad for OptionOf {
    type Ctx = ();
    type Obs<A: ObsVal> = Option<A>;

    fn observe<A: ObsVal>(ma: &Option<A>, _ctx: &()) -> Option<A> {
        ma.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_short_circuits_on_none() {
        let calls = std::cell::Cell::new(0);
        // A continuation that records it was never reached.
        let out: Option<i32> = OptionOf::bind(None::<i32>, move |x| {
            calls.set(calls.get() + 1);
            Some(x + 1)
        });
        assert_eq!(out, None);
    }

    #[test]
    fn guard_encodes_conditions() {
        assert_eq!(OptionOf::guard(true), Some(()));
        assert_eq!(OptionOf::guard(false), None);
    }

    #[test]
    fn or_else_recovers() {
        assert_eq!(OptionOf::or_else(None, Some(5)), Some(5));
        assert_eq!(OptionOf::or_else(Some(1), Some(5)), Some(1));
    }
}
