//! Simulated I/O: the carrier for the paper's §4 "Stateful bx" example.
//!
//! The paper uses Haskell's `IO` monad with a single operation
//! `print : String -> IO ()`. Real `IO` is not observable, so (per the
//! substitution rules in `DESIGN.md`) this crate replaces it with a
//! deterministic *trace* monad: a computation is a value together with the
//! ordered list of [`IoEvent`]s it performed. The paper's example only
//! observes `IO` through which `print`s happen and in what order, so the
//! substitution preserves exactly the behaviour of interest — and makes the
//! claims ("the side-effects only occur when the state is changed")
//! mechanically checkable.

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// A single observable I/O action.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoEvent {
    /// The paper's `print : String -> IO ()`.
    Print(String),
    /// An arbitrary labelled effect, for user extensions: `(channel, payload)`.
    Effect(String, String),
}

impl std::fmt::Display for IoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoEvent::Print(s) => write!(f, "print {s:?}"),
            IoEvent::Effect(chan, payload) => write!(f, "effect {chan}: {payload}"),
        }
    }
}

/// An ordered record of performed I/O actions.
pub type Trace = Vec<IoEvent>;

/// A simulated-I/O computation: a value plus the trace it produced.
///
/// Structurally this is a writer monad over [`Trace`], but it is a distinct
/// type so that I/O traces cannot be confused with ordinary writer output,
/// and so richer event kinds can be added without touching the writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoSim<A> {
    /// The computed value.
    pub value: A,
    /// The I/O actions performed, in order.
    pub trace: Trace,
}

impl<A> IoSim<A> {
    /// A computation that performs `trace` and yields `value`.
    pub fn new(value: A, trace: Trace) -> Self {
        IoSim { value, trace }
    }

    /// A computation that performs no I/O.
    pub fn silent(value: A) -> Self {
        IoSim {
            value,
            trace: Vec::new(),
        }
    }

    /// All strings printed by this computation, in order.
    pub fn printed(&self) -> Vec<&str> {
        self.trace
            .iter()
            .filter_map(|e| match e {
                IoEvent::Print(s) => Some(s.as_str()),
                IoEvent::Effect(..) => None,
            })
            .collect()
    }
}

/// The paper's `print : String -> IO ()`.
pub fn print(msg: impl Into<String>) -> IoSim<()> {
    IoSim::new((), vec![IoEvent::Print(msg.into())])
}

/// Family marker for the simulated-I/O monad, where `Repr<A> = IoSim<A>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSimOf;

impl MonadFamily for IoSimOf {
    type Repr<A: Val> = IoSim<A>;

    fn pure<A: Val>(a: A) -> IoSim<A> {
        IoSim::silent(a)
    }

    fn bind<A: Val, B: Val, F>(ma: IoSim<A>, f: F) -> IoSim<B>
    where
        F: Fn(A) -> IoSim<B> + 'static,
    {
        let IoSim { value, mut trace } = ma;
        let IoSim {
            value: b,
            trace: t2,
        } = f(value);
        trace.extend(t2);
        IoSim::new(b, trace)
    }
}

impl ObserveMonad for IoSimOf {
    type Ctx = ();
    /// Both the value *and* the full trace are observable: two I/O
    /// computations are equal only if they perform the same actions.
    type Obs<A: ObsVal> = (A, Trace);

    fn observe<A: ObsVal>(ma: &IoSim<A>, _ctx: &()) -> (A, Trace) {
        (ma.value.clone(), ma.trace.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_records_one_event() {
        let ma = print("hello");
        assert_eq!(ma.trace, vec![IoEvent::Print("hello".to_string())]);
    }

    #[test]
    fn traces_concatenate_in_program_order() {
        let ma = IoSimOf::seq(print("a"), print("b"));
        let ma = IoSimOf::seq(ma, IoSimOf::pure(7));
        assert_eq!(ma.value, 7);
        assert_eq!(ma.printed(), vec!["a", "b"]);
    }

    #[test]
    fn pure_is_silent() {
        let ma: IoSim<i32> = IoSimOf::pure(1);
        assert!(ma.trace.is_empty());
    }

    #[test]
    fn observation_distinguishes_traces() {
        let loud = IoSimOf::seq(print("x"), IoSimOf::pure(1));
        let quiet: IoSim<i32> = IoSimOf::pure(1);
        assert_ne!(IoSimOf::observe(&loud, &()), IoSimOf::observe(&quiet, &()));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(IoEvent::Print("hi".into()).to_string(), "print \"hi\"");
        assert_eq!(
            IoEvent::Effect("log".into(), "msg".into()).to_string(),
            "effect log: msg"
        );
    }
}
