//! The identity monad: computations with no effects at all.

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// Family marker for the identity monad, where `Repr<A> = A`.
///
/// Useful as the "no effect" base for [`crate::statet::StateTOf`]:
/// `StateT<S, IdentityOf, A>` is isomorphic to plain `State<S, A>`, a fact
/// the test suite checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityOf;

impl MonadFamily for IdentityOf {
    type Repr<A: Val> = A;

    fn pure<A: Val>(a: A) -> A {
        a
    }

    fn bind<A: Val, B: Val, F>(ma: A, f: F) -> B
    where
        F: Fn(A) -> B + 'static,
    {
        f(ma)
    }
}

impl ObserveMonad for IdentityOf {
    type Ctx = ();
    type Obs<A: ObsVal> = A;

    fn observe<A: ObsVal>(ma: &A, _ctx: &()) -> A {
        ma.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_is_identity() {
        assert_eq!(IdentityOf::pure(42), 42);
    }

    #[test]
    fn bind_is_application() {
        assert_eq!(IdentityOf::bind(21, |x| x * 2), 42);
    }

    #[test]
    fn observation_is_the_value() {
        assert_eq!(IdentityOf::observe(&"x", &()), "x");
    }
}
