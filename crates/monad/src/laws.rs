//! Executable forms of the equational laws from §2 of the paper.
//!
//! The paper proves its lemmas in the equational theory of the λ-calculus.
//! This module provides the operational analogue: given an
//! [`ObserveMonad`], each law becomes a pair of computations whose
//! observations must coincide. These helpers are used by this crate's own
//! tests (every family is checked) and re-used by the `esm-lawcheck` crate
//! for the bx-level laws.

use crate::family::{ObsVal, ObserveMonad, Val};

/// A violation of a named law, with printable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawViolation {
    /// Which law failed (e.g. `"left-unit"`, `"(GS)"`).
    pub law: &'static str,
    /// Human-readable description of the differing observations.
    pub detail: String,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "law {} violated: {}", self.law, self.detail)
    }
}

impl std::error::Error for LawViolation {}

/// Check that two computations observe equally, tagging failures with `law`.
pub fn expect_obs_eq<M: ObserveMonad, A: ObsVal>(
    law: &'static str,
    lhs: &M::Repr<A>,
    rhs: &M::Repr<A>,
    ctx: &M::Ctx,
) -> Result<(), LawViolation> {
    crate::family::obs_eq::<M, A>(lhs, rhs, ctx).map_err(|detail| LawViolation { law, detail })
}

/// Left unit: `return a >>= f  =  f a`.
pub fn check_left_unit<M, A, B, F>(a: A, f: F, ctx: &M::Ctx) -> Result<(), LawViolation>
where
    M: ObserveMonad + 'static,
    A: Val,
    B: ObsVal,
    F: Fn(A) -> M::Repr<B> + Clone + 'static,
{
    let lhs = M::bind(M::pure(a.clone()), f.clone());
    let rhs = f(a);
    expect_obs_eq::<M, B>("left-unit", &lhs, &rhs, ctx)
}

/// Right unit: `ma >>= return  =  ma`.
pub fn check_right_unit<M, A>(ma: M::Repr<A>, ctx: &M::Ctx) -> Result<(), LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
{
    let lhs = M::bind(ma.clone(), M::pure);
    expect_obs_eq::<M, A>("right-unit", &lhs, &ma, ctx)
}

/// Associativity: `ma >>= (\a -> f a >>= g)  =  (ma >>= f) >>= g`.
pub fn check_assoc<M, A, B, C, F, G>(
    ma: M::Repr<A>,
    f: F,
    g: G,
    ctx: &M::Ctx,
) -> Result<(), LawViolation>
where
    M: ObserveMonad + 'static,
    A: Val,
    B: Val,
    C: ObsVal,
    F: Fn(A) -> M::Repr<B> + Clone + 'static,
    G: Fn(B) -> M::Repr<C> + Clone + 'static,
{
    let lhs = {
        let f = f.clone();
        let g = g.clone();
        M::bind(ma.clone(), move |a| M::bind(f(a), g.clone()))
    };
    let rhs = M::bind(M::bind(ma, f), g);
    expect_obs_eq::<M, C>("associativity", &lhs, &rhs, ctx)
}

/// Run all three monad laws on the given data, collecting violations.
pub fn check_monad_laws<M, A, B, C, F, G>(
    a: A,
    ma: M::Repr<A>,
    f: F,
    g: G,
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    A: ObsVal,
    B: ObsVal,
    C: ObsVal,
    F: Fn(A) -> M::Repr<B> + Clone + 'static,
    G: Fn(B) -> M::Repr<C> + Clone + 'static,
{
    let mut violations = Vec::new();
    if let Err(v) = check_left_unit::<M, A, B, _>(a, f.clone(), ctx) {
        violations.push(v);
    }
    if let Err(v) = check_right_unit::<M, A>(ma.clone(), ctx) {
        violations.push(v);
    }
    if let Err(v) = check_assoc::<M, A, B, C, _, _>(ma, f, g, ctx) {
        violations.push(v);
    }
    violations
}

/// The four laws of the algebraic theory of a single memory cell (§2),
/// stated for arbitrary `get`/`set` computations in an arbitrary monad.
///
/// This is the abstraction the paper's set-bx definition doubles up: a
/// set-bx is a monad carrying *two* structures passing these checks (minus
/// (SS) unless overwriteable).
pub fn check_state_algebra<M, S>(
    get: M::Repr<S>,
    set: impl Fn(S) -> M::Repr<()> + Clone + 'static,
    sample_a: S,
    sample_b: S,
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    S: ObsVal,
{
    let mut violations = Vec::new();

    // (GG) get >>= \s. get >>= \s'. k s s'  =  get >>= \s. k s s
    // with the observing continuation k s s' = return (s, s').
    {
        let g2 = get.clone();
        let lhs: M::Repr<(S, S)> = M::bind(get.clone(), move |s| {
            let g2 = g2.clone();
            M::bind(g2, move |s2| M::pure((s.clone(), s2)))
        });
        let rhs: M::Repr<(S, S)> = M::bind(get.clone(), |s| M::pure((s.clone(), s)));
        if let Err(v) = expect_obs_eq::<M, (S, S)>("(GG)", &lhs, &rhs, ctx) {
            violations.push(v);
        }
    }

    // (GS) get >>= set  =  return ()
    {
        let set_ = set.clone();
        let lhs = M::bind(get.clone(), set_);
        let rhs = M::pure(());
        if let Err(v) = expect_obs_eq::<M, ()>("(GS)", &lhs, &rhs, ctx) {
            violations.push(v);
        }
    }

    // (SG) set s >> get  =  set s >> return s
    {
        let lhs = M::seq(set(sample_a.clone()), get.clone());
        let rhs = M::seq(set(sample_a.clone()), M::pure(sample_a.clone()));
        if let Err(v) = expect_obs_eq::<M, S>("(SG)", &lhs, &rhs, ctx) {
            violations.push(v);
        }
    }

    // (SS) set s >> set s'  =  set s'
    {
        let lhs = M::seq(set(sample_a), set(sample_b.clone()));
        let rhs = set(sample_b);
        if let Err(v) = expect_obs_eq::<M, ()>("(SS)", &lhs, &rhs, ctx) {
            violations.push(v);
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, DistOf};
    use crate::family::MonadFamily;
    use crate::identity::IdentityOf;
    use crate::iosim::{print, IoSimOf};
    use crate::nondet::NonDetOf;
    use crate::option::OptionOf;
    use crate::result::ResultOf;
    use crate::state::{get, set, State, StateOf};
    use crate::statet::{state_t_get, state_t_set, StateTOf};
    use crate::writer::{tell, WriterOf};

    #[test]
    fn identity_satisfies_monad_laws() {
        let v = check_monad_laws::<IdentityOf, _, _, _, _, _>(
            3,
            7,
            |x: i32| x + 1,
            |y: i32| y * 2,
            &(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn option_satisfies_monad_laws() {
        let f = |x: i32| if x > 0 { Some(x + 1) } else { None };
        let g = |y: i32| if y % 2 == 0 { Some(y * 10) } else { None };
        for a in [-1, 0, 1, 2] {
            let v = check_monad_laws::<OptionOf, _, _, _, _, _>(a, Some(a), f, g, &());
            assert!(v.is_empty(), "{v:?}");
        }
        let v = check_monad_laws::<OptionOf, i32, i32, i32, _, _>(1, None, f, g, &());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn result_satisfies_monad_laws() {
        type M = ResultOf<String>;
        let f = |x: i32| {
            if x > 0 {
                Ok(x + 1)
            } else {
                Err("neg".to_string())
            }
        };
        let g = |y: i32| Ok(y * 2);
        for ma in [Ok(5), Err("e".to_string())] {
            let v = check_monad_laws::<M, _, _, _, _, _>(5, ma, f, g, &());
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn nondet_satisfies_monad_laws() {
        let f = |x: i32| vec![x, x + 1];
        let g = |y: i32| if y % 2 == 0 { vec![y] } else { vec![] };
        let v = check_monad_laws::<NonDetOf, _, _, _, _, _>(4, vec![1, 2, 3], f, g, &());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn writer_satisfies_monad_laws() {
        type M = WriterOf<String>;
        let f = |x: i32| M::seq(tell(format!("f{x};")), M::pure(x + 1));
        let g = |y: i32| M::seq(tell(format!("g{y};")), M::pure(y * 2));
        let ma = M::seq(tell("start;".to_string()), M::pure(10));
        let v = check_monad_laws::<M, _, _, _, _, _>(10, ma, f, g, &());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dist_satisfies_monad_laws() {
        let f = |x: i32| Dist::uniform([x, x + 1]);
        let g = |y: i32| Dist::bernoulli(0.25, y, 0);
        let ma = Dist::uniform([1, 2, 3]);
        let v = check_monad_laws::<DistOf, _, _, _, _, _>(2, ma, f, g, &());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn state_satisfies_monad_laws() {
        type M = StateOf<i64>;
        let ctx = vec![-5i64, 0, 3, 99];
        let f =
            |x: i64| -> State<i64, i64> { M::bind(get(), move |s| M::seq(set(s + x), M::pure(s))) };
        let g = |y: i64| -> State<i64, i64> { M::map(get(), move |s| s * y) };
        let ma: State<i64, i64> = M::bind(get(), |s| M::seq(set(s * 2), M::pure(s + 1)));
        let v = check_monad_laws::<M, _, _, _, _, _>(7, ma, f, g, &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn iosim_satisfies_monad_laws() {
        type M = IoSimOf;
        let f = |x: i32| M::seq(print(format!("f{x}")), M::pure(x + 1));
        let g = |y: i32| M::seq(print(format!("g{y}")), M::pure(y * 2));
        let ma = M::seq(print("m"), M::pure(1));
        let v = check_monad_laws::<M, _, _, _, _, _>(1, ma, f, g, &());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn statet_over_iosim_satisfies_monad_laws() {
        type M = StateTOf<i64, IoSimOf>;
        let ctx = (vec![0i64, 4, -2], ());
        let f = |x: i64| {
            M::bind(state_t_get(), move |s| {
                M::seq(state_t_set(s + x), M::pure(s))
            })
        };
        let g = |y: i64| M::seq(crate::statet::lift(print(format!("g{y}"))), M::pure(y * 2));
        let ma = M::seq(crate::statet::lift(print("m")), state_t_get());
        let v = check_monad_laws::<M, _, _, _, _, _>(7, ma, f, g, &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn state_get_set_satisfy_all_four_cell_laws() {
        type M = StateOf<i64>;
        let ctx = vec![-1i64, 0, 42];
        let v = check_state_algebra::<M, i64>(get(), set, 10, 20, &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn statet_get_set_satisfy_all_four_cell_laws() {
        type M = StateTOf<i64, IoSimOf>;
        let ctx = (vec![-1i64, 0, 42], ());
        let v = check_state_algebra::<M, i64>(state_t_get(), state_t_set, 10, 20, &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn broken_set_is_caught() {
        // A "set" that ignores its argument: violates (SG) and (SS)... in
        // fact (SG) because `set s >> get` returns the old state.
        type M = StateOf<i64>;
        let ctx = vec![0i64, 5];
        let bogus_set = |_s: i64| -> State<i64, ()> { M::pure(()) };
        let v = check_state_algebra::<M, i64>(get(), bogus_set, 10, 20, &ctx);
        assert!(
            v.iter().any(|viol| viol.law == "(SG)"),
            "expected an (SG) violation, got {v:?}"
        );
    }

    #[test]
    fn law_violation_displays_nicely() {
        let v = LawViolation {
            law: "(GS)",
            detail: "lhs != rhs".into(),
        };
        assert_eq!(v.to_string(), "law (GS) violated: lhs != rhs");
    }
}
