//! The algebraic theory of state with **two** memory cells — the
//! seven-equation presentation of Plotkin & Power that §2 of the paper
//! cites ("one may characterise state monads with multiple memory cells in
//! terms of an algebraic theory of reads and writes, with seven
//! equations").
//!
//! For two locations the seven equations are the four single-cell laws
//! *per location* (collapsed below into one parametric family) plus three
//! **commutation** equations between distinct locations:
//!
//! ```text
//! per location l:
//!   (GG)  get_l >>= \x. get_l >>= \y. k x y = get_l >>= \x. k x x
//!   (GS)  get_l >>= set_l                   = return ()
//!   (SG)  set_l x >> get_l                  = set_l x >> return x
//!   (SS)  set_l x >> set_l y                = set_l y
//! between locations l ≠ l':
//!   (GG') get_l  >>= \x. get_l' >>= \y. k x y = get_l' >>= \y. get_l >>= \x. k x y
//!   (GS') get_l  >>= \x. set_l' v >> k x      = set_l' v >> get_l >>= k
//!   (SS') set_l x >> set_l' y                 = set_l' y >> set_l x
//! ```
//!
//! The punchline for this library: an entangled state monad (set-bx) is a
//! monad with two get/set pairs satisfying the *per-location* laws while
//! **dropping the commutation equations** — commuting instances are
//! exactly the unentangled §3.4 product. [`check_commutation`] makes the
//! distinction executable, and the tests show the product state monad
//! passes all seven while a lens-derived bx fails precisely the
//! commutation half.

use crate::family::{MonadFamily, ObsVal, ObserveMonad};
use crate::laws::{check_state_algebra, expect_obs_eq, LawViolation};

/// An abstract memory cell of type `X` inside monad family `M`: a `get`
/// computation and a `set` operation.
///
/// [`crate::state::get`]/[`crate::state::set`] form the canonical cell of
/// `StateOf<S>`; a set-bx provides two cells over one hidden state.
pub struct Cell<M: MonadFamily, X: ObsVal> {
    /// The cell's `get` computation.
    pub get: M::Repr<X>,
    /// The cell's `set` operation.
    pub set: std::rc::Rc<dyn Fn(X) -> M::Repr<()>>,
}

impl<M: MonadFamily, X: ObsVal> Clone for Cell<M, X> {
    fn clone(&self) -> Self {
        Cell {
            get: self.get.clone(),
            set: std::rc::Rc::clone(&self.set),
        }
    }
}

impl<M: MonadFamily, X: ObsVal> Cell<M, X> {
    /// Package a get/set pair as a cell.
    pub fn new(get: M::Repr<X>, set: impl Fn(X) -> M::Repr<()> + 'static) -> Self {
        Cell {
            get,
            set: std::rc::Rc::new(set),
        }
    }

    /// Invoke the cell's `set`.
    pub fn set(&self, x: X) -> M::Repr<()> {
        (self.set)(x)
    }
}

/// Check the four single-cell laws for one cell (the first half of the
/// seven-equation theory).
pub fn check_cell<M, X>(
    cell: &Cell<M, X>,
    sample_a: X,
    sample_b: X,
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    X: ObsVal,
{
    let set = std::rc::Rc::clone(&cell.set);
    check_state_algebra::<M, X>(cell.get.clone(), move |x| set(x), sample_a, sample_b, ctx)
}

/// Check the three commutation equations between two cells (the second
/// half of the seven-equation theory). For an *entangled* pair these are
/// expected to fail; for the product state monad they hold.
pub fn check_commutation<M, X, Y>(
    cell_x: &Cell<M, X>,
    cell_y: &Cell<M, Y>,
    sample_x: X,
    sample_y: Y,
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    X: ObsVal,
    Y: ObsVal,
{
    let mut out = Vec::new();

    // (GG') reads commute.
    {
        let gy = cell_y.get.clone();
        let lhs: M::Repr<(X, Y)> = M::bind(cell_x.get.clone(), move |x| {
            let gy = gy.clone();
            M::bind(gy, move |y| M::pure((x.clone(), y)))
        });
        let gx = cell_x.get.clone();
        let rhs: M::Repr<(X, Y)> = M::bind(cell_y.get.clone(), move |y| {
            let gx = gx.clone();
            M::bind(gx, move |x| M::pure((x, y.clone())))
        });
        if let Err(v) = expect_obs_eq::<M, (X, Y)>("(GG') get/get commute", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (GS') reading one cell commutes with writing the other.
    {
        let lhs: M::Repr<X> = {
            let set_y = cell_y.set(sample_y.clone());
            M::bind(cell_x.get.clone(), move |x| {
                let set_y = set_y.clone();
                M::seq(set_y, M::pure(x))
            })
        };
        let rhs: M::Repr<X> = M::seq(cell_y.set(sample_y.clone()), cell_x.get.clone());
        if let Err(v) = expect_obs_eq::<M, X>("(GS') get/set commute", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    // (SS') writes to distinct cells commute.
    {
        let lhs = M::seq(cell_x.set(sample_x.clone()), cell_y.set(sample_y.clone()));
        let rhs = M::seq(cell_y.set(sample_y), cell_x.set(sample_x));
        if let Err(v) = expect_obs_eq::<M, ()>("(SS') set/set commute", &lhs, &rhs, ctx) {
            out.push(v);
        }
    }

    out
}

/// The full seven-equation check for a pair of cells: both cells'
/// single-cell laws plus the three commutation equations.
pub fn check_two_cell_theory<M, X, Y>(
    cell_x: &Cell<M, X>,
    cell_y: &Cell<M, Y>,
    sample_x: (X, X),
    sample_y: (Y, Y),
    ctx: &M::Ctx,
) -> Vec<LawViolation>
where
    M: ObserveMonad + 'static,
    X: ObsVal,
    Y: ObsVal,
{
    let mut out = check_cell(cell_x, sample_x.0.clone(), sample_x.1, ctx);
    out.extend(check_cell(cell_y, sample_y.0.clone(), sample_y.1, ctx));
    out.extend(check_commutation(
        cell_x, cell_y, sample_x.0, sample_y.0, ctx,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{gets, modify, State, StateOf};

    type S = (i64, i64);
    type M = StateOf<S>;

    /// The two independent cells of the product state monad (A×B, §3.4).
    fn product_cells() -> (Cell<M, i64>, Cell<M, i64>) {
        let cell_a = Cell::<M, i64>::new(gets(|s: &S| s.0), |x| modify(move |s: S| (x, s.1)));
        let cell_b = Cell::<M, i64>::new(gets(|s: &S| s.1), |y| modify(move |s: S| (s.0, y)));
        (cell_a, cell_b)
    }

    /// Two *entangled* cells over a single i64: cell X is the value, cell
    /// Y its negation (a lens view). Both are lawful cells, but they share
    /// storage.
    fn entangled_cells() -> (Cell<StateOf<i64>, i64>, Cell<StateOf<i64>, i64>) {
        let cell_x =
            Cell::<StateOf<i64>, i64>::new(gets(|s: &i64| *s), |x| State::new(move |_| ((), x)));
        let cell_y =
            Cell::<StateOf<i64>, i64>::new(gets(|s: &i64| -*s), |y| State::new(move |_| ((), -y)));
        (cell_x, cell_y)
    }

    #[test]
    fn product_cells_satisfy_all_seven_equations() {
        let (ca, cb) = product_cells();
        let ctx: Vec<S> = vec![(0, 0), (3, -4), (100, 7)];
        let v = check_two_cell_theory(&ca, &cb, (1, 2), (10, 20), &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn entangled_cells_satisfy_each_cells_laws() {
        let (cx, cy) = entangled_cells();
        let ctx: Vec<i64> = vec![-2, 0, 5];
        assert!(check_cell(&cx, 1, 2, &ctx).is_empty());
        assert!(check_cell(&cy, 10, 20, &ctx).is_empty());
    }

    #[test]
    fn entangled_cells_fail_exactly_the_commutation_equations() {
        // This is the paper's §3.4 point made precise: entanglement =
        // both cells lawful, commutation dropped.
        let (cx, cy) = entangled_cells();
        let ctx: Vec<i64> = vec![0];
        let v = check_commutation(&cx, &cy, 1, 2, &ctx);
        // set_x 1 >> set_y 2 leaves -2; set_y 2 >> set_x 1 leaves 1.
        assert!(!v.is_empty());
        assert!(v.iter().any(|viol| viol.law.contains("(SS')")), "{v:?}");
        // Reads of pure views always commute ((GG') holds even entangled).
        assert!(!v.iter().any(|viol| viol.law.contains("(GG')")), "{v:?}");
    }
}
