//! Probabilistic choice: a finite-support distribution monad, one of the
//! effects §5 of the paper proposes reconciling with bidirectionality.

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// A finite probability distribution: weighted outcomes.
///
/// Weights need not be normalised; [`Dist::normalized`] and the
/// [`ObserveMonad`] instance normalise and merge equal outcomes so that
/// distributions compare by their actual probability mass function (the
/// right notion of equality for the monad laws — binding in a different
/// order may produce the same distribution with differently-split weights).
#[derive(Debug, Clone, PartialEq)]
pub struct Dist<A> {
    outcomes: Vec<(A, f64)>,
}

impl<A: Val> Dist<A> {
    /// The point distribution on `a`.
    pub fn point(a: A) -> Self {
        Dist {
            outcomes: vec![(a, 1.0)],
        }
    }

    /// A distribution from explicit weighted outcomes. Weights must be
    /// non-negative and not all zero.
    pub fn weighted(outcomes: Vec<(A, f64)>) -> Self {
        assert!(
            outcomes.iter().all(|(_, w)| *w >= 0.0),
            "distribution weights must be non-negative"
        );
        assert!(
            outcomes.iter().any(|(_, w)| *w > 0.0),
            "distribution must have positive total weight"
        );
        Dist { outcomes }
    }

    /// The uniform distribution over `choices` (must be non-empty).
    pub fn uniform(choices: impl IntoIterator<Item = A>) -> Self {
        let outcomes: Vec<(A, f64)> = choices.into_iter().map(|a| (a, 1.0)).collect();
        assert!(
            !outcomes.is_empty(),
            "uniform distribution needs at least one outcome"
        );
        Dist { outcomes }
    }

    /// A Bernoulli choice: `a` with probability `p`, else `b`.
    pub fn bernoulli(p: f64, a: A, b: A) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        Dist {
            outcomes: vec![(a, p), (b, 1.0 - p)],
        }
    }

    /// Raw weighted outcomes, in insertion order, unnormalised.
    pub fn outcomes(&self) -> &[(A, f64)] {
        &self.outcomes
    }

    /// Total (unnormalised) weight.
    pub fn total_weight(&self) -> f64 {
        self.outcomes.iter().map(|(_, w)| w).sum()
    }

    /// The probability of outcomes satisfying `pred`, normalised.
    pub fn probability(&self, pred: impl Fn(&A) -> bool) -> f64 {
        let total = self.total_weight();
        self.outcomes
            .iter()
            .filter(|(a, _)| pred(a))
            .map(|(_, w)| w)
            .sum::<f64>()
            / total
    }

    /// Normalise weights to sum to 1 and merge duplicate outcomes
    /// (requires `A: PartialEq`). Outcomes keep first-appearance order.
    pub fn normalized(&self) -> Vec<(A, f64)>
    where
        A: PartialEq,
    {
        let total = self.total_weight();
        let mut merged: Vec<(A, f64)> = Vec::new();
        for (a, w) in &self.outcomes {
            if *w == 0.0 {
                continue;
            }
            match merged.iter_mut().find(|(b, _)| b == a) {
                Some((_, acc)) => *acc += w / total,
                None => merged.push((a.clone(), w / total)),
            }
        }
        merged
    }
}

/// Family marker for the distribution monad, where `Repr<A> = Dist<A>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistOf;

impl MonadFamily for DistOf {
    type Repr<A: Val> = Dist<A>;

    fn pure<A: Val>(a: A) -> Dist<A> {
        Dist::point(a)
    }

    fn bind<A: Val, B: Val, F>(ma: Dist<A>, f: F) -> Dist<B>
    where
        F: Fn(A) -> Dist<B> + 'static,
    {
        let mut outcomes = Vec::new();
        for (a, w) in ma.outcomes {
            let db = f(a);
            let sub_total = db.total_weight();
            for (b, v) in db.outcomes {
                outcomes.push((b, w * v / sub_total));
            }
        }
        Dist { outcomes }
    }
}

/// Probabilities quantised to a fixed grid, making observations exactly
/// comparable despite floating-point rounding.
fn quantize(p: f64) -> i64 {
    (p * 1e9).round() as i64
}

impl ObserveMonad for DistOf {
    type Ctx = ();
    /// The normalised probability mass function, probabilities quantised.
    type Obs<A: ObsVal> = Vec<(A, i64)>;

    fn observe<A: ObsVal>(ma: &Dist<A>, _ctx: &()) -> Vec<(A, i64)> {
        ma.normalized()
            .into_iter()
            .map(|(a, p)| (a, quantize(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mass_has_probability_one() {
        let d = Dist::point(3);
        assert_eq!(d.probability(|x| *x == 3), 1.0);
    }

    #[test]
    fn uniform_splits_mass_evenly() {
        let d = Dist::uniform([1, 2, 3, 4]);
        assert!((d.probability(|x| *x <= 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bind_multiplies_probabilities() {
        // Two fair coin flips: P(both heads) = 1/4.
        let flip = Dist::bernoulli(0.5, true, false);
        let two = DistOf::bind(flip.clone(), move |h1| {
            let flip = flip.clone();
            DistOf::map(flip, move |h2| h1 && h2)
        });
        assert!((two.probability(|b| *b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalized_merges_duplicates() {
        let d = Dist::weighted(vec![("a", 1.0), ("b", 1.0), ("a", 2.0)]);
        let n = d.normalized();
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].0, "a");
        assert!((n[0].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn observation_ignores_weight_splitting() {
        let split = Dist::weighted(vec![(1, 0.5), (1, 0.5)]);
        let whole = Dist::point(1);
        assert_eq!(DistOf::observe(&split, &()), DistOf::observe(&whole, &()));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = Dist::weighted(vec![(1, -0.5)]);
    }
}
