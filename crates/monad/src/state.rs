//! The state monad `M_S A = S -> (A, S)` from §2 of the paper, together
//! with its `get`/`set` operations and the four-law algebraic theory of a
//! single memory cell.

use std::rc::Rc;

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// A stateful computation: a re-runnable function `S -> (A, S)`.
///
/// The paper defines `M_S A = S -> A × S`. Computations here are wrapped in
/// `Rc<dyn Fn…>` rather than `Box<dyn FnOnce…>` so that a single computation
/// can be *observed* on many initial states — the basis of the
/// observational equality used to check the paper's equational laws.
pub struct State<S, A>(Rc<dyn Fn(S) -> (A, S)>);

impl<S, A> Clone for State<S, A> {
    fn clone(&self) -> Self {
        State(Rc::clone(&self.0))
    }
}

impl<S, A> std::fmt::Debug for State<S, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("State(<function>)")
    }
}

impl<S: 'static, A: 'static> State<S, A> {
    /// Wrap a state-transition function as a computation.
    pub fn new(f: impl Fn(S) -> (A, S) + 'static) -> Self {
        State(Rc::new(f))
    }

    /// Run the computation on an initial state, yielding the result and the
    /// final state.
    pub fn run(&self, s: S) -> (A, S) {
        (self.0)(s)
    }

    /// Run and keep only the result.
    pub fn eval(&self, s: S) -> A {
        self.run(s).0
    }

    /// Run and keep only the final state.
    pub fn exec(&self, s: S) -> S {
        self.run(s).1
    }
}

/// Family marker for the state monad on state type `S`:
/// `Repr<A> = State<S, A>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateOf<S>(std::marker::PhantomData<S>);

impl<S: Val> MonadFamily for StateOf<S> {
    type Repr<A: Val> = State<S, A>;

    /// `return a = \s -> (a, s)`.
    fn pure<A: Val>(a: A) -> State<S, A> {
        State::new(move |s| (a.clone(), s))
    }

    /// `ma >>= f = \s -> let (a, s') = ma s in f a s'`.
    fn bind<A: Val, B: Val, F>(ma: State<S, A>, f: F) -> State<S, B>
    where
        F: Fn(A) -> State<S, B> + 'static,
    {
        State::new(move |s| {
            let (a, s1) = ma.run(s);
            f(a).run(s1)
        })
    }
}

/// `get = \s -> (s, s)`: read the state.
pub fn get<S: Val>() -> State<S, S> {
    State::new(|s: S| (s.clone(), s))
}

/// `set s' = \s -> ((), s')`: overwrite the state.
pub fn set<S: Val>(s_new: S) -> State<S, ()> {
    State::new(move |_| ((), s_new.clone()))
}

/// Read the state through a projection, without changing it.
pub fn gets<S: Val, A: Val>(f: impl Fn(&S) -> A + 'static) -> State<S, A> {
    State::new(move |s: S| (f(&s), s))
}

/// Apply a function to the state.
pub fn modify<S: Val>(f: impl Fn(S) -> S + 'static) -> State<S, ()> {
    State::new(move |s| ((), f(s)))
}

impl<S: ObsVal> ObserveMonad for StateOf<S> {
    /// Sample initial states to run the computation on.
    type Ctx = Vec<S>;
    /// The `(result, final state)` pair for each sampled initial state.
    type Obs<A: ObsVal> = Vec<(A, S)>;

    fn observe<A: ObsVal>(ma: &State<S, A>, ctx: &Vec<S>) -> Vec<(A, S)> {
        ctx.iter().map(|s| ma.run(s.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = StateOf<i64>;

    #[test]
    fn pure_leaves_state_untouched() {
        let ma: State<i64, &str> = M::pure("v");
        assert_eq!(ma.run(10), ("v", 10));
    }

    #[test]
    fn bind_threads_state_left_to_right() {
        let ma = M::bind(get::<i64>(), |s| set(s + 1));
        let ma = M::seq(ma, get::<i64>());
        assert_eq!(ma.run(41), (42, 42));
    }

    #[test]
    fn gets_projects_without_update() {
        let ma = gets(|s: &i64| s * 2);
        assert_eq!(ma.run(21), (42, 21));
    }

    #[test]
    fn modify_applies_function() {
        let ma = modify(|s: i64| s * 3);
        assert_eq!(ma.run(4), ((), 12));
    }

    #[test]
    fn computations_are_rerunnable() {
        let ma = M::bind(get::<i64>(), |s| set(s + 1));
        assert_eq!(ma.clone().run(1), ((), 2));
        assert_eq!(ma.run(100), ((), 101));
    }

    // The four laws of the algebraic theory of one memory cell (§2).
    // These are checked generically (and for more families) in `laws.rs`;
    // the versions here are direct, readable witnesses.

    fn obs<A: ObsVal>(ma: &State<i64, A>) -> Vec<(A, i64)> {
        StateOf::<i64>::observe(ma, &vec![-3, 0, 7, 1000])
    }

    #[test]
    fn law_gg_reading_twice_equals_reading_once() {
        // get >>= \s. get >>= \s'. k s s'   =   get >>= \s. k s s
        let k = |s: i64, s2: i64| M::pure((s, s2));
        let lhs = M::bind(get::<i64>(), move |s| {
            M::bind(get::<i64>(), move |s2| k(s, s2))
        });
        let rhs = M::bind(get::<i64>(), move |s| k(s, s));
        assert_eq!(obs(&lhs), obs(&rhs));
    }

    #[test]
    fn law_gs_writing_what_you_read_is_a_noop() {
        // get >>= set = return ()
        let lhs = M::bind(get::<i64>(), set);
        let rhs = M::pure(());
        assert_eq!(obs(&lhs), obs(&rhs));
    }

    #[test]
    fn law_sg_reading_after_writing_yields_what_was_written() {
        // set s >> get = set s >> return s
        let lhs = M::seq(set(9i64), get::<i64>());
        let rhs = M::seq(set(9i64), M::pure(9i64));
        assert_eq!(obs(&lhs), obs(&rhs));
    }

    #[test]
    fn law_ss_second_write_wins() {
        // set s >> set s' = set s'
        let lhs = M::seq(set(1i64), set(2i64));
        let rhs = set(2i64);
        assert_eq!(obs(&lhs), obs(&rhs));
    }
}
