//! The [`MonadFamily`] abstraction: Rust's stand-in for Haskell's
//! `Monad` type class, encoded with generic associated types.

use std::fmt::Debug;

/// Values that may flow through a monadic computation.
///
/// Computations in this library are re-runnable (`Repr<A>: Clone`, `bind`
/// takes `Fn`), so every intermediate value must be cloneable and owned.
/// This is a blanket-implemented alias for `Clone + 'static`.
pub trait Val: Clone + 'static {}
impl<T: Clone + 'static> Val for T {}

/// Observable values: [`Val`]s that can be compared and printed, so that
/// law violations can be reported with counterexamples.
pub trait ObsVal: Val + PartialEq + Debug {}
impl<T: Val + PartialEq + Debug> ObsVal for T {}

/// A monad, encoded as a *family*: `Self` is a marker type (usually
/// zero-sized) and `Self::Repr<A>` is the type of computations yielding `A`
/// — the Rust spelling of the paper's `M A`.
///
/// The three monad laws from §2 of the paper are not (cannot be) enforced by
/// the type system; they are checked observationally by
/// [`crate::laws::check_monad_laws`] for every family in this crate:
///
/// ```text
/// return a >>= f                 =  f a                    (left unit)
/// ma >>= return                  =  ma                     (right unit)
/// ma >>= (\a -> f a >>= g)       =  (ma >>= f) >>= g       (associativity)
/// ```
pub trait MonadFamily {
    /// The type of computations yielding an `A` — the paper's `M A`.
    ///
    /// `Clone` is required so computations can be sequenced with [`seq`]
    /// and observed repeatedly (the basis of observational equality).
    ///
    /// [`seq`]: MonadFamily::seq
    type Repr<A: Val>: Clone + 'static;

    /// The paper's `return`: inject a value as an effect-free computation.
    fn pure<A: Val>(a: A) -> Self::Repr<A>;

    /// The paper's `(>>=)` ("bind"): run `ma`, then feed its result to `f`.
    ///
    /// `f` is `Fn`, not `FnOnce`, because nondeterministic and probabilistic
    /// families invoke the continuation once per outcome.
    fn bind<A: Val, B: Val, F>(ma: Self::Repr<A>, f: F) -> Self::Repr<B>
    where
        F: Fn(A) -> Self::Repr<B> + 'static;

    /// Functorial map, derived from `bind` and `pure`.
    fn map<A: Val, B: Val, F>(ma: Self::Repr<A>, f: F) -> Self::Repr<B>
    where
        F: Fn(A) -> B + 'static,
    {
        Self::bind(ma, move |a| Self::pure(f(a)))
    }

    /// The paper's `(>>)` ("sequence"): run `ma` for its effect, discard its
    /// value, then run `mb`. Defined, as in the paper, as
    /// `ma >>= \_ -> mb`.
    fn seq<A: Val, B: Val>(ma: Self::Repr<A>, mb: Self::Repr<B>) -> Self::Repr<B> {
        Self::bind(ma, move |_| mb.clone())
    }

    /// Run two computations in order and pair their results.
    fn pair<A: Val, B: Val>(ma: Self::Repr<A>, mb: Self::Repr<B>) -> Self::Repr<(A, B)> {
        Self::bind(ma, move |a| {
            let mb = mb.clone();
            Self::map(mb, move |b| (a.clone(), b))
        })
    }

    /// Flatten a computation of a computation — the monad multiplication.
    fn join<A: Val>(mma: Self::Repr<Self::Repr<A>>) -> Self::Repr<A> {
        Self::bind(mma, |ma| ma)
    }

    /// Replace the result of a computation with `()`, keeping its effects.
    fn void<A: Val>(ma: Self::Repr<A>) -> Self::Repr<()> {
        Self::map(ma, |_| ())
    }

    /// Run the computations of `mas` left to right, collecting results.
    fn sequence<A: Val>(mas: Vec<Self::Repr<A>>) -> Self::Repr<Vec<A>> {
        let mut acc: Self::Repr<Vec<A>> = Self::pure(Vec::new());
        for ma in mas {
            acc = Self::bind(acc, move |xs| {
                let ma = ma.clone();
                Self::map(ma, move |a| {
                    let mut xs = xs.clone();
                    xs.push(a);
                    xs
                })
            });
        }
        acc
    }
}

/// Monads whose computations can be *observed*: reduced, in some context, to
/// a plain comparable value. Observational equality of computations is the
/// executable analogue of the paper's equational reasoning.
///
/// For value-like monads (`Option`, `Vec`, `Writer`, …) the context is `()`
/// and the observation is essentially the computation itself. For function-
/// like monads (`State<S>`, `StateT`) the context supplies sample initial
/// states and the observation is the vector of results.
pub trait ObserveMonad: MonadFamily {
    /// Context required to observe a computation (e.g. initial states).
    type Ctx: Clone;

    /// The observable outcome of a computation yielding `A`.
    type Obs<A: ObsVal>: PartialEq + Debug;

    /// Observe `ma` in context `ctx`.
    fn observe<A: ObsVal>(ma: &Self::Repr<A>, ctx: &Self::Ctx) -> Self::Obs<A>;
}

/// Assert that two computations are observationally equal, returning a
/// diagnostic message on failure.
pub fn obs_eq<M: ObserveMonad, A: ObsVal>(
    lhs: &M::Repr<A>,
    rhs: &M::Repr<A>,
    ctx: &M::Ctx,
) -> Result<(), String> {
    let lo = M::observe(lhs, ctx);
    let ro = M::observe(rhs, ctx);
    if lo == ro {
        Ok(())
    } else {
        Err(format!(
            "observations differ:\n  lhs = {lo:?}\n  rhs = {ro:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::option::OptionOf;

    #[test]
    fn map_is_bind_then_pure() {
        let ma: Option<i32> = OptionOf::pure(20);
        assert_eq!(OptionOf::map(ma, |x| x * 2), Some(40));
    }

    #[test]
    fn seq_discards_first_result() {
        let ma = OptionOf::pure("ignored");
        let mb = OptionOf::pure(7);
        assert_eq!(OptionOf::seq(ma, mb), Some(7));
    }

    #[test]
    fn seq_propagates_first_effect() {
        let ma: Option<&str> = None;
        let mb = OptionOf::pure(7);
        assert_eq!(OptionOf::seq(ma, mb), None);
    }

    #[test]
    fn pair_combines_results_in_order() {
        let ma = OptionOf::pure(1);
        let mb = OptionOf::pure("two");
        assert_eq!(OptionOf::pair(ma, mb), Some((1, "two")));
    }

    #[test]
    fn join_flattens() {
        let mma: Option<Option<i32>> = Some(Some(3));
        assert_eq!(OptionOf::join(mma), Some(3));
        let empty: Option<Option<i32>> = Some(None);
        assert_eq!(OptionOf::join(empty), None);
    }

    #[test]
    fn sequence_collects_in_order() {
        let mas = vec![Some(1), Some(2), Some(3)];
        assert_eq!(OptionOf::sequence(mas), Some(vec![1, 2, 3]));
        let with_fail = vec![Some(1), None, Some(3)];
        assert_eq!(OptionOf::sequence(with_fail), None);
    }

    #[test]
    fn void_erases_value() {
        assert_eq!(OptionOf::void(Some(9)), Some(()));
    }
}
