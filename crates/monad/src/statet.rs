//! The state monad transformer `StateT S F A = S -> F (A, S)`.
//!
//! §4 of the paper builds its effectful bx on the monad
//! `M A = Integer -> IO (A, Integer)` — precisely
//! `StateT<Integer, IoSimOf, A>` here. The transformer is general: stacking
//! over [`crate::IdentityOf`] recovers the plain state monad, and stacking
//! over [`crate::NonDetOf`] or [`crate::ResultOf`] gives the §5 effect
//! combinations (nondeterministic or failing bidirectional updates).

use std::marker::PhantomData;
use std::rc::Rc;

use crate::family::{MonadFamily, ObsVal, ObserveMonad, Val};

/// A computation in the transformed monad: `S -> F::Repr<(A, S)>`.
#[allow(clippy::type_complexity)] // the type IS the §4 definition: S -> F (A, S)
pub struct StateT<S, F: MonadFamily, A: Val>(Rc<dyn Fn(S) -> F::Repr<(A, S)>>)
where
    S: Val;

impl<S: Val, F: MonadFamily, A: Val> Clone for StateT<S, F, A> {
    fn clone(&self) -> Self {
        StateT(Rc::clone(&self.0))
    }
}

impl<S: Val, F: MonadFamily, A: Val> std::fmt::Debug for StateT<S, F, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StateT(<function>)")
    }
}

impl<S: Val, F: MonadFamily, A: Val> StateT<S, F, A> {
    /// Wrap a transition function `S -> F (A, S)` as a computation.
    pub fn new(f: impl Fn(S) -> F::Repr<(A, S)> + 'static) -> Self {
        StateT(Rc::new(f))
    }

    /// Run on an initial state, yielding the inner-monad computation of
    /// `(result, final state)`.
    pub fn run(&self, s: S) -> F::Repr<(A, S)> {
        (self.0)(s)
    }
}

/// Family marker for `StateT` over state `S` and inner family `F`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateTOf<S, F>(PhantomData<(S, F)>);

impl<S: Val, F: MonadFamily + 'static> MonadFamily for StateTOf<S, F> {
    type Repr<A: Val> = StateT<S, F, A>;

    fn pure<A: Val>(a: A) -> StateT<S, F, A> {
        StateT::new(move |s| F::pure((a.clone(), s)))
    }

    fn bind<A: Val, B: Val, G>(ma: StateT<S, F, A>, g: G) -> StateT<S, F, B>
    where
        G: Fn(A) -> StateT<S, F, B> + 'static,
    {
        let g = Rc::new(g);
        StateT::new(move |s| {
            let g = Rc::clone(&g);
            F::bind(ma.run(s), move |(a, s1)| g(a).run(s1))
        })
    }
}

/// Lift an inner-monad computation into the transformed monad, leaving the
/// state untouched.
pub fn lift<S: Val, F: MonadFamily + 'static, A: Val>(fa: F::Repr<A>) -> StateT<S, F, A> {
    StateT::new(move |s: S| {
        let s = s.clone();
        F::bind(fa.clone(), move |a| F::pure((a, s.clone())))
    })
}

/// `get` for the transformed monad: read the state.
pub fn state_t_get<S: Val, F: MonadFamily + 'static>() -> StateT<S, F, S> {
    StateT::new(|s: S| F::pure((s.clone(), s)))
}

/// `set` for the transformed monad: overwrite the state.
pub fn state_t_set<S: Val, F: MonadFamily + 'static>(s_new: S) -> StateT<S, F, ()> {
    StateT::new(move |_| F::pure(((), s_new.clone())))
}

impl<S: ObsVal, F: ObserveMonad + 'static> ObserveMonad for StateTOf<S, F> {
    /// Sample initial states plus the inner monad's own context.
    type Ctx = (Vec<S>, F::Ctx);
    /// For each sampled initial state, the inner monad's observation of the
    /// `(result, final state)` computation.
    type Obs<A: ObsVal> = Vec<F::Obs<(A, S)>>;

    fn observe<A: ObsVal>(ma: &StateT<S, F, A>, ctx: &(Vec<S>, F::Ctx)) -> Vec<F::Obs<(A, S)>> {
        ctx.0
            .iter()
            .map(|s| F::observe(&ma.run(s.clone()), &ctx.1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::IdentityOf;
    use crate::iosim::{print, IoSim, IoSimOf};
    use crate::state::{get, StateOf};

    type Pure = StateTOf<i64, IdentityOf>;
    type Io = StateTOf<i64, IoSimOf>;

    #[test]
    fn over_identity_behaves_like_plain_state() {
        // s -> (s + 1, s + 1)
        let ma: StateT<i64, IdentityOf, i64> = Pure::bind(state_t_get(), |s| {
            Pure::seq(state_t_set(s + 1), state_t_get())
        });
        assert_eq!(ma.run(41), (42, 42));

        // Compare against the plain state monad on the same program.
        let plain = StateOf::<i64>::bind(get::<i64>(), |s| {
            StateOf::<i64>::seq(crate::state::set(s + 1), get::<i64>())
        });
        assert_eq!(plain.run(41), ma.run(41));
    }

    #[test]
    fn lift_runs_inner_effect_without_touching_state() {
        let ma: StateT<i64, IoSimOf, ()> = lift(print("hi"));
        let out: IoSim<((), i64)> = ma.run(7);
        assert_eq!(out.value, ((), 7));
        assert_eq!(out.printed(), vec!["hi"]);
    }

    #[test]
    fn effects_sequence_with_state_updates() {
        // The shape of the paper's §4 computation: consult the state, maybe
        // print, then update.
        let ma: StateT<i64, IoSimOf, ()> = Io::bind(state_t_get(), |s| {
            let eff: StateT<i64, IoSimOf, ()> = if s != 5 {
                lift(print("Changed"))
            } else {
                Io::pure(())
            };
            Io::seq(eff, state_t_set(5))
        });
        let changed = ma.run(3);
        assert_eq!(changed.value.1, 5);
        assert_eq!(changed.printed(), vec!["Changed"]);

        let unchanged = ma.run(5);
        assert_eq!(unchanged.value.1, 5);
        assert!(unchanged.printed().is_empty());
    }

    #[test]
    fn observation_includes_inner_traces() {
        let loud: StateT<i64, IoSimOf, ()> = lift(print("x"));
        let quiet: StateT<i64, IoSimOf, ()> = Io::pure(());
        let ctx = (vec![0i64, 1], ());
        assert_ne!(Io::observe(&loud, &ctx), Io::observe(&quiet, &ctx));
    }
}
