//! Property-based monad-law checks for every family, with proptest-driven
//! data (complementing the fixed-sample tests in `src/laws.rs`).

use proptest::prelude::*;

use esm_monad::laws::check_monad_laws;
use esm_monad::{
    Dist, DistOf, IoSimOf, MonadFamily, NonDetOf, OptionOf, ResultOf, State, StateOf, Writer,
    WriterOf,
};

proptest! {
    #[test]
    fn option_laws(a in any::<i32>(), threshold in any::<i32>()) {
        let f = move |x: i32| (x > threshold).then(|| x.wrapping_add(1));
        let g = |y: i32| (y % 2 == 0).then_some(y);
        let v = check_monad_laws::<OptionOf, _, _, _, _, _>(a, Some(a), f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn result_laws(a in any::<i16>(), ok in any::<bool>()) {
        type M = ResultOf<String>;
        let ma: Result<i16, String> = if ok { Ok(a) } else { Err("e".to_string()) };
        let f = |x: i16| if x >= 0 { Ok(x.wrapping_add(1)) } else { Err("neg".to_string()) };
        let g = |y: i16| Ok(y.wrapping_mul(2));
        let v = check_monad_laws::<M, _, _, _, _, _>(a, ma, f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn nondet_laws(ma in proptest::collection::vec(any::<i8>(), 0..6), a in any::<i8>()) {
        let f = |x: i8| vec![x, x.wrapping_add(1)];
        let g = |y: i8| if y % 2 == 0 { vec![y] } else { vec![] };
        let v = check_monad_laws::<NonDetOf, _, _, _, _, _>(a, ma, f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn writer_laws(a in any::<i8>(), tag in "[a-z]{1,4}") {
        type M = WriterOf<String>;
        let tag2 = tag.clone();
        let f = move |x: i8| Writer::new(x.wrapping_add(1), format!("f{tag}"));
        let g = move |y: i8| Writer::new(y.wrapping_mul(2), format!("g{tag2}"));
        let ma = Writer::new(a, "start".to_string());
        let v = check_monad_laws::<M, _, _, _, _, _>(a, ma, f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dist_laws(a in 0i32..20, outcomes in proptest::collection::vec((0i32..20, 1u32..10), 1..5)) {
        let ma = Dist::weighted(outcomes.into_iter().map(|(x, w)| (x, w as f64)).collect());
        let f = |x: i32| Dist::uniform([x, x + 1]);
        let g = |y: i32| Dist::bernoulli(0.25, y, 0);
        let v = check_monad_laws::<DistOf, _, _, _, _, _>(a, ma, f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn iosim_laws(a in any::<i8>(), msg in "[a-z]{1,4}") {
        type M = IoSimOf;
        let msg2 = msg.clone();
        let f = move |x: i8| M::seq(esm_monad::print(format!("f-{msg}")), M::pure(x.wrapping_add(1)));
        let g = move |y: i8| M::seq(esm_monad::print(format!("g-{msg2}")), M::pure(y.wrapping_mul(2)));
        let ma = M::seq(esm_monad::print("m"), M::pure(a));
        let v = check_monad_laws::<M, _, _, _, _, _>(a, ma, f, g, &());
        prop_assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn state_laws(a in any::<i8>(), k in any::<i8>(), ctx in proptest::collection::vec(any::<i8>(), 1..5)) {
        type M = StateOf<i8>;
        let f = move |x: i8| -> State<i8, i8> {
            M::bind(esm_monad::get(), move |s: i8| {
                M::seq(esm_monad::set(s.wrapping_add(k)), M::pure(x))
            })
        };
        let g = |y: i8| -> State<i8, i8> { esm_monad::gets(move |s: &i8| s.wrapping_mul(y)) };
        let ma: State<i8, i8> = M::pure(a);
        let v = check_monad_laws::<M, _, _, _, _, _>(a, ma, f, g, &ctx);
        prop_assert!(v.is_empty(), "{v:?}");
    }
}

proptest! {
    // Distribution-specific invariants.
    #[test]
    fn dist_probabilities_sum_to_one(outcomes in proptest::collection::vec((0i32..10, 1u32..10), 1..6)) {
        let d = Dist::weighted(outcomes.into_iter().map(|(x, w)| (x, w as f64)).collect());
        let total: f64 = d.normalized().into_iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dist_bind_preserves_total_mass(outcomes in proptest::collection::vec((0i32..10, 1u32..10), 1..6)) {
        let d = Dist::weighted(outcomes.into_iter().map(|(x, w)| (x, w as f64)).collect());
        let d2 = DistOf::bind(d, |x| Dist::uniform([x, x + 1, x + 2]));
        let total: f64 = d2.normalized().into_iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
