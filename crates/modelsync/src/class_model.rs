//! A minimal UML-ish class model.

use std::collections::BTreeMap;

/// Attribute types available in the modelling language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttrType {
    /// Integers.
    Int,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
}

/// A named, typed attribute of a class.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Attribute {
    /// Attribute name, unique within its class.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Attribute {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A directed association (reference) from one class to another, realised
/// on the database side as an integer foreign-key column.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Association {
    /// Role name, unique among the class's attributes *and* associations
    /// (it becomes a column name).
    pub name: String,
    /// Name of the referenced class.
    pub target: String,
}

impl Association {
    /// Construct an association.
    pub fn new(name: impl Into<String>, target: impl Into<String>) -> Association {
        Association {
            name: name.into(),
            target: target.into(),
        }
    }
}

/// A class: a name, ordered attributes, ordered associations, and an
/// abstract flag.
///
/// Abstract classes are *model-private*: the class-to-table transformation
/// produces no table for them, so they survive round-trips only through
/// the synchronisation complement. Association *targets* are also
/// model-private (a foreign-key column does not name its class), so they
/// live in the complement too.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Class {
    /// Class name, unique within the model.
    pub name: String,
    /// Attributes, in declaration order.
    pub attributes: Vec<Attribute>,
    /// Associations, in declaration order.
    pub associations: Vec<Association>,
    /// Is this class abstract (not instantiable, no table)?
    pub is_abstract: bool,
}

impl Class {
    /// A concrete class with no associations.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Class {
        Class {
            name: name.into(),
            attributes,
            associations: Vec::new(),
            is_abstract: false,
        }
    }

    /// An abstract class.
    pub fn abstract_class(name: impl Into<String>, attributes: Vec<Attribute>) -> Class {
        Class {
            name: name.into(),
            attributes,
            associations: Vec::new(),
            is_abstract: true,
        }
    }

    /// Add an association (builder style).
    pub fn with_association(mut self, assoc: Association) -> Class {
        self.associations.push(assoc);
        self
    }

    /// Look up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Look up an association by role name.
    pub fn association(&self, name: &str) -> Option<&Association> {
        self.associations.iter().find(|a| a.name == name)
    }

    /// Are attribute and association names disjoint and unique?
    pub fn is_well_formed(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.attributes
            .iter()
            .map(|a| &a.name)
            .chain(self.associations.iter().map(|a| &a.name))
            .all(|n| seen.insert(n))
    }
}

/// A class model: classes keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassModel {
    /// The classes, keyed by their names.
    pub classes: BTreeMap<String, Class>,
}

impl ClassModel {
    /// The empty model.
    pub fn new() -> ClassModel {
        ClassModel::default()
    }

    /// Build a model from classes (keyed by their names).
    pub fn from_classes(classes: impl IntoIterator<Item = Class>) -> ClassModel {
        ClassModel {
            classes: classes.into_iter().map(|c| (c.name.clone(), c)).collect(),
        }
    }

    /// Add or replace a class.
    pub fn upsert(&mut self, class: Class) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Remove a class by name.
    pub fn remove(&mut self, name: &str) -> Option<Class> {
        self.classes.remove(name)
    }

    /// Look up a class.
    pub fn class(&self, name: &str) -> Option<&Class> {
        self.classes.get(name)
    }

    /// The concrete (non-abstract) classes, in name order.
    pub fn concrete_classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.values().filter(|c| !c.is_abstract)
    }

    /// The abstract classes, in name order.
    pub fn abstract_classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.values().filter(|c| c.is_abstract)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the model empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

impl std::fmt::Display for ClassModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in self.classes.values() {
            writeln!(
                f,
                "{}class {} {{",
                if c.is_abstract { "abstract " } else { "" },
                c.name
            )?;
            for a in &c.attributes {
                writeln!(f, "  {}: {:?}", a.name, a.ty)?;
            }
            for a in &c.associations {
                writeln!(f, "  {} -> {}", a.name, a.target)?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ClassModel {
        ClassModel::from_classes([
            Class::new(
                "Book",
                vec![
                    Attribute::new("title", AttrType::Str),
                    Attribute::new("pages", AttrType::Int),
                ],
            ),
            Class::abstract_class("Media", vec![Attribute::new("id", AttrType::Int)]),
        ])
    }

    #[test]
    fn classes_are_keyed_by_name() {
        let m = model();
        assert_eq!(m.len(), 2);
        assert_eq!(m.class("Book").unwrap().attributes.len(), 2);
        assert!(m.class("Ghost").is_none());
    }

    #[test]
    fn concrete_and_abstract_partition() {
        let m = model();
        assert_eq!(m.concrete_classes().count(), 1);
        assert_eq!(m.abstract_classes().count(), 1);
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut m = model();
        m.upsert(Class::new("Book", vec![]));
        assert!(m.class("Book").unwrap().attributes.is_empty());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn attribute_lookup() {
        let m = model();
        assert_eq!(
            m.class("Book").unwrap().attribute("pages").unwrap().ty,
            AttrType::Int
        );
        assert!(m.class("Book").unwrap().attribute("isbn").is_none());
    }

    #[test]
    fn display_renders_uml_ish_text() {
        let text = model().to_string();
        assert!(text.contains("class Book {"));
        assert!(text.contains("abstract class Media {"));
    }
}
