//! A minimal relational schema model (the "database side" of the sync).

use std::collections::BTreeMap;

/// SQL column types produced by the class-to-table transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SqlType {
    /// `INTEGER`.
    Integer,
    /// `VARCHAR(width)` — the width is schema-private data.
    Varchar,
    /// `BOOLEAN`.
    Boolean,
}

/// A column: name, type, and (for `VARCHAR`) a width.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SqlColumn {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: SqlType,
    /// Declared width; meaningful only for [`SqlType::Varchar`].
    pub width: Option<u32>,
}

impl SqlColumn {
    /// An `INTEGER` column.
    pub fn integer(name: impl Into<String>) -> SqlColumn {
        SqlColumn {
            name: name.into(),
            ty: SqlType::Integer,
            width: None,
        }
    }

    /// A `VARCHAR(width)` column.
    pub fn varchar(name: impl Into<String>, width: u32) -> SqlColumn {
        SqlColumn {
            name: name.into(),
            ty: SqlType::Varchar,
            width: Some(width),
        }
    }

    /// A `BOOLEAN` column.
    pub fn boolean(name: impl Into<String>) -> SqlColumn {
        SqlColumn {
            name: name.into(),
            ty: SqlType::Boolean,
            width: None,
        }
    }
}

/// A table: name, ordered columns, and a storage engine (schema-private).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SqlTable {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<SqlColumn>,
    /// Storage engine — database-private data with no model counterpart.
    pub engine: String,
}

impl SqlTable {
    /// A table with the default engine.
    pub fn new(name: impl Into<String>, columns: Vec<SqlColumn>) -> SqlTable {
        SqlTable {
            name: name.into(),
            columns,
            engine: "innodb".to_string(),
        }
    }

    /// Set the storage engine.
    pub fn with_engine(mut self, engine: impl Into<String>) -> SqlTable {
        self.engine = engine.into();
        self
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&SqlColumn> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A relational schema: tables keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RdbSchema {
    /// The tables, keyed by their names.
    pub tables: BTreeMap<String, SqlTable>,
}

impl RdbSchema {
    /// The empty schema.
    pub fn new() -> RdbSchema {
        RdbSchema::default()
    }

    /// Build a schema from tables (keyed by their names).
    pub fn from_tables(tables: impl IntoIterator<Item = SqlTable>) -> RdbSchema {
        RdbSchema {
            tables: tables.into_iter().map(|t| (t.name.clone(), t)).collect(),
        }
    }

    /// Add or replace a table.
    pub fn upsert(&mut self, table: SqlTable) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Remove a table by name.
    pub fn remove(&mut self, name: &str) -> Option<SqlTable> {
        self.tables.remove(name)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&SqlTable> {
        self.tables.get(name)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl std::fmt::Display for RdbSchema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in self.tables.values() {
            writeln!(f, "CREATE TABLE {} (", t.name)?;
            for (i, c) in t.columns.iter().enumerate() {
                let ty = match (c.ty, c.width) {
                    (SqlType::Integer, _) => "INTEGER".to_string(),
                    (SqlType::Boolean, _) => "BOOLEAN".to_string(),
                    (SqlType::Varchar, Some(w)) => format!("VARCHAR({w})"),
                    (SqlType::Varchar, None) => "VARCHAR".to_string(),
                };
                let comma = if i + 1 < t.columns.len() { "," } else { "" };
                writeln!(f, "  {} {ty}{comma}", c.name)?;
            }
            writeln!(f, ") ENGINE={};", t.engine)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RdbSchema {
        RdbSchema::from_tables([SqlTable::new(
            "Book",
            vec![
                SqlColumn::varchar("title", 255),
                SqlColumn::integer("pages"),
            ],
        )
        .with_engine("myisam")])
    }

    #[test]
    fn tables_are_keyed_by_name() {
        let s = schema();
        assert_eq!(s.len(), 1);
        assert_eq!(s.table("Book").unwrap().engine, "myisam");
    }

    #[test]
    fn column_constructors_set_widths() {
        let c = SqlColumn::varchar("x", 40);
        assert_eq!(c.width, Some(40));
        assert_eq!(SqlColumn::integer("y").width, None);
    }

    #[test]
    fn display_renders_ddl() {
        let ddl = schema().to_string();
        assert!(ddl.contains("CREATE TABLE Book ("));
        assert!(ddl.contains("title VARCHAR(255),"));
        assert!(ddl.contains("ENGINE=myisam;"));
    }
}
