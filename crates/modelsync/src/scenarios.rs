//! Ready-made models and edit scripts for examples, tests and benchmarks.

use crate::class_model::{Association, AttrType, Attribute, Class, ClassModel};

/// A small library-domain class model: two concrete classes and one
/// abstract base.
pub fn library_model() -> ClassModel {
    ClassModel::from_classes([
        Class::abstract_class("Media", vec![Attribute::new("id", AttrType::Int)]),
        Class::new(
            "Book",
            vec![
                Attribute::new("id", AttrType::Int),
                Attribute::new("title", AttrType::Str),
                Attribute::new("pages", AttrType::Int),
                Attribute::new("in_print", AttrType::Bool),
            ],
        ),
        Class::new(
            "Member",
            vec![
                Attribute::new("id", AttrType::Int),
                Attribute::new("name", AttrType::Str),
            ],
        ),
    ])
}

/// The library model extended with a `Loan` class holding associations to
/// `Book` and `Member` — foreign keys on the database side.
pub fn library_model_with_loans() -> ClassModel {
    let mut m = library_model();
    m.upsert(
        Class::new("Loan", vec![Attribute::new("id", AttrType::Int)])
            .with_association(Association::new("book", "Book"))
            .with_association(Association::new("member", "Member")),
    );
    m
}

/// A synthetic model with `n` concrete classes of `attrs_per_class`
/// attributes each (used to scale benchmarks).
pub fn synthetic_model(n: usize, attrs_per_class: usize) -> ClassModel {
    ClassModel::from_classes((0..n).map(|i| {
        Class::new(
            format!("Class{i}"),
            (0..attrs_per_class)
                .map(|j| {
                    let ty = match j % 3 {
                        0 => AttrType::Int,
                        1 => AttrType::Str,
                        _ => AttrType::Bool,
                    };
                    Attribute::new(format!("attr{j}"), ty)
                })
                .collect(),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_model_has_expected_shape() {
        let m = library_model();
        assert_eq!(m.len(), 3);
        assert_eq!(m.abstract_classes().count(), 1);
    }

    #[test]
    fn synthetic_model_scales() {
        let m = synthetic_model(10, 4);
        assert_eq!(m.len(), 10);
        assert!(m.classes.values().all(|c| c.attributes.len() == 4));
    }
}
