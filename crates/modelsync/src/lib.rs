//! Model-driven engineering substrate: class models ↔ relational schemas,
//! synchronised by a symmetric lens with an explicit complement.
//!
//! The paper's opening example of bx is model-driven development: "such
//! sources are usually models; for example, UML models of a system to be
//! developed". This crate builds that scenario concretely:
//!
//! * [`ClassModel`] — a simple UML-ish class model (classes, typed
//!   attributes, abstract flags);
//! * [`RdbSchema`] — a relational schema model (tables, typed columns,
//!   varchar widths, storage engines);
//! * [`class_rdb_lens`] — the classic *class-to-table* transformation as a
//!   lawful [`esm_symmetric::SymLens`]. Each side owns private data the
//!   other cannot represent (abstract classes have no table; engines and
//!   column widths have no model counterpart), which lives in the
//!   [`Complement`] — and therefore, via Lemma 6, in the *hidden state of
//!   the entangled state monad*.
//!
//! [`sync::class_rdb_bx`] packages the lens as a put-bx ready for
//! sessions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod class_model;
pub mod rdb_model;
pub mod scenarios;
pub mod sync;

pub use class_model::{Association, AttrType, Attribute, Class, ClassModel};
pub use rdb_model::{RdbSchema, SqlColumn, SqlTable, SqlType};
pub use sync::{class_rdb_bx, class_rdb_lens, Complement, TableExtras};
