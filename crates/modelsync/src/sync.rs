//! The class-to-table synchronisation as a symmetric lens with complement.
//!
//! Forward direction: every *concrete* class becomes a table of the same
//! name; attributes become columns (`Int → INTEGER`, `Str → VARCHAR(w)`,
//! `Bool → BOOLEAN`). Abstract classes produce no table.
//!
//! Each side's private data lives in the [`Complement`]:
//!
//! * model-private: the abstract classes, in full;
//! * schema-private: per-table storage engines and per-column varchar
//!   widths.
//!
//! Both `put`s are *total* and re-extract the complement deterministically,
//! which is what makes (PutRL)/(PutLR) hold (checked in the test suite
//! against generated models, not assumed). Via Lemma 6 the lens becomes a
//! put-bx whose hidden state is a consistent
//! `(ClassModel, RdbSchema, Complement)` triple.

use std::collections::BTreeMap;

use esm_core::state::PbxOps;
use esm_symmetric::{SymBxOps, SymLens};

use crate::class_model::{Association, AttrType, Attribute, Class, ClassModel};
use crate::rdb_model::{RdbSchema, SqlColumn, SqlTable, SqlType};

/// Default varchar width assigned to string attributes with no recorded
/// width.
pub const DEFAULT_VARCHAR_WIDTH: u32 = 255;

/// Default storage engine for tables created from classes.
pub const DEFAULT_ENGINE: &str = "innodb";

/// Schema-private details of one table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableExtras {
    /// Storage engine.
    pub engine: String,
    /// Varchar widths by column name.
    pub widths: BTreeMap<String, u32>,
}

/// The synchronisation complement: both sides' private data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Complement {
    /// Model-private: abstract classes (they have no table).
    pub abstract_classes: BTreeMap<String, Class>,
    /// Schema-private: engines and widths, by table name.
    pub table_extras: BTreeMap<String, TableExtras>,
    /// Model-private: which columns are associations and which class they
    /// reference, by table then column name (a foreign-key column does not
    /// record its target class, so this cannot be recovered from the
    /// schema alone).
    pub assoc_targets: BTreeMap<String, BTreeMap<String, String>>,
}

fn attr_to_column(attr: &Attribute, extras: Option<&TableExtras>) -> SqlColumn {
    match attr.ty {
        AttrType::Int => SqlColumn::integer(&attr.name),
        AttrType::Bool => SqlColumn::boolean(&attr.name),
        AttrType::Str => {
            let width = extras
                .and_then(|e| e.widths.get(&attr.name).copied())
                .unwrap_or(DEFAULT_VARCHAR_WIDTH);
            SqlColumn::varchar(&attr.name, width)
        }
    }
}

fn column_to_attr(col: &SqlColumn) -> Attribute {
    let ty = match col.ty {
        SqlType::Integer => AttrType::Int,
        SqlType::Boolean => AttrType::Bool,
        SqlType::Varchar => AttrType::Str,
    };
    Attribute::new(&col.name, ty)
}

fn extras_of_table(table: &SqlTable) -> TableExtras {
    TableExtras {
        engine: table.engine.clone(),
        widths: table
            .columns
            .iter()
            .filter_map(|c| match (c.ty, c.width) {
                (SqlType::Varchar, Some(w)) => Some((c.name.clone(), w)),
                _ => None,
            })
            .collect(),
    }
}

/// `putr`: rebuild the schema from the model, reusing schema-private data
/// recorded in the complement. Attribute columns come first, association
/// (foreign-key) columns after — the transformation's normal form.
fn put_right(model: ClassModel, c: Complement) -> (RdbSchema, Complement) {
    let mut schema = RdbSchema::new();
    let mut out = Complement::default();
    for class in model.classes.values() {
        if class.is_abstract {
            out.abstract_classes
                .insert(class.name.clone(), class.clone());
            continue;
        }
        let old = c.table_extras.get(&class.name);
        let engine = old
            .map(|e| e.engine.clone())
            .unwrap_or_else(|| DEFAULT_ENGINE.to_string());
        let mut columns: Vec<SqlColumn> = class
            .attributes
            .iter()
            .map(|a| attr_to_column(a, old))
            .collect();
        let mut targets = BTreeMap::new();
        for assoc in &class.associations {
            columns.push(SqlColumn::integer(&assoc.name));
            targets.insert(assoc.name.clone(), assoc.target.clone());
        }
        if !targets.is_empty() {
            out.assoc_targets.insert(class.name.clone(), targets);
        }
        let table = SqlTable::new(&class.name, columns).with_engine(engine);
        out.table_extras
            .insert(class.name.clone(), extras_of_table(&table));
        schema.upsert(table);
    }
    (schema, out)
}

/// `putl`: rebuild the model from the schema, resurrecting abstract
/// classes and association targets recorded in the complement. An
/// `INTEGER` column marked in the complement becomes an association;
/// everything else becomes an attribute. (Dropped columns silently drop
/// their association marks; new columns default to attributes.)
fn put_left(schema: RdbSchema, c: Complement) -> (ClassModel, Complement) {
    let mut model = ClassModel::new();
    let mut out = Complement::default();
    let empty = BTreeMap::new();
    for table in schema.tables.values() {
        let marks = c.assoc_targets.get(&table.name).unwrap_or(&empty);
        let mut attributes: Vec<Attribute> = Vec::new();
        let mut associations: Vec<Association> = Vec::new();
        let mut used = BTreeMap::new();
        for col in &table.columns {
            match (col.ty, marks.get(&col.name)) {
                (SqlType::Integer, Some(target)) => {
                    associations.push(Association::new(&col.name, target));
                    used.insert(col.name.clone(), target.clone());
                }
                _ => attributes.push(column_to_attr(col)),
            }
        }
        let mut class = Class::new(&table.name, attributes);
        class.associations = associations;
        model.upsert(class);
        if !used.is_empty() {
            out.assoc_targets.insert(table.name.clone(), used);
        }
        out.table_extras
            .insert(table.name.clone(), extras_of_table(table));
    }
    for (name, class) in &c.abstract_classes {
        // A concrete class/table with the same name wins; the stale
        // abstract entry is dropped from the complement too.
        if !schema.tables.contains_key(name) {
            model.upsert(class.clone());
            out.abstract_classes.insert(name.clone(), class.clone());
        }
    }
    (model, out)
}

/// The class-to-table transformation as a symmetric lens.
pub fn class_rdb_lens() -> SymLens<ClassModel, RdbSchema, Complement> {
    SymLens::new(put_right, put_left, Complement::default())
}

/// The class-to-table transformation as a put-bx (Lemma 6): hidden state =
/// consistent `(model, schema, complement)` triples.
pub fn class_rdb_bx() -> SymBxOps<ClassModel, RdbSchema, Complement> {
    SymBxOps::new(class_rdb_lens())
}

/// Convenience: an ops-level session-ready put-bx state from a model.
pub fn initial_state_from_model(model: ClassModel) -> (ClassModel, RdbSchema, Complement) {
    class_rdb_bx().initial_from_a(model)
}

/// One high-level "edit and resync" step: apply `edit` to the model side
/// of a state and propagate. Returns the new state and the refreshed
/// schema.
pub fn edit_model(
    state: (ClassModel, RdbSchema, Complement),
    edit: impl FnOnce(&mut ClassModel),
) -> ((ClassModel, RdbSchema, Complement), RdbSchema) {
    let bx = class_rdb_bx();
    let mut model = state.0.clone();
    edit(&mut model);
    let (state2, schema) = bx.put_a(state, model);
    (state2, schema)
}

/// One high-level "edit and resync" step on the schema side.
pub fn edit_schema(
    state: (ClassModel, RdbSchema, Complement),
    edit: impl FnOnce(&mut RdbSchema),
) -> ((ClassModel, RdbSchema, Complement), ClassModel) {
    let bx = class_rdb_bx();
    let mut schema = state.1.clone();
    edit(&mut schema);
    let (state2, model) = bx.put_b(state, schema);
    (state2, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::library_model;
    use esm_symmetric::consistency::is_consistent;
    use esm_symmetric::laws::check_sym_lens;

    #[test]
    fn concrete_classes_become_tables() {
        let l = class_rdb_lens();
        let (schema, _c) = l.putr(library_model(), l.missing());
        assert!(schema.table("Book").is_some());
        assert!(schema.table("Member").is_some());
        // Abstract class: no table.
        assert!(schema.table("Media").is_none());
        let book = schema.table("Book").unwrap();
        assert_eq!(book.column("title").unwrap().ty, SqlType::Varchar);
        assert_eq!(
            book.column("title").unwrap().width,
            Some(DEFAULT_VARCHAR_WIDTH)
        );
        assert_eq!(book.column("pages").unwrap().ty, SqlType::Integer);
    }

    #[test]
    fn abstract_classes_survive_roundtrips_via_the_complement() {
        let l = class_rdb_lens();
        let (a, b, c) = l.settle_from_a(library_model(), l.missing());
        assert!(a.class("Media").is_some());
        // Rebuild the model purely from the schema + complement.
        let (model2, _c2) = l.putl(b, c);
        assert!(model2.class("Media").is_some());
        assert!(model2.class("Media").unwrap().is_abstract);
    }

    #[test]
    fn schema_private_data_survives_model_edits() {
        let l = class_rdb_lens();
        let (_a, mut schema, c) = l.settle_from_a(library_model(), l.missing());
        // DBA tweaks: custom engine and width.
        let mut book = schema.table("Book").unwrap().clone();
        book.engine = "rocksdb".to_string();
        for col in &mut book.columns {
            if col.name == "title" {
                col.width = Some(80);
            }
        }
        schema.upsert(book);
        // Sync the tweak back into the complement.
        let (model2, c2) = l.putl(schema, c);
        // Modeller renames an attribute-free edit: add a class.
        let mut model3 = model2.clone();
        model3.upsert(Class::new(
            "Loan",
            vec![Attribute::new("due", AttrType::Str)],
        ));
        let (schema3, _c3) = l.putr(model3, c2);
        let book3 = schema3.table("Book").unwrap();
        assert_eq!(book3.engine, "rocksdb");
        assert_eq!(book3.column("title").unwrap().width, Some(80));
        // The new class's new table gets defaults.
        assert_eq!(schema3.table("Loan").unwrap().engine, DEFAULT_ENGINE);
    }

    #[test]
    fn lens_laws_hold_on_generated_states() {
        let l = class_rdb_lens();
        let models = [library_model(), ClassModel::new()];
        let (_, schema1, c1) = l.settle_from_a(library_model(), l.missing());
        let schemas = [schema1.clone(), RdbSchema::new()];
        let complements = [Complement::default(), c1];
        assert!(check_sym_lens(&l, &models, &schemas, &complements).is_empty());
    }

    #[test]
    fn settled_triples_are_consistent() {
        let l = class_rdb_lens();
        let (a, b, c) = l.settle_from_a(library_model(), l.missing());
        assert!(is_consistent(&l, &a, &b, &c));
    }

    #[test]
    fn dropping_a_table_drops_the_class() {
        let state = initial_state_from_model(library_model());
        let (state2, model) = edit_schema(state, |s| {
            s.remove("Member");
        });
        assert!(model.class("Member").is_none());
        assert!(model.class("Book").is_some());
        let bx = class_rdb_bx();
        assert!(bx.invariant(&state2));
    }

    #[test]
    fn adding_a_class_adds_a_table() {
        let state = initial_state_from_model(library_model());
        let (state2, schema) = edit_model(state, |m| {
            m.upsert(Class::new(
                "Loan",
                vec![Attribute::new("book", AttrType::Int)],
            ));
        });
        assert!(schema.table("Loan").is_some());
        let bx = class_rdb_bx();
        assert!(bx.invariant(&state2));
    }

    #[test]
    fn associations_become_integer_foreign_key_columns() {
        use crate::scenarios::library_model_with_loans;
        let l = class_rdb_lens();
        let (schema, c) = l.putr(library_model_with_loans(), l.missing());
        let loan = schema.table("Loan").expect("Loan table exists");
        assert_eq!(loan.column("book").expect("fk column").ty, SqlType::Integer);
        assert_eq!(
            loan.column("member").expect("fk column").ty,
            SqlType::Integer
        );
        // The targets are model-private: recorded in the complement.
        assert_eq!(c.assoc_targets["Loan"]["book"], "Book");
        assert_eq!(c.assoc_targets["Loan"]["member"], "Member");
    }

    #[test]
    fn association_targets_survive_schema_roundtrips() {
        use crate::scenarios::library_model_with_loans;
        let l = class_rdb_lens();
        let (model0, schema, c) = l.settle_from_a(library_model_with_loans(), l.missing());
        // Rebuild the model from the schema alone (plus complement).
        let (model1, _c1) = l.putl(schema, c);
        let loan = model1.class("Loan").expect("Loan survives");
        assert_eq!(loan.association("book").expect("assoc").target, "Book");
        assert_eq!(loan.association("member").expect("assoc").target, "Member");
        assert_eq!(model1, model0);
    }

    #[test]
    fn sym_laws_hold_with_associations() {
        use crate::scenarios::library_model_with_loans;
        use esm_symmetric::laws::check_sym_lens;
        let l = class_rdb_lens();
        let (_, schema1, c1) = l.settle_from_a(library_model_with_loans(), l.missing());
        let models = [
            library_model_with_loans(),
            crate::scenarios::library_model(),
        ];
        let schemas = [schema1, RdbSchema::new()];
        let complements = [Complement::default(), c1];
        assert!(check_sym_lens(&l, &models, &schemas, &complements).is_empty());
    }

    #[test]
    fn dropping_a_foreign_key_column_drops_the_association() {
        use crate::scenarios::library_model_with_loans;
        let state = initial_state_from_model(library_model_with_loans());
        let (state2, model) = edit_schema(state, |s| {
            let mut loan = s.table("Loan").expect("exists").clone();
            loan.columns.retain(|col| col.name != "member");
            s.upsert(loan);
        });
        let loan = model.class("Loan").expect("exists");
        assert!(loan.association("member").is_none());
        assert!(loan.association("book").is_some());
        assert!(class_rdb_bx().invariant(&state2));
    }

    #[test]
    fn name_collision_between_abstract_and_table_resolves_to_concrete() {
        let l = class_rdb_lens();
        // Complement claims "Book" is abstract, but the schema has a Book
        // table: the concrete side wins and the stale entry is purged.
        let mut c = Complement::default();
        c.abstract_classes
            .insert("Book".to_string(), Class::abstract_class("Book", vec![]));
        let schema =
            RdbSchema::from_tables([SqlTable::new("Book", vec![SqlColumn::integer("id")])]);
        let (model, c2) = l.putl(schema, c);
        assert!(!model.class("Book").unwrap().is_abstract);
        assert!(c2.abstract_classes.is_empty());
    }
}
