//! Engine-level errors: store errors plus transaction and recovery
//! failures.

use esm_store::StoreError;

/// Everything that can go wrong inside the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An underlying store operation failed.
    Store(StoreError),
    /// Optimistic commit lost the first-committer-wins race: another
    /// transaction committed an overlapping change first.
    Conflict {
        /// The table on which the overlap was detected.
        table: String,
        /// What overlapped (for diagnostics).
        detail: String,
    },
    /// A named view is not registered.
    NoSuchView(String),
    /// A view name is already registered.
    ViewExists(String),
    /// A named table is not registered with the engine.
    NoSuchTable(String),
    /// A write-ahead-log entry failed to parse during recovery.
    WalCorrupt(String),
    /// A WAL record's sequence number did not strictly increase: a
    /// duplicate or stale record reached [`crate::Wal::push`] or
    /// [`crate::Wal::replay`]. Re-applying it would double-count the
    /// delta, so it is rejected instead.
    DuplicateSeq {
        /// The offending record's sequence number.
        seq: u64,
        /// The highest sequence number already in the log.
        last: u64,
    },
    /// A durable-WAL filesystem operation failed (message carries the
    /// underlying `io::Error` text; `io::Error` itself is neither `Clone`
    /// nor `PartialEq`).
    Io(String),
    /// An optimistic write exhausted its retry budget.
    RetriesExhausted {
        /// The view being written.
        view: String,
        /// How many attempts were made.
        attempts: u32,
    },
    /// A table name collides with the WAL marker namespace (names
    /// starting with `!` are reserved — see
    /// [`crate::wal::reserved_table_name`]).
    ReservedTableName(String),
    /// A sharding-topology operation failed: bad split points, a split
    /// key outside its shard's range, an undeclared key touched by a
    /// keyed transaction, or an unmergeable shard pair.
    ShardTopology(String),
    /// A write reached a read replica. Replicas serve every read path of
    /// the [`crate::Engine`] trait but never take writes; the error
    /// carries the current primary's advertised address (empty when the
    /// replica has not learned one yet) so clients can reconnect and
    /// retry — the failover redirect.
    NotPrimary {
        /// The advertised address of the engine currently taking writes.
        primary: String,
    },
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> EngineError {
        EngineError::Store(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> EngineError {
        EngineError::Io(e.to_string())
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::Conflict { table, detail } => {
                write!(f, "commit conflict on table {table}: {detail}")
            }
            EngineError::NoSuchView(v) => write!(f, "no such view: {v}"),
            EngineError::ViewExists(v) => write!(f, "view already defined: {v}"),
            EngineError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            EngineError::WalCorrupt(msg) => write!(f, "corrupt WAL: {msg}"),
            EngineError::DuplicateSeq { seq, last } => write!(
                f,
                "WAL sequence numbers must increase strictly: {seq} after {last}"
            ),
            EngineError::Io(msg) => write!(f, "durable WAL I/O error: {msg}"),
            EngineError::RetriesExhausted { view, attempts } => {
                write!(
                    f,
                    "write to view {view} still conflicted after {attempts} attempts"
                )
            }
            EngineError::ReservedTableName(t) => {
                write!(
                    f,
                    "table name {t:?} is reserved: names starting with '!' collide \
                     with WAL markers"
                )
            }
            EngineError::ShardTopology(msg) => write!(f, "shard topology error: {msg}"),
            EngineError::NotPrimary { primary } => {
                if primary.is_empty() {
                    write!(f, "not the primary: this replica takes no writes")
                } else {
                    write!(f, "not the primary: retry against {primary}")
                }
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::Conflict {
            table: "t".into(),
            detail: "key [1]".into(),
        };
        assert!(e.to_string().contains("conflict on table t"));
        let s: EngineError = StoreError::NoSuchTable("x".into()).into();
        assert!(s.to_string().contains("store error"));
        assert!(EngineError::RetriesExhausted {
            view: "v".into(),
            attempts: 3
        }
        .to_string()
        .contains("3 attempts"));
        assert!(EngineError::DuplicateSeq { seq: 3, last: 5 }
            .to_string()
            .contains("3 after 5"));
        let io: EngineError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(EngineError::ReservedTableName("!x".into())
            .to_string()
            .contains("reserved"));
        assert!(EngineError::ShardTopology("no shard 9".into())
            .to_string()
            .contains("no shard 9"));
    }
}
