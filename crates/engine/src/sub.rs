//! Subscription support: the engine-side surface a push server builds on.
//!
//! Two pieces, both deliberately tiny:
//!
//! * [`CommitNotifier`] — a monotone "something settled" signal. Commit
//!   paths publish their stamp after dropping every lock; a push pump
//!   parks in [`CommitNotifier::wait_past`] and wakes exactly when the
//!   log has advanced past what it last drained. No subscriber state
//!   lives here, so a slow (or dead) consumer can never slow a commit:
//!   publishing is a mutex'd store + `notify_all`, independent of how
//!   many waiters exist or how far behind they are.
//! * [`ViewDeltas`] — one drained batch for one subscriber cursor: the
//!   coalesced view-level delta covering `(from_seq, to_seq]`, or a
//!   full-window *resync* when the incremental path is unavailable
//!   (cursor truncated out of the WAL, a lens propagation escape hatch,
//!   or an engine without incremental support).
//!
//! The cursor contract: a subscriber holds an opaque `u64` cursor (a WAL
//! sequence number on [`crate::EngineServer`], a commit epoch elsewhere).
//! `Engine::view_deltas_since(name, cursor)` returns everything settled
//! past it, O(delta) where the engine supports it; applying `delta` to a
//! window that reflects `from_seq` (or adopting `resync` wholesale)
//! yields the window at `to_seq`, the subscriber's next cursor.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use esm_store::{Delta, Table};

/// A monotone commit signal: the highest stamp any commit path has
/// published, plus a condvar for parked push pumps. Cheap to publish
/// (commits never wait on subscribers), cheap to wait on (no polling).
#[derive(Debug, Default)]
pub struct CommitNotifier {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl CommitNotifier {
    /// A notifier that has seen nothing.
    pub fn new() -> CommitNotifier {
        CommitNotifier::default()
    }

    /// Publish a commit stamp. Monotone: an older stamp (a racing
    /// publisher losing the park) never moves the signal backwards.
    pub fn publish(&self, seq: u64) {
        let mut cur = self.seq.lock().expect("notifier lock poisoned");
        if seq > *cur {
            *cur = seq;
            self.cv.notify_all();
        }
    }

    /// The highest published stamp.
    pub fn last(&self) -> u64 {
        *self.seq.lock().expect("notifier lock poisoned")
    }

    /// Park until the signal is past `seen` (returns the new signal) or
    /// `timeout` elapses (returns the current signal, possibly still
    /// `seen`). The timeout keeps pumps responsive to shutdown and to
    /// retry backpressure-stalled subscribers without a commit.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let guard = self.seq.lock().expect("notifier lock poisoned");
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |cur| *cur <= seen)
            .expect("notifier lock poisoned");
        *guard
    }
}

/// One drained batch for one subscriber cursor — what
/// [`crate::Engine::view_deltas_since`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDeltas {
    /// The cursor the batch starts after (the caller's cursor, echoed).
    pub from_seq: u64,
    /// The cursor the batch advances the subscriber to. Equal to
    /// `from_seq` when nothing settled has landed past it.
    pub to_seq: u64,
    /// The coalesced view-level delta covering `(from_seq, to_seq]`.
    /// Empty when nothing changed or when `resync` is set.
    pub delta: Delta,
    /// `Some(window)` when the incremental path was unavailable: adopt
    /// this full window (it reflects `to_seq`) and discard local state.
    pub resync: Option<Table>,
}

impl ViewDeltas {
    /// An empty batch: nothing settled past `cursor` yet.
    pub fn empty(cursor: u64) -> ViewDeltas {
        ViewDeltas {
            from_seq: cursor,
            to_seq: cursor,
            delta: Delta::empty(),
            resync: None,
        }
    }

    /// Does this batch carry anything a subscriber must hear about?
    pub fn is_empty(&self) -> bool {
        self.resync.is_none() && self.delta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn notifier_is_monotone_and_wakes_waiters() {
        let n = Arc::new(CommitNotifier::new());
        assert_eq!(n.last(), 0);
        n.publish(5);
        n.publish(3); // stale publisher: ignored
        assert_eq!(n.last(), 5);

        let waiter = {
            let n = Arc::clone(&n);
            std::thread::spawn(move || n.wait_past(5, Duration::from_secs(10)))
        };
        // Let the waiter park, then advance.
        std::thread::sleep(Duration::from_millis(20));
        n.publish(7);
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn wait_past_times_out_without_a_commit() {
        let n = CommitNotifier::new();
        n.publish(2);
        // Already past: returns immediately.
        assert_eq!(n.wait_past(1, Duration::from_secs(10)), 2);
        // Not past: times out at the current signal.
        assert_eq!(n.wait_past(2, Duration::from_millis(10)), 2);
    }

    #[test]
    fn view_deltas_empty_batches_know_it() {
        let b = ViewDeltas::empty(9);
        assert!(b.is_empty());
        assert_eq!((b.from_seq, b.to_seq), (9, 9));
    }
}
