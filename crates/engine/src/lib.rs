//! # `esm-engine` — a concurrent, transactional bidirectional database
//! engine over entangled sessions.
//!
//! The paper models a bidirectional transformation as two entangled
//! stateful interfaces over one shared hidden state. That is exactly the
//! shape of a database serving live views: the hidden state is the base
//! table, each client's view is an entangled window onto it, and every
//! view write is a lens `put` whose effect every other view observes.
//! This crate scales that idea from a single-threaded session to a real
//! engine: snapshot transactions, a write-ahead log, secondary-index
//! seeks, and lock-striped concurrent access.
//!
//! ## Architecture
//!
//! ```text
//!   clients (threads)            engine                        esm-store
//!  ┌───────────────┐   ┌──────────────────────────┐   ┌─────────────────────┐
//!  │ EntangledView ├──▶│ EngineServer             │   │ Table (+ indexes)   │
//!  │  .get()/.put()│   │  ├ Stripes<Table>  ──────┼──▶│ Delta (ordered merge│
//!  │  .edit(f)     │   │  ├ views: name → Lens    │   │        diffs)       │
//!  └───────────────┘   │  ├ Wal (committed deltas)│   │ Database            │
//!  ┌───────────────┐   │  │   └ DurableWal ───────┼─┐ └─────────────────────┘
//!  │ TxStore/Tx    ├──▶│  ├ Metrics               │ │ ┌─────────────────────┐
//!  │ begin/commit  │   │  └ first-committer-wins  │ └▶│ wal-*.seg segments  │
//!  └───────────────┘   │    via Delta key overlap │   │ checkpoint-*.ckpt   │
//!                      └──────────────────────────┘   └─────────────────────┘
//! ```
//!
//! ### Transaction lifecycle ([`tx`])
//!
//! [`TxStore::begin`] snapshots the committed database; the [`Tx`] works
//! on its private copy; [`Tx::commit`] diffs every table with
//! [`esm_store::Delta::between`], validates **first-committer-wins** (a
//! commit conflicts iff a WAL record newer than its snapshot touches one
//! of the same primary keys), then publishes the deltas and appends them
//! to the WAL. Disjoint concurrent commits rebase cleanly; overlapping
//! ones abort with [`EngineError::Conflict`].
//!
//! ### WAL format ([`wal`])
//!
//! An append-only sequence of `(seq, table, delta)` records, one per
//! committed table change, with a schema-free text codec
//! ([`esm_store::codec`]: type-tagged cells, escaped strings).
//! [`Wal::replay`] applies the records to the engine's baseline database
//! and reproduces the live state exactly — the recovery law the test
//! suites assert. Sequence numbers must strictly increase; duplicates
//! are rejected with the typed [`EngineError::DuplicateSeq`] instead of
//! being silently re-applied.
//!
//! ### Durability ([`durable`], [`segment`], [`checkpoint`])
//!
//! In-memory is the default; pass [`Durability::Durable`] to
//! [`EngineServer::with_durability`] / [`TxStore::with_durability`] and
//! every commit is *written ahead* to an on-disk log before it is
//! applied. One directory holds the whole log:
//!
//! ```text
//! wal-dir/
//!   checkpoint-00000000000000000000.ckpt   genesis snapshot (seq 0)
//!   checkpoint-00000000000000000256.ckpt   newest checkpoint
//!   wal-00000000000000000201.seg           segment: records 201..=262
//!   wal-00000000000000000263.seg           active segment (tail)
//! ```
//!
//! **Segments** (`wal-<first seq, zero-padded>.seg`) hold consecutive
//! records in the WAL text format:
//!
//! ```text
//! #<seq> <table> +<inserted> -<deleted>
//! + <cell>\t<cell>...        (inserted rows)
//! - <cell>\t<cell>...        (deleted rows)
//! ```
//!
//! The active segment rotates to a fresh file past
//! [`DurabilityConfig::segment_bytes`], so compaction can drop whole
//! files. **Checkpoints** (`checkpoint-<seq>.ckpt`) wrap a serialized
//! database snapshot ([`esm_store::snapshot`]) in a `!checkpoint
//! seq=<n>` header and `!end` trailer, written atomically (temp file →
//! fsync → rename → directory fsync); the durable WAL maintains a shadow
//! database incrementally, so a checkpoint never replays anything.
//! Compaction retains the newest **two** checkpoints (fallback if the
//! newest proves unreadable) and deletes every segment fully covered by
//! the older retained one.
//!
//! **Group commit**: appends buffer and one fsync covers up to
//! [`DurabilityConfig::group_commit`] records. With `group_commit = 1`
//! every acknowledged commit is durable before the call returns; with
//! `n > 1`, a crash may drop up to `n - 1` acknowledged records — but
//! always to a clean record boundary, never a torn state. The durability
//! unit is one record, so a multi-table transaction interrupted between
//! records recovers its prefix (commit markers are a ROADMAP follow-on).
//!
//! **Recovery** ([`EngineServer::recover`]) is a four-step state
//! machine — *checkpoint scan* (newest valid checkpoint; torn ones are
//! skipped), *segment scan* (decode each segment's longest
//! complete-record prefix; [`segment::decode_segment_prefix`] tolerates
//! tails cut mid-line or mid-code-point), *plan*
//! ([`durable::plan_recovery`]: skip stale/duplicate records, require
//! the rest to extend the checkpoint contiguously, reject gaps as
//! corruption), and *repair* (truncate torn tails, resume the log on a
//! fresh segment). `tests/crash_recovery.rs` drives this at **every byte
//! offset** of a recorded multi-segment run and asserts the recovered
//! state equals the live state at the longest durable prefix — the
//! paper's replayed-state ≡ live-state equivalence, checked exhaustively
//! under crashes.
//!
//! ### Index maintenance
//!
//! Base tables carry secondary B-tree indexes
//! ([`esm_store::Table::create_index`]) that every insert/upsert/delete
//! maintains incrementally. Registering a view whose select predicate
//! constrains base columns auto-indexes those columns, so view reads seek
//! instead of scanning; lens `put` paths that clone the base keep its
//! indexes warm.
//!
//! ### Concurrency ([`server`], [`stripe`])
//!
//! Tables are spread over [`Stripes`] (rwlocks chosen by stable name
//! hash): traffic on different tables never shares a lock. View writes
//! come in a serialized pessimistic flavour ([`EngineServer::write_view`])
//! and an optimistic flavour with first-committer-wins retries
//! ([`EngineServer::edit_view_optimistic`]); both report the base-table
//! [`esm_store::Delta`] they committed.
//!
//! ## Quickstart
//!
//! ```
//! use esm_engine::EngineServer;
//! use esm_relational::ViewDef;
//! use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};
//!
//! let schema = Schema::build(
//!     &[("id", ValueType::Int), ("dept", ValueType::Str)], &["id"],
//! ).unwrap();
//! let mut db = Database::new();
//! db.create_table(
//!     "staff",
//!     Table::from_rows(schema, vec![row![1, "research"], row![2, "ops"]]).unwrap(),
//! ).unwrap();
//!
//! let engine = EngineServer::new(db);
//! let research = engine.define_view(
//!     "research", "staff",
//!     &ViewDef::base().select(Predicate::eq(Operand::col("dept"), Operand::val("research"))),
//! ).unwrap();
//!
//! // Each client edit is a transaction; the returned delta says what the
//! // write did to the hidden base table.
//! let delta = research.edit(|v| Ok(v.upsert(row![3, "research"]).map(|_| ())?)).unwrap();
//! assert_eq!(delta.inserted, vec![row![3, "research"]]);
//! // Recovery: replaying the WAL over the baseline equals the live state.
//! assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod durable;
pub mod error;
pub mod metrics;
pub mod segment;
pub mod server;
pub mod stripe;
pub mod tx;
pub mod view;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use durable::{
    plan_recovery, scan_segments, Durability, DurabilityConfig, DurableWal, RecoveryReport,
    ScannedSegment,
};
pub use error::EngineError;
pub use metrics::{Metrics, MetricsSnapshot, WalStats};
pub use segment::{decode_segment_prefix, SegmentFile, SegmentPrefix, SegmentWriter, SimFile};
pub use server::{EngineServer, DEFAULT_OPTIMISTIC_ATTEMPTS};
pub use stripe::Stripes;
pub use tx::{delta_keys, deltas_conflict, Tx, TxStore};
pub use view::EntangledView;
pub use wal::{Wal, WalRecord};
