//! # `esm-engine` — a concurrent, transactional bidirectional database
//! engine over entangled sessions.
//!
//! The paper models a bidirectional transformation as two entangled
//! stateful interfaces over one shared hidden state. That is exactly the
//! shape of a database serving live views: the hidden state is the base
//! table, each client's view is an entangled window onto it, and every
//! view write is a lens `put` whose effect every other view observes.
//! This crate scales that idea from a single-threaded session to a real
//! engine: snapshot transactions, a write-ahead log, secondary-index
//! seeks, and lock-striped concurrent access.
//!
//! ## Architecture
//!
//! ```text
//!   clients (threads)            engine                        esm-store
//!  ┌───────────────┐   ┌──────────────────────────┐   ┌─────────────────────┐
//!  │ EntangledView ├──▶│ EngineServer             │   │ Table (+ indexes)   │
//!  │  .get()/.put()│   │  ├ Stripes<Table>  ──────┼──▶│ Delta (ordered merge│
//!  │  .edit(f)     │   │  ├ views: name → Lens    │   │        diffs)       │
//!  └───────────────┘   │  ├ Wal (committed deltas)│   │ Database            │
//!  ┌───────────────┐   │  └ Metrics               │   └─────────────────────┘
//!  │ TxStore/Tx    ├──▶│  first-committer-wins    │
//!  │ begin/commit  │   │  via Delta key overlap   │
//!  └───────────────┘   └──────────────────────────┘
//! ```
//!
//! ### Transaction lifecycle ([`tx`])
//!
//! [`TxStore::begin`] snapshots the committed database; the [`Tx`] works
//! on its private copy; [`Tx::commit`] diffs every table with
//! [`esm_store::Delta::between`], validates **first-committer-wins** (a
//! commit conflicts iff a WAL record newer than its snapshot touches one
//! of the same primary keys), then publishes the deltas and appends them
//! to the WAL. Disjoint concurrent commits rebase cleanly; overlapping
//! ones abort with [`EngineError::Conflict`].
//!
//! ### WAL format ([`wal`])
//!
//! An append-only sequence of `(seq, table, delta)` records, one per
//! committed table change, with a schema-free text codec (type-tagged
//! cells, escaped strings). [`Wal::replay`] applies the records to the
//! engine's baseline database and reproduces the live state exactly —
//! the recovery law the test suites assert.
//!
//! ### Index maintenance
//!
//! Base tables carry secondary B-tree indexes
//! ([`esm_store::Table::create_index`]) that every insert/upsert/delete
//! maintains incrementally. Registering a view whose select predicate
//! constrains base columns auto-indexes those columns, so view reads seek
//! instead of scanning; lens `put` paths that clone the base keep its
//! indexes warm.
//!
//! ### Concurrency ([`server`], [`stripe`])
//!
//! Tables are spread over [`Stripes`] (rwlocks chosen by stable name
//! hash): traffic on different tables never shares a lock. View writes
//! come in a serialized pessimistic flavour ([`EngineServer::write_view`])
//! and an optimistic flavour with first-committer-wins retries
//! ([`EngineServer::edit_view_optimistic`]); both report the base-table
//! [`esm_store::Delta`] they committed.
//!
//! ## Quickstart
//!
//! ```
//! use esm_engine::EngineServer;
//! use esm_relational::ViewDef;
//! use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};
//!
//! let schema = Schema::build(
//!     &[("id", ValueType::Int), ("dept", ValueType::Str)], &["id"],
//! ).unwrap();
//! let mut db = Database::new();
//! db.create_table(
//!     "staff",
//!     Table::from_rows(schema, vec![row![1, "research"], row![2, "ops"]]).unwrap(),
//! ).unwrap();
//!
//! let engine = EngineServer::new(db);
//! let research = engine.define_view(
//!     "research", "staff",
//!     &ViewDef::base().select(Predicate::eq(Operand::col("dept"), Operand::val("research"))),
//! ).unwrap();
//!
//! // Each client edit is a transaction; the returned delta says what the
//! // write did to the hidden base table.
//! let delta = research.edit(|v| Ok(v.upsert(row![3, "research"]).map(|_| ())?)).unwrap();
//! assert_eq!(delta.inserted, vec![row![3, "research"]]);
//! // Recovery: replaying the WAL over the baseline equals the live state.
//! assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod metrics;
pub mod server;
pub mod stripe;
pub mod tx;
pub mod view;
pub mod wal;

pub use error::EngineError;
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{EngineServer, DEFAULT_OPTIMISTIC_ATTEMPTS};
pub use stripe::Stripes;
pub use tx::{delta_keys, deltas_conflict, Tx, TxStore};
pub use view::EntangledView;
pub use wal::{Wal, WalRecord};
