//! # `esm-engine` — a concurrent, transactional bidirectional database
//! engine over entangled sessions.
//!
//! The paper models a bidirectional transformation as two entangled
//! stateful interfaces over one shared hidden state. That is exactly the
//! shape of a database serving live views: the hidden state is the base
//! table, each client's view is an entangled window onto it, and every
//! view write is a lens `put` whose effect every other view observes.
//! This crate scales that idea from a single-threaded session to a real
//! engine: snapshot transactions, a write-ahead log, secondary-index
//! seeks, and lock-striped concurrent access.
//!
//! ## Architecture
//!
//! Clients never see an engine *shape* — they see the [`Engine`] trait.
//! Handles ([`EntangledView`]) and per-client state ([`Session`]) are
//! written against `dyn Engine`, so the same client code (and the same
//! conformance suite, [`testkit`]) runs against the lock-striped
//! in-process engine, the key-range-sharded engine, and — via the
//! `esm-net` crate's `RemoteEngine`/`NetServer` pair — an engine on the
//! far side of a socket:
//!
//! ```text
//!   client state                 the one trait            implementations
//!  ┌────────────────┐    ┌───────────────────────┐   ┌──────────────────────────┐
//!  │ Session        │    │ Engine                │   │ EngineServer             │
//!  │  ├ view handles├───▶│  transact             │◀──┤  ├ Stripes<Table>        │
//!  │  ├ retry policy│    │  define_view / view   │   │  ├ views: DeltaLens +    │
//!  │  └ commit stamp│    │  read_view            │   │  │   materialized window │
//!  ├────────────────┤    │  write_view           │   │  ├ Wal ── DurableWal ──▶ │ wal-*.seg
//!  │ EntangledView  ├───▶│  edit_view_optimistic │   │  └ FCW via key overlap   │ checkpoint-*.ckpt
//!  │  .get/.put     │    │  metrics / checkpoint │   ├──────────────────────────┤
//!  │  .edit(f)      │    │  snapshot / sync_wal  │   │ ShardedEngineServer      │
//!  └────────────────┘    └───────────┬───────────┘   │  ├ ShardRouter (ranges)  │
//!                                    │               │  ├ Shard ×N: db+wal each │──▶ shard-<id>/
//!        the same handles, over ─────┘               │  ├ ShardCoordinator (2PC)│    topology.esm
//!        a wire (esm-net):                           │  └ rebalance split/merge │
//!  ┌────────────────┐  frames   ┌────────────────┐   ├──────────────────────────┤
//!  │ RemoteEngine   ├─[len|crc|─▶ NetServer      │   │ RemoteEngine (esm-net)   │
//!  │ impl Engine    │  payload] │  poller+workers├──▶│  CAS edits, pre-image-   │
//!  └────────────────┘◀──────────┤  Session/conn  │   │  validated transactions  │
//!                               └────────────────┘   └──────────────────────────┘
//! ```
//!
//! ### The [`Engine`] trait and [`Session`]s
//!
//! [`Engine`] is object safe (`Arc<dyn Engine>` is the working
//! currency): view handles hold one, a [`Session`] adds per-client
//! state on top — cached view registrations, the client's last commit
//! stamp, and its optimistic retry policy — and the network server
//! creates one `Session` per accepted connection, so "per-client"
//! means the same thing in-process and on a socket.
//! [`Engine::transact`] commits multi-table snapshot transactions
//! atomically on every implementation: chained WAL record groups on the
//! unsharded engine, per-key routing with two-phase commit across
//! shards, and client-driven pre-image validation over the wire.
//!
//! ### Sharding ([`shard`])
//!
//! [`shard::ShardedEngineServer`] partitions every table across N
//! [`shard::Shard`]s by primary-key range ([`shard::ShardRouter`]): each
//! shard owns its own committed database piece, in-memory WAL and
//! (optionally) durable segment log under `base-dir/shard-<id>/`, so
//! disjoint traffic shares neither a lock nor a commit pipeline.
//!
//! * **Single-shard fast path**: a transaction whose keys route to one
//!   shard validates first-committer-wins against that shard's WAL
//!   alone and commits under its lock — no coordination.
//! * **Cross-shard 2PC**: the [`shard::ShardCoordinator`] write-locks
//!   every participant in index order, appends each shard's delta chain
//!   terminated by a `!prepare <gtx>` marker (fsynced), then appends
//!   `!resolve commit <gtx>` and applies. Recovery settles a
//!   coordinator crash deterministically: if *any* shard's log holds a
//!   commit resolution the transaction commits everywhere, otherwise it
//!   is presumed aborted everywhere — all-or-nothing on every shard.
//!   The missing resolutions are appended during recovery, so the logs
//!   self-heal.
//! * **Online rebalancing**: [`shard::ShardedEngineServer::split_shard`]
//!   drains a key range into a fresh shard under a brief write fence
//!   (new shard's genesis checkpoint = the moved rows; the donor logs a
//!   deletion delta), `merge_shards` fuses adjacent ranges; the
//!   `topology.esm` manifest is rewritten atomically and recovery prunes
//!   whatever a mid-rebalance crash left out of place.
//! * **Routing-oblivious clients**: `define_view` hands out the same
//!   [`EntangledView`] handles as the unsharded engine; `get`/`put`/
//!   `edit` assemble consistent cross-shard snapshots and coordinate
//!   writes per key automatically.
//!
//! ### Materialized views (the read path)
//!
//! Views are first-class materialized objects, not queries re-run per
//! read. The lifecycle has four phases:
//!
//! 1. **Register** ([`EngineServer::define_view`] /
//!    [`shard::ShardedEngineServer::define_view`]): the [`ViewDef`
//!    pipeline](esm_relational::ViewDef) compiles to a
//!    [`esm_lens::DeltaLens`] — `get`/`put` as ever, plus `get_delta`
//!    mapping a committed base [`esm_store::Delta`] to the view's
//!    coordinates (select filters the delta's rows, project maps them,
//!    rename passes them through). This is the one sanctioned full lens
//!    `get`: the unsharded engine materializes the window here; the
//!    sharded engine materializes per-shard windows on first read.
//! 2. **Maintain** (`read_view`): each window remembers the WAL
//!    position it reflects. A read drains the committed records past
//!    that cursor, translates them through `get_delta`, and folds the
//!    view deltas into the window in place — O(changes since the last
//!    read), never a whole-base `get` or a whole-database assembly. On
//!    a sharded engine the drain honours the 2PC transaction structure
//!    (prepared chains count only at their commit resolution), and all
//!    consulted shard read locks are held together so no cross-shard
//!    transaction is ever observed half-applied.
//! 3. **Prune** (sharded only): the view definition's base-schema
//!    selects imply bounds on the key
//!    ([`esm_relational::ViewDef::key_bounds`] →
//!    [`esm_store::Predicate::value_bounds`]); the router maps them to
//!    the contiguous shard run the window can touch
//!    ([`shard::ShardRouter::shards_in_value_range`]). Reads consult
//!    only that run, and view writes snapshot only those shards
//!    (widening automatically if an edit strays outside). Untouched
//!    shards are never locked, drained or cloned.
//! 4. **Rebuild** (the escape hatch): a delta the lens cannot translate
//!    ([`esm_lens::DeltaOutcome::Rebuild`]), or a topology change
//!    (split/merge bumps the epoch the windows were built against),
//!    re-runs the lens `get` against the live base — correctness never
//!    depends on propagation. [`metrics::ViewStats`] counts
//!    materialized reads, deltas applied, rebuilds and shards pruned;
//!    in steady state `rebuilds` stays flat at its registration value
//!    (asserted by the suites, and by the incremental/recompute
//!    equivalence proptest in `tests/view_maintenance.rs`).
//!
//! ### Subscriptions ([`sub`]): subscribe → commit → drain → push
//!
//! Materialized views also serve *push* consumers. The engine side of
//! the story is two primitives, both O(changes) like `read_view`:
//!
//! * **Commit notification** ([`Engine::commit_notifier`] →
//!   [`CommitNotifier`]): every committed transaction publishes its
//!   final WAL sequence number on a shared condvar. A push loop parks
//!   in `CommitNotifier::wait_past(seen, timeout)` and wakes exactly
//!   when there is something it has not yet fanned out — no polling of
//!   table contents, no wakeups on idle databases. Engines without a
//!   notifier (the trait default returns `None`) still work; callers
//!   fall back to a coarse tick.
//! * **Cursor drains** ([`Engine::view_deltas_since`] →
//!   [`ViewDeltas`]): given a view name and the WAL stamp the consumer
//!   last saw, return the settled base-table deltas past that stamp
//!   translated through the view's lens — the same `get_delta`
//!   machinery `read_view` uses, so a drain costs O(deltas in the gap),
//!   not O(window). Three answers are possible: a **delta batch**
//!   (`resync: None`, apply in order), an **empty batch** (cursor is
//!   current), or a **resync** (`resync: Some(window)`) when the cursor
//!   predates the truncated WAL prefix, falls outside the live window,
//!   or is the explicit `u64::MAX` force-resync sentinel — the consumer
//!   replaces its replica wholesale and resumes from `to_seq`.
//!   Unsettled trailing transactions (an open chain, an unresolved 2PC
//!   prepare) are never handed out; the cursor simply does not advance
//!   past them.
//!
//! The esm-net crate composes these into the wire protocol's
//! SUBSCRIBE/PUSH verbs: its push pump waits on the notifier, drains
//! each subscribed view once per commit burst (one drain shared by
//! every subscriber at the same cursor), and writes PUSH frames with
//! per-connection backpressure. The lifecycle rustdoc on `esm-net`
//! covers the socket half; the invariant the engine half guarantees is
//! that a consumer applying every delta batch in `from_seq` order —
//! resyncing when told to — holds a replica identical to
//! `read_view` at the same stamp.
//!
//! ### Transaction atomicity in the WAL
//!
//! The WAL is an op log ([`wal::WalOp`]): delta records carry a *chain*
//! flag linking multi-record transactions (`k - 1` chained records + a
//! terminator), and 2PC writes `!prepare`/`!resolve` marker records.
//! The durability unit is the whole transaction: recovery
//! ([`durable::resolve_transactions`]) applies complete chains, holds
//! prepared chains in doubt for the sharded recovery to settle, and
//! discards (and truncates) an unterminated trailing chain — a
//! multi-table commit can never recover as a prefix.
//!
//! ### Transaction lifecycle ([`tx`])
//!
//! [`TxStore::begin`] snapshots the committed database; the [`Tx`] works
//! on its private copy; [`Tx::commit`] diffs every table with
//! [`esm_store::Delta::between`], validates **first-committer-wins** (a
//! commit conflicts iff a WAL record newer than its snapshot touches one
//! of the same primary keys), then publishes the deltas and appends them
//! to the WAL. Disjoint concurrent commits rebase cleanly; overlapping
//! ones abort with [`EngineError::Conflict`].
//!
//! ### WAL format ([`wal`])
//!
//! An append-only sequence of `(seq, table, delta)` records, one per
//! committed table change, with a schema-free text codec
//! ([`esm_store::codec`]: type-tagged cells, escaped strings).
//! [`Wal::replay`] applies the records to the engine's baseline database
//! and reproduces the live state exactly — the recovery law the test
//! suites assert. Sequence numbers must strictly increase; duplicates
//! are rejected with the typed [`EngineError::DuplicateSeq`] instead of
//! being silently re-applied.
//!
//! The in-memory log is **bounded**: once every materialized view's
//! window cursor (and the durable checkpoint, when one exists) has
//! passed a prefix, [`EngineServer::truncate_wal`] (and the sharded
//! `truncate_wals`, both run by maintenance) folds that prefix into the
//! replay baseline and drops it — always cutting at a settled
//! transaction boundary ([`Wal::settled_prefix_end`]), never through a
//! chain or an unresolved 2PC prepare. First-committer-wins validation
//! is truncation-aware: a snapshot older than the log's start
//! conservatively conflicts and retries against fresh state.
//!
//! ### Durability ([`durable`], [`segment`], [`checkpoint`])
//!
//! In-memory is the default; pass [`Durability::Durable`] to
//! [`EngineServer::with_durability`] / [`TxStore::with_durability`] and
//! every commit is *written ahead* to an on-disk log before it is
//! applied. One directory holds the whole log:
//!
//! ```text
//! wal-dir/
//!   checkpoint-00000000000000000000.ckpt   genesis snapshot (seq 0)
//!   checkpoint-00000000000000000256.ckpt   newest checkpoint
//!   wal-00000000000000000201.seg           segment: records 201..=262
//!   wal-00000000000000000263.seg           active segment (tail)
//! ```
//!
//! **Segments** (`wal-<first seq, zero-padded>.seg`) hold consecutive
//! records, each wrapped in a self-describing frame. New segments are
//! written in the binary framing; the text framing (any pre-binary
//! segment) decodes forever, and the dispatch is per *frame* — the two
//! may interleave inside one file:
//!
//! ```text
//! binary frame: [0xB5][payload len: u32 LE][crc32(payload): u32 LE][payload]
//!               payload = tag byte, seq u64 LE, then length-prefixed
//!               fields and rows in the esm-store binary row codec
//! text frame:   =<payload bytes> <crc32 hex>\n<record>   (legacy)
//! ```
//!
//! `0xB5` is a UTF-8 continuation byte, so no text frame (they start
//! with `=`) can be mistaken for a binary one. The active segment
//! rotates to a fresh file past [`DurabilityConfig::segment_bytes`], so
//! compaction can drop whole files. **Checkpoints**
//! (`checkpoint-<seq>.ckpt`) wrap a serialized database snapshot
//! ([`esm_store::snapshot`]) in a `!checkpoint
//! seq=<n>` header and `!end` trailer, written atomically (temp file →
//! fsync → rename → directory fsync); the durable WAL maintains a shadow
//! database incrementally, so a checkpoint never replays anything.
//! Compaction retains the newest **two** checkpoints (fallback if the
//! newest proves unreadable) and deletes every segment fully covered by
//! the older retained one.
//!
//! **Group commit**: appends buffer and one fsync covers up to
//! [`DurabilityConfig::group_commit`] records. With `group_commit = 1`
//! every acknowledged commit is durable before the call returns; with
//! `n > 1`, a crash may drop up to `n - 1` acknowledged records — but
//! always to a clean *transaction* boundary, never a torn state or a
//! prefix of a multi-record chain. Frames carry a CRC32, so mid-stream
//! bit rot is detected (and refused) rather than mistaken for a torn
//! tail. Checkpoints and compaction run on a background maintenance
//! thread, never on a committing thread.
//!
//! **Cross-session group commit** (`durable::GroupCommit`): under
//! `group_commit = 1`, concurrent committers share fsyncs instead of
//! queueing one behind another's. A commit appends its record under
//! the WAL write lock, *releases the lock*, then parks on the gate's
//! condvar with its record's seq:
//!
//! 1. If the gate already shows `durable_seq >= seq`, return — some
//!    leader's fsync covered this record.
//! 2. If another leader's fsync is in flight, wait on the condvar:
//!    that fsync began *after* this record was appended, so its
//!    completion covers it.
//! 3. Otherwise become the leader: re-take the engine lock, read the
//!    WAL's `last_seq` (the batch accumulated while waiting — every
//!    session that appended before this instant rides along), fsync
//!    once, publish the new `durable_seq`, and wake all waiters.
//!
//! N sessions committing concurrently cost ~1 fsync instead of N; a
//! failed leader fsync poisons the gate (fail-stop — the log's tail is
//! unknowable), and every current and future waiter gets the error.
//!
//! **Recovery** ([`EngineServer::recover`]) is a four-step state
//! machine — *checkpoint scan* (newest valid checkpoint; torn ones are
//! skipped), *segment scan* (decode each segment's longest
//! complete-record prefix; [`segment::decode_segment_prefix`] tolerates
//! tails cut mid-line or mid-code-point), *plan*
//! ([`durable::plan_recovery`]: skip stale/duplicate records, require
//! the rest to extend the checkpoint contiguously, reject gaps as
//! corruption), and *repair* (truncate torn tails, resume the log on a
//! fresh segment). `tests/crash_recovery.rs` drives this at **every byte
//! offset** of a recorded multi-segment run and asserts the recovered
//! state equals the live state at the longest durable prefix — the
//! paper's replayed-state ≡ live-state equivalence, checked exhaustively
//! under crashes.
//!
//! ### Replication and the shard fleet ([`repl`])
//!
//! A durable sharded primary already writes everything a replica needs:
//! self-delimiting WAL segments and atomically-renamed checkpoints, per
//! shard. Replication *ships those files* rather than inventing a
//! second log. The lifecycle:
//!
//! ```text
//! primary ──ship──▶ mirror dir ──recover/replay──▶ replica ──promote──▶ primary
//! ```
//!
//! 1. **Ship** ([`repl::shipper`]): a [`WalSource`] exposes the
//!    primary's log as a manifest of `(path, len)` plus ranged reads —
//!    [`DirWalSource`] reads the directory locally,
//!    [`ShardedEngineServer::repl_source`] serves a live engine, and
//!    esm-net's `RemoteWalSource` carries the same two calls over the
//!    wire (`repl_manifest` / `repl_fetch`), so a replica never needs
//!    shared disk. Within one manifest snapshot only the *last* segment
//!    per shard can be torn, which is exactly the tail tolerance
//!    recovery already has.
//! 2. **Apply** ([`repl::replica`]): [`ReplicaEngine`] appends shipped
//!    bytes to a local mirror (fsynced only when bytes arrived) and
//!    re-runs recovery over it — replay *is* the apply path, so a
//!    replica can crash anywhere and come back consistent. It serves
//!    the full [`Engine`] read surface behind [`ReplicaEngine::serving`];
//!    writes return [`EngineError::NotPrimary`] carrying the primary's
//!    advertised address for client redirect. Lag is observable per
//!    shard ([`ReplStats::lag`](crate::metrics::ReplStats), the
//!    `repl_lag_records` gauge, and the Prometheus rendering).
//! 3. **Promote** ([`repl::promote`]): when the primary dies,
//!    [`repl::most_caught_up`] elects the replica with the highest
//!    applied seq, and [`ReplicaEngine::promote`] replays its final
//!    tail and settles in-doubt 2PC marks all-or-nothing (presume abort
//!    before the commit point, finish after) — the same state machine
//!    as crash recovery, because promotion *is* recovery on another
//!    machine. Every commit acked under `group_commit = 1` survives.
//! 4. **Rebalance** ([`repl::policy`]): [`RebalancePolicy`] folds
//!    per-shard commit-rate EWMAs ([`ShardStats`]) each tick and
//!    splits a shard whose rate exceeds the coldest by a configured
//!    skew (at its median key, [`ShardedEngineServer::median_split_key`]),
//!    or merges adjacent cold shards — `tests/replication.rs` drives a
//!    skewed stream until per-shard commit rates level within 2x.
//!
//! ### Observability ([`esm_obs`])
//!
//! Every engine owns an [`esm_obs::Telemetry`] registry — one lock-free
//! log-bucketed histogram per instrumented phase — threaded through the
//! hot paths in three layers: **recorders** ([`esm_obs::Span`] /
//! [`esm_obs::Timer`]) time the phase at the call site (commit snapshot
//! acquire, FCW validate, WAL append, fsync, stripe-lock hold, the 2PC
//! prepare/resolve/fsync trio, view drain/fold/rebuild) and cost one
//! relaxed atomic add each; the **registry** aggregates them and keeps a
//! bounded **slow-op ring** (operations crossing
//! [`esm_obs::Telemetry::set_slow_threshold_ns`], captured with their
//! per-phase breakdown, oldest evicted first — reads are non-draining,
//! so the wire surface is idempotent); **exposition** is
//! [`Engine::telemetry`] returning a mergeable
//! [`esm_obs::TelemetrySnapshot`], renderable as Prometheus-style text
//! ([`esm_obs::render_prometheus`]) and fetchable over the wire via the
//! esm-net `STATS` verb. The WAL append and fsync phases are recorded
//! inside [`segment::SegmentWriter`] — the one place the two costs are
//! separable — so a slow disk is distinguishable from a fat record, and
//! from lock contention, by histogram alone.
//!
//! Histograms aggregate; **causal traces** explain. [`Session`] offers
//! every operation to the engine's registry for head sampling
//! (1-in-N, [`esm_obs::Telemetry::set_trace_sample_every`]); an elected
//! request mints an [`esm_obs::TraceId`] and every instrumented layer
//! below attaches [`esm_obs::SpanRecord`]s to it via a thread-local
//! context — commit snapshot/validate, WAL append (with frame bytes),
//! group-commit wait (tagged `leader`/`follower`), fsync, per-shard 2PC
//! umbrellas with prepare/fsync/resolve children, view
//! drain/fold/rebuild. Finished traces land in bounded rings (all
//! recent, plus a tail-capture ring for traces crossing the slow-op
//! threshold) read via [`Engine::traces`] and rendered as a causally
//! indented tree ([`esm_obs::render_trace`]). Untraced operations pay
//! one thread-local read and allocate nothing. Over the wire, the
//! trace context rides binary request frames, so one `TraceId` spans
//! client, server and fsync (the esm-net `TRACE` verb fetches the
//! server's rings).
//!
//! ### Index maintenance
//!
//! Base tables carry secondary B-tree indexes
//! ([`esm_store::Table::create_index`]) that every insert/upsert/delete
//! maintains incrementally. Registering a view whose select predicate
//! constrains base columns auto-indexes those columns, so view reads seek
//! instead of scanning; lens `put` paths that clone the base keep its
//! indexes warm.
//!
//! ### Concurrency ([`server`], [`stripe`])
//!
//! Tables are spread over [`Stripes`] (rwlocks chosen by stable name
//! hash): traffic on different tables never shares a lock. View writes
//! come in a serialized pessimistic flavour ([`EngineServer::write_view`])
//! and an optimistic flavour with first-committer-wins retries
//! ([`EngineServer::edit_view_optimistic`]); both report the base-table
//! [`esm_store::Delta`] they committed.
//!
//! ## Quickstart
//!
//! ```
//! use esm_engine::EngineServer;
//! use esm_relational::ViewDef;
//! use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};
//!
//! let schema = Schema::build(
//!     &[("id", ValueType::Int), ("dept", ValueType::Str)], &["id"],
//! ).unwrap();
//! let mut db = Database::new();
//! db.create_table(
//!     "staff",
//!     Table::from_rows(schema, vec![row![1, "research"], row![2, "ops"]]).unwrap(),
//! ).unwrap();
//!
//! let engine = EngineServer::new(db);
//! let research = engine.define_view(
//!     "research", "staff",
//!     &ViewDef::base().select(Predicate::eq(Operand::col("dept"), Operand::val("research"))),
//! ).unwrap();
//!
//! // Each client edit is a transaction; the returned delta says what the
//! // write did to the hidden base table.
//! let delta = research.edit(|v| Ok(v.upsert(row![3, "research"]).map(|_| ())?)).unwrap();
//! assert_eq!(delta.inserted, vec![row![3, "research"]]);
//! // Recovery: replaying the WAL over the baseline equals the live state.
//! assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod durable;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod repl;
pub mod segment;
pub mod server;
pub mod session;
pub mod shard;
pub mod stripe;
pub mod sub;
pub mod testkit;
pub mod tx;
pub mod view;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use durable::{
    plan_recovery, resolve_transactions, scan_segments, Durability, DurabilityConfig, DurableWal,
    RecoveryReport, ResolvedLog, ScannedSegment,
};
pub use engine::{
    apply_deltas_checked, apply_table_delta_checked, ArcEngine, CommitReceipt, Engine,
};
pub use error::EngineError;
pub use esm_obs::{
    render_prometheus, Histogram, HistogramSnapshot, Phase, SlowOp, Span, Telemetry,
    TelemetrySnapshot, Timer,
};
pub use metrics::{
    Metrics, MetricsSnapshot, ReplStats, ReplicaLag, ShardLoad, ShardStats, ViewStats, WalStats,
};
pub use repl::{
    DirWalSource, FileEntry, PolicyConfig, PolicyHandle, PrimaryWalSource, RebalancePolicy,
    ReplManifest, ReplicaConfig, ReplicaEngine, ShardManifest, WalSource,
};
pub use segment::{
    crc32, decode_segment_prefix, encode_framed, encode_framed_binary, SegmentFile, SegmentPrefix,
    SegmentWriter, SimFile, BINARY_FRAME_MAGIC,
};
pub use server::{EngineServer, DEFAULT_OPTIMISTIC_ATTEMPTS};
pub use session::{RetryPolicy, Session};
pub use shard::{FailPoint, Shard, ShardRecoveryReport, ShardRouter, ShardedEngineServer};
pub use stripe::Stripes;
pub use sub::{CommitNotifier, ViewDeltas};
pub use tx::{delta_keys, deltas_conflict, Tx, TxStore};
pub use view::EntangledView;
pub use wal::{reserved_table_name, Wal, WalOp, WalRecord};
