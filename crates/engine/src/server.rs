//! [`EngineServer`]: the lock-striped, shared, concurrent façade.
//!
//! One engine owns many base tables (spread over [`Stripes`]) and many
//! named *entangled views* — compiled `Lens<Table, Table>` pipelines, each
//! a bidirectional window onto one base table. Any number of clients hold
//! cheap clones of the server handle; each clone shares the same state,
//! WAL and metrics.
//!
//! ## Write paths
//!
//! * [`EngineServer::write_view`] — **pessimistic**: the table's stripe is
//!   write-locked across `put`/diff/publish, so interleaved writers of
//!   views over the same table serialize; writers of tables in other
//!   stripes proceed in parallel.
//! * [`EngineServer::edit_view_optimistic`] — **optimistic**: reads a
//!   snapshot, runs the edit and the lens `put` *outside* any lock, then
//!   revalidates first-committer-wins (key overlap against WAL records
//!   committed since the snapshot, the same [`Delta`] machinery as
//!   [`crate::TxStore`]) under the write lock, retrying on conflict.
//!
//! Every committed write appends its base-table delta to the WAL and
//! returns it to the caller, so clients always learn exactly what their
//! view edit did to the hidden shared state — the bx contract.
//!
//! ## Read path
//!
//! Each registered view owns a materialized window plus the WAL
//! position it reflects. [`EngineServer::read_view`] drains the
//! committed records past that position, translates them through the
//! view's delta propagator ([`esm_lens::DeltaLens::get_delta`]) and
//! folds them in — O(changes since the last read). The whole-base lens
//! `get` runs only at registration and on the propagation escape hatch
//! (tracked by [`crate::metrics::ViewStats`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use esm_lens::{DeltaLens, DeltaOutcome};
use esm_obs::{Phase, Span, Telemetry, TelemetrySnapshot};
use esm_relational::ViewDef;
use esm_store::{Database, Delta, Table};

use crate::durable::{
    checkpoint_off_lock, Durability, DurabilityConfig, DurableWal, GroupCommit, MaintenanceThread,
    RecoveryReport,
};
use crate::engine::CommitReceipt;
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::stripe::Stripes;
use crate::sub::{CommitNotifier, ViewDeltas};
use crate::tx::delta_keys;
use crate::view::EntangledView;
use crate::wal::{check_table_names, committed_table_deltas, Wal, WalRecord};

/// How many attempts an optimistic edit makes by default.
pub const DEFAULT_OPTIMISTIC_ATTEMPTS: u32 = 16;

struct ViewReg {
    table: String,
    lens: DeltaLens<Table, Table, Delta>,
    /// Maintain this window *inside* the committing transaction's
    /// critical section ([`esm_relational::ViewDef::is_eager`]): commit
    /// paths lock eager windows **before** their stripe locks (in view
    /// name order) and fold the just-appended records in before
    /// releasing the WAL — so a push pump that drains right after the
    /// commit signal always sees a fresh window.
    eager: bool,
    /// The window schema's key column indices, frozen at registration —
    /// lets a subscriber drain coalesce view deltas without taking the
    /// window mutex.
    view_keys: Vec<usize>,
    /// The maintained materialized window. Guarded by its own mutex so
    /// concurrent readers of *different* views never serialize; lock
    /// order is always view window → stripe → WAL.
    mat: Mutex<Materialized>,
}

/// A view's materialized state: the window itself plus the WAL position
/// it reflects. Every committed record with `seq <= applied_seq` is
/// folded in; reads drain the records after it.
struct Materialized {
    window: Table,
    applied_seq: u64,
}

/// One eager view window, locked for the duration of a commit's
/// critical section (window before stripe — see
/// [`EngineServer::lock_eager_views`]).
struct EagerSlot<'a> {
    reg: &'a ViewReg,
    mat: std::sync::MutexGuard<'a, Materialized>,
}

/// The in-memory log and (optionally) its durable backend, guarded by
/// one mutex so their sequence numbers can never diverge.
struct WalState {
    mem: Wal,
    durable: Option<DurableWal>,
}

impl WalState {
    /// Write-ahead append: the durable log (if any) takes the record
    /// first, then the in-memory log mirrors it. On an I/O failure the
    /// in-memory log and the caller's table stay untouched and the
    /// durable log poisons itself (its bytes may have partially landed;
    /// every later durable write refuses until restart + recovery).
    ///
    /// With `defer_sync`, the durable append skips its inline fsync —
    /// the caller then parks on the engine's [`GroupCommit`] gate, where
    /// one leader syncs for every concurrent committer.
    fn append(&mut self, table: &str, delta: &Delta, defer_sync: bool) -> Result<u64, EngineError> {
        let seq = self.mem.next_seq();
        let rec = WalRecord::delta(seq, table, delta.clone());
        if let Some(durable) = self.durable.as_mut() {
            if defer_sync {
                durable.append_deferred(&rec)?;
            } else {
                durable.append(&rec)?;
            }
        }
        self.mem
            .push(rec)
            .expect("fresh seq under the WAL lock continues the log");
        Ok(seq)
    }

    /// Write-ahead append of one multi-table transaction as a chained
    /// record group (`k - 1` chained records + one terminator), the
    /// all-or-nothing durability unit recovery applies atomically.
    /// Returns the terminator's sequence number — the transaction's
    /// commit stamp.
    fn append_group(
        &mut self,
        deltas: &[(String, Delta)],
        defer_sync: bool,
    ) -> Result<u64, EngineError> {
        let first_seq = self.mem.next_seq();
        let records: Vec<WalRecord> = deltas
            .iter()
            .enumerate()
            .map(|(i, (table, delta))| {
                let seq = first_seq + i as u64;
                if i + 1 < deltas.len() {
                    WalRecord::chained(seq, table.clone(), delta.clone())
                } else {
                    WalRecord::delta(seq, table.clone(), delta.clone())
                }
            })
            .collect();
        if let Some(durable) = self.durable.as_mut() {
            for rec in &records {
                if defer_sync {
                    durable.append_deferred(rec)?;
                } else {
                    durable.append(rec)?;
                }
            }
        }
        for rec in records {
            self.mem
                .push(rec)
                .expect("fresh seqs under the WAL lock continue the log");
        }
        Ok(self.mem.last_seq())
    }
}

struct Inner {
    tables: Stripes<Table>,
    views: RwLock<BTreeMap<String, ViewReg>>,
    wal: Arc<Mutex<WalState>>,
    /// The state the in-memory WAL replays over. Starts as the
    /// construction (or recovery) database and advances when
    /// [`EngineServer::truncate_wal`] folds a dropped WAL prefix into
    /// it — the replay law `baseline + wal == live` holds at every
    /// truncation point. Lock order: baseline before the WAL mutex,
    /// never after.
    baseline: Mutex<Database>,
    metrics: Metrics,
    /// Phase-latency histograms + slow-op ring. The durable WAL's
    /// segment writer shares this handle (appends/fsyncs record here).
    telemetry: Arc<Telemetry>,
    /// Cross-session group commit: present iff this engine is durable
    /// with `group_commit == 1`. Commit paths append with the fsync
    /// deferred, drop their locks, then park here — one leader syncs
    /// the accumulated batch for every concurrent committer. (With
    /// `group_commit > 1` the durable log already batches lazily and
    /// acknowledges before syncing, so there is nothing to wait for.)
    group: Option<Arc<GroupCommit>>,
    /// The commit signal push pumps park on: every commit path publishes
    /// its stamp here after dropping all locks. Publishing never waits
    /// on subscribers.
    notifier: Arc<CommitNotifier>,
    /// Background checkpoint/compaction loop; stops when the last engine
    /// handle drops. `None` for in-memory engines and when disabled.
    _maintenance: Option<MaintenanceThread>,
}

/// One maintenance pass: checkpoint iff due, with the file write done
/// *outside* the WAL lock (committing threads stall only for the
/// snapshot clone).
fn maintenance_pass(wal: &Arc<Mutex<WalState>>) -> Result<Option<u64>, EngineError> {
    let poisoned = || EngineError::Io("wal lock poisoned".into());
    checkpoint_off_lock(
        || {
            let mut guard = wal.lock().map_err(|_| poisoned())?;
            match guard.durable.as_mut() {
                Some(d) if d.needs_checkpoint() => {
                    Ok(Some((d.begin_checkpoint()?, d.checkpoint_dir())))
                }
                _ => Ok(None),
            }
        },
        |seq| {
            let mut guard = wal.lock().map_err(|_| poisoned())?;
            match guard.durable.as_mut() {
                Some(d) => d.finish_checkpoint(seq),
                None => Ok(seq),
            }
        },
    )
}

/// A concurrent, transactional, bidirectional database engine. Clone the
/// handle freely: clones share state.
#[derive(Clone)]
pub struct EngineServer {
    inner: Arc<Inner>,
}

impl EngineServer {
    /// An engine over the tables of `db`, with `stripes` lock stripes.
    /// `db` becomes the recovery baseline (see [`EngineServer::wal`]).
    pub fn with_stripes(db: Database, stripes: usize) -> EngineServer {
        EngineServer::with_durability(db, stripes, Durability::InMemory)
            .expect("in-memory engines over unreserved table names cannot fail to construct")
    }

    /// An engine with a default stripe count (16).
    pub fn new(db: Database) -> EngineServer {
        EngineServer::with_stripes(db, 16)
    }

    /// An engine with an explicit [`Durability`]. With
    /// [`Durability::Durable`], every committed view write is appended
    /// to the segment log in `config.dir` (group-commit fsync, rotation
    /// per config) *before* it is applied, and `db` becomes the genesis
    /// checkpoint on disk; checkpointing and compaction then run on a
    /// background maintenance thread (see
    /// [`DurabilityConfig::maintenance_interval_ms`]).
    pub fn with_durability(
        db: Database,
        stripes: usize,
        durability: Durability,
    ) -> Result<EngineServer, EngineError> {
        check_table_names(&db)?;
        let (durable, cfg) = match durability {
            Durability::InMemory => (None, None),
            Durability::Durable(cfg) => (Some(DurableWal::create(cfg.clone(), &db)?), Some(cfg)),
        };
        Ok(EngineServer::assemble(
            db,
            stripes,
            Wal::new(),
            durable,
            cfg,
        ))
    }

    /// Recover an engine from a durable WAL directory: load the newest
    /// valid checkpoint, replay newer segments, truncate any torn tail,
    /// and resume the log where it left off. The recovered database is
    /// both the live state and the new baseline; re-register views after
    /// recovery (view definitions are code, not state).
    ///
    /// Uses default durability tuning rooted at `dir`; see
    /// [`EngineServer::recover_with`] to control it.
    pub fn recover(
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(EngineServer, RecoveryReport), EngineError> {
        EngineServer::recover_with(DurabilityConfig::new(dir))
    }

    /// [`EngineServer::recover`] with explicit durability tuning (the
    /// recovered engine keeps appending under `config`).
    pub fn recover_with(
        config: DurabilityConfig,
    ) -> Result<(EngineServer, RecoveryReport), EngineError> {
        let (durable, db, report) = DurableWal::open(config.clone())?;
        let engine = EngineServer::assemble(
            db,
            16,
            Wal::starting_at(report.last_seq),
            Some(durable),
            Some(config),
        );
        Ok((engine, report))
    }

    fn assemble(
        db: Database,
        stripes: usize,
        wal: Wal,
        durable: Option<DurableWal>,
        cfg: Option<DurabilityConfig>,
    ) -> EngineServer {
        let tables = Stripes::new(stripes);
        for name in db.table_names() {
            let table = db.table(name).expect("name came from the database").clone();
            tables.write(name).insert(name.to_string(), table);
        }
        let telemetry = Arc::new(match &cfg {
            Some(c) => Telemetry::with_config(c.telemetry.clone()),
            None => Telemetry::new(),
        });
        let durable = durable.map(|mut d| {
            d.set_telemetry(Some(Arc::clone(&telemetry)));
            d
        });
        let group = match (&durable, &cfg) {
            (Some(d), Some(c)) if c.group_commit == 1 => {
                Some(Arc::new(GroupCommit::new(d.last_seq())))
            }
            _ => None,
        };
        let wal = Arc::new(Mutex::new(WalState { mem: wal, durable }));
        let maintenance = cfg.and_then(|cfg| {
            if cfg.checkpoint_every == 0 || cfg.maintenance_interval_ms == 0 {
                return None;
            }
            let target = Arc::clone(&wal);
            Some(MaintenanceThread::spawn(
                std::time::Duration::from_millis(cfg.maintenance_interval_ms),
                move || {
                    // Failed checkpoints surface on the next commit (or
                    // retry next tick).
                    let _ = maintenance_pass(&target);
                },
            ))
        });
        EngineServer {
            inner: Arc::new(Inner {
                tables,
                views: RwLock::new(BTreeMap::new()),
                wal,
                baseline: Mutex::new(db),
                metrics: Metrics::default(),
                telemetry,
                group,
                notifier: Arc::new(CommitNotifier::new()),
                _maintenance: maintenance,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Tables.
    // ------------------------------------------------------------------

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.tables.names()
    }

    /// A snapshot of one table.
    pub fn table(&self, name: &str) -> Result<Table, EngineError> {
        self.inner
            .tables
            .read(name)
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))
    }

    /// Create a secondary index on a base table column (idempotent).
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), EngineError> {
        let mut shard = self.inner.tables.write(table);
        let state = shard
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?;
        state.create_index(column)?;
        Ok(())
    }

    /// A snapshot of the whole database.
    ///
    /// Atomic per stripe, not across stripes: concurrent writers of
    /// *other* tables may land between stripe visits. Quiesce writers
    /// first when cross-table atomicity matters.
    pub fn snapshot(&self) -> Database {
        let mut db = Database::new();
        self.inner.tables.for_each(|name, table| {
            db.replace_table(name.clone(), table.clone());
        });
        db
    }

    /// The database the in-memory WAL replays over: the construction (or
    /// recovery) state, advanced past every truncated WAL prefix by
    /// [`EngineServer::truncate_wal`].
    pub fn baseline(&self) -> Database {
        self.inner
            .baseline
            .lock()
            .expect("baseline lock poisoned")
            .clone()
    }

    /// A snapshot of the in-memory write-ahead log (for a recovered
    /// engine, the records committed *since* recovery; the durable
    /// history lives in the segment files).
    pub fn wal(&self) -> Wal {
        self.lock_wal().mem.clone()
    }

    /// Force-fsync any group-commit batch the durable WAL is holding.
    /// No-op for in-memory engines.
    pub fn sync_wal(&self) -> Result<(), EngineError> {
        match self.lock_wal().durable.as_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Write a durable checkpoint covering every committed record and
    /// compact fully-covered segments. Returns the covered sequence
    /// number, or `None` for in-memory engines.
    pub fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        match self.lock_wal().durable.as_mut() {
            Some(d) => d.checkpoint().map(Some),
            None => Ok(None),
        }
    }

    /// Run one maintenance pass now — what the background thread does
    /// each tick (checkpoint + compact iff the configured interval of
    /// records accumulated; the checkpoint file write happens outside
    /// the WAL lock), plus an in-memory WAL truncation below the view
    /// cursors ([`EngineServer::truncate_wal`]). Deterministic tests and
    /// embedders that disable the thread drive this directly. Returns
    /// the covered seq when a checkpoint was written.
    pub fn run_maintenance(&self) -> Result<Option<u64>, EngineError> {
        let covered = maintenance_pass(&self.inner.wal)?;
        self.truncate_wal()?;
        Ok(covered)
    }

    /// The durable WAL directory, when this engine persists.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        self.lock_wal()
            .durable
            .as_ref()
            .map(|d| d.dir().to_path_buf())
    }

    /// Rebuild the committed state from the baseline plus the WAL — the
    /// recovery path. At quiescence this equals [`EngineServer::snapshot`]
    /// (asserted by the integration suite). The baseline lock is held
    /// while the WAL is cloned so a concurrent truncation can never slip
    /// between the two reads.
    pub fn recovered_database(&self) -> Result<Database, EngineError> {
        let baseline = self.inner.baseline.lock().expect("baseline lock poisoned");
        let wal = self.wal();
        let base = baseline.clone();
        drop(baseline);
        wal.replay(&base)
    }

    /// Current engine counters (durable-WAL stats included when this
    /// engine persists).
    pub fn metrics(&self) -> MetricsSnapshot {
        let snap = self.inner.metrics.snapshot();
        match self.lock_wal().durable.as_ref() {
            Some(d) => snap.with_wal(d.stats()),
            None => snap,
        }
    }

    /// The live phase-latency registry (shared with the durable WAL's
    /// segment writer). Exposed so embedders can tune the slow-op
    /// threshold; take [`EngineServer::telemetry`] for a snapshot.
    pub fn telemetry_registry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// A point-in-time copy of the phase-latency histograms and the
    /// slow-op ring.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry.snapshot()
    }

    // ------------------------------------------------------------------
    // Views.
    // ------------------------------------------------------------------

    /// Compile and register a named entangled view over `table`.
    ///
    /// The definition is validated against the current table state, and
    /// base columns its select stages constrain get secondary indexes
    /// (reads seek instead of scanning). Registration runs the one
    /// sanctioned full lens `get`: the view is materialized here, and
    /// every later read maintains the window from committed deltas.
    pub fn define_view(
        &self,
        name: impl Into<String>,
        table: impl Into<String>,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        let name = name.into();
        let table = table.into();
        // Reject duplicate names *before* compiling or creating indexes,
        // so a failed definition leaves the base table untouched. (The
        // insert below re-checks under the write lock for racing
        // definers.)
        if self
            .inner
            .views
            .read()
            .expect("views lock poisoned")
            .contains_key(&name)
        {
            return Err(EngineError::ViewExists(name));
        }
        let lens = {
            // Compile against a snapshot; index creation takes the write
            // lock only after compilation succeeded.
            let snapshot = self.table(&table)?;
            def.compile_delta(&snapshot)?
        };
        for col in def.index_candidates() {
            self.create_index(&table, &col)?;
        }
        // Materialize against the live table. The WAL position is read
        // while the stripe read lock is held, so it covers exactly the
        // records already applied to this base table.
        let mat = {
            let shard = self.inner.tables.read(&table);
            let base = shard
                .get(&table)
                .ok_or_else(|| EngineError::NoSuchTable(table.clone()))?;
            let applied_seq = self.lock_wal().mem.last_seq();
            Materialized {
                window: lens.get(base),
                applied_seq,
            }
        };
        self.inner.metrics.view_rebuild();
        let view_keys = mat.window.schema().key_indices();
        let mut views = self.inner.views.write().expect("views lock poisoned");
        if views.contains_key(&name) {
            return Err(EngineError::ViewExists(name));
        }
        views.insert(
            name.clone(),
            ViewReg {
                table,
                lens,
                eager: def.is_eager(),
                view_keys,
                mat: Mutex::new(mat),
            },
        );
        drop(views);
        Ok(self.view(&name).expect("just registered"))
    }

    /// A client handle onto a registered view.
    pub fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        let views = self.inner.views.read().expect("views lock poisoned");
        if !views.contains_key(name) {
            return Err(EngineError::NoSuchView(name.to_string()));
        }
        Ok(EntangledView::attach(Arc::new(self.clone()), name))
    }

    /// Registered view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.inner
            .views
            .read()
            .expect("views lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    fn with_view<R>(
        &self,
        name: &str,
        f: impl FnOnce(&ViewReg) -> Result<R, EngineError>,
    ) -> Result<R, EngineError> {
        let views = self.inner.views.read().expect("views lock poisoned");
        let reg = views
            .get(name)
            .ok_or_else(|| EngineError::NoSuchView(name.to_string()))?;
        f(reg)
    }

    /// Read a view against the current base state.
    ///
    /// Served from the view's materialized window: committed WAL records
    /// since the window's last position are translated through the
    /// lens's delta propagator and folded in — O(changes since the last
    /// read), never a whole-base lens `get` re-run. Only a propagation
    /// escape hatch ([`esm_lens::DeltaOutcome::Rebuild`]) falls back to
    /// a full rebuild, counted in
    /// [`crate::metrics::ViewStats::rebuilds`].
    pub fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        self.read_view_at(name).map(|(window, _)| window)
    }

    /// [`EngineServer::read_view`] plus the WAL position the returned
    /// window reflects — the cursor a subscriber that adopts this window
    /// should resume draining from.
    pub(crate) fn read_view_at(&self, name: &str) -> Result<(Table, u64), EngineError> {
        self.inner.metrics.view_read();
        let total = Span::start();
        let tel = &self.inner.telemetry;
        let result = self.with_view(name, |reg| {
            let mut mat = reg.mat.lock().expect("view window lock poisoned");
            // Drain the committed records past the window's position,
            // honouring the WAL's transaction structure (chains and 2PC
            // markers count only once settled — this engine's own commit
            // paths append plain records, but the format allows more).
            // Commits append under stripe → WAL, so everything at or
            // below `last_seq` for our table is already in the log.
            let drain_span = Span::start();
            let drain_tspan = esm_obs::trace::span_tagged("view_drain", name);
            let drained = {
                let wal = self.lock_wal();
                if mat.applied_seq < wal.mem.start_seq() {
                    // A truncation outran this window (it materialized
                    // while the truncation's floor scan ran): the records
                    // it needs are gone, so rebuild from the live base
                    // instead of silently serving a stale window.
                    None
                } else {
                    let pending =
                        committed_table_deltas(&reg.table, wal.mem.records_after(mat.applied_seq))
                            .map(|deltas| deltas.into_iter().cloned().collect::<Vec<Delta>>());
                    Some((pending, wal.mem.last_seq()))
                }
            };
            tel.record(Phase::ViewDrain, drain_span.elapsed_ns());
            drop(drain_tspan);
            let Some((pending, last_seq)) = drained else {
                self.rebuild_window(reg, &mut mat)?;
                return Ok((mat.window.clone(), mat.applied_seq));
            };
            let Some(pending) = pending else {
                // Unsettled trailing transaction: serve the last settled
                // state without advancing the cursor.
                return Ok((mat.window.clone(), mat.applied_seq));
            };
            // `deltas_applied` counts only changes that actually survive
            // into the window (a rebuild discards the whole run).
            let fold_span = Span::start();
            let fold_tspan = esm_obs::trace::span_tagged("view_delta_fold", name);
            let folded = crate::view::drain_into_window(&reg.lens, &pending, &mut mat.window);
            tel.record(Phase::ViewDeltaFold, fold_span.elapsed_ns());
            drop(fold_tspan);
            match folded {
                Some(drained) => {
                    self.inner.metrics.view_deltas(drained);
                    mat.applied_seq = last_seq;
                    self.inner.metrics.view_materialized();
                }
                None => self.rebuild_window(reg, &mut mat)?,
            }
            Ok((mat.window.clone(), mat.applied_seq))
        });
        tel.record_slow(format!("read_view:{name}"), total.elapsed_ns(), &[]);
        result
    }

    /// The escape hatch: re-run the lens `get` against the live base
    /// table and reset the window's WAL position. The position is read
    /// while the stripe read lock is held, so it covers exactly the
    /// records already applied to the base.
    fn rebuild_window(&self, reg: &ViewReg, mat: &mut Materialized) -> Result<(), EngineError> {
        let _rebuild = self.inner.telemetry.timer(Phase::ViewRebuild);
        let _tspan = esm_obs::trace::span_tagged("view_rebuild", reg.table.as_str());
        let shard = self.inner.tables.read(&reg.table);
        let base = shard
            .get(&reg.table)
            .ok_or_else(|| EngineError::NoSuchTable(reg.table.clone()))?;
        mat.applied_seq = self.lock_wal().mem.last_seq();
        mat.window = reg.lens.get(base);
        self.inner.metrics.view_rebuild();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Subscriptions.
    // ------------------------------------------------------------------

    /// The commit signal: every commit path publishes its stamp here
    /// after dropping all locks. A push pump parks on it instead of
    /// polling.
    pub fn commit_notifier(&self) -> Arc<CommitNotifier> {
        Arc::clone(&self.inner.notifier)
    }

    /// A fresh subscription cursor for `name`: the current WAL position.
    /// A subscriber that adopts a window from [`EngineServer::read_view`]
    /// taken *after* this call misses nothing by draining from here.
    pub fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        self.with_view(name, |_| Ok(self.lock_wal().mem.last_seq()))
    }

    /// Everything settled past `cursor` for view `name`, coalesced into
    /// one view-level delta — the subscription fan-out primitive.
    ///
    /// O(delta): the committed records past the cursor are translated
    /// through the lens's propagator and coalesced **without touching
    /// the view's window mutex**, so any number of subscriber drains
    /// contend only on the WAL lock (briefly) and never serialize
    /// against readers or each other. Falls back to a full-window
    /// *resync* batch when the incremental path is unavailable: the
    /// cursor was truncated out of the WAL, lies outside the log, or a
    /// record hit the propagation escape hatch.
    pub fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        let tel = &self.inner.telemetry;
        let drain_span = Span::start();
        let tspan = esm_obs::trace::span_tagged("sub_drain", name);
        let drained = self.with_view(name, |reg| {
            let wal = self.lock_wal();
            if cursor < wal.mem.start_seq() || cursor > wal.mem.last_seq() {
                return Ok(None);
            }
            let Some(pending) = committed_table_deltas(&reg.table, wal.mem.records_after(cursor))
            else {
                // Unsettled trailing transaction: push once it settles.
                return Ok(Some(ViewDeltas::empty(cursor)));
            };
            let last = wal.mem.last_seq();
            let mut view_deltas = Vec::with_capacity(pending.len());
            for delta in pending {
                match reg.lens.get_delta(delta) {
                    DeltaOutcome::View(vd) => view_deltas.push(vd),
                    DeltaOutcome::Rebuild => return Ok(None),
                }
            }
            Ok(Some(ViewDeltas {
                from_seq: cursor,
                to_seq: last,
                delta: Delta::coalesce(view_deltas, &reg.view_keys),
                resync: None,
            }))
        });
        tel.record(Phase::SubDrain, drain_span.elapsed_ns());
        drop(tspan);
        match drained? {
            Some(batch) => Ok(batch),
            None => {
                let (window, seq) = self.read_view_at(name)?;
                Ok(ViewDeltas {
                    from_seq: cursor,
                    to_seq: seq,
                    delta: Delta::empty(),
                    resync: Some(window),
                })
            }
        }
    }

    /// Lock every eager view window over a table `touches` selects, in
    /// view-name order — called **before** the commit path takes its
    /// stripe locks, honouring the window → stripe → WAL lock order
    /// (the same order [`EngineServer::read_view`] follows), so eager
    /// maintenance can never deadlock against readers.
    fn lock_eager_views<'a>(
        &self,
        views: &'a BTreeMap<String, ViewReg>,
        touches: impl Fn(&str) -> bool,
    ) -> Vec<EagerSlot<'a>> {
        views
            .values()
            .filter(|reg| reg.eager && touches(&reg.table))
            .map(|reg| EagerSlot {
                reg,
                mat: reg.mat.lock().expect("view window lock poisoned"),
            })
            .collect()
    }

    /// Fold the records just appended (and anything else still pending)
    /// into the locked eager windows. Called with the WAL lock still
    /// held, right after install — the windows are fresh before the
    /// commit's locks release. `fresh` maps each committed table to its
    /// just-installed state, the rebuild source when a lens hits the
    /// propagation escape hatch.
    fn fold_eager_views(&self, slots: &mut [EagerSlot<'_>], wal: &Wal, fresh: &[(&str, &Table)]) {
        if slots.is_empty() {
            return;
        }
        let fold_span = Span::start();
        for slot in slots.iter_mut() {
            let reg = slot.reg;
            let mat = &mut *slot.mat;
            if mat.applied_seq >= wal.start_seq() {
                match committed_table_deltas(&reg.table, wal.records_after(mat.applied_seq)) {
                    Some(pending) => {
                        if let Some(drained) =
                            crate::view::drain_into_window(&reg.lens, pending, &mut mat.window)
                        {
                            self.inner.metrics.view_deltas(drained);
                            self.inner.metrics.view_materialized();
                            mat.applied_seq = wal.last_seq();
                            continue;
                        }
                        // Escape hatch: rebuild below.
                    }
                    // An unsettled trailing transaction (not ours — our
                    // groups append whole under this lock): leave the
                    // window for the next lazy read.
                    None => continue,
                }
            }
            let Some((_, base)) = fresh.iter().find(|(t, _)| *t == reg.table) else {
                continue;
            };
            mat.window = reg.lens.get(base);
            mat.applied_seq = wal.last_seq();
            self.inner.metrics.view_rebuild();
        }
        self.inner
            .telemetry
            .record(Phase::ViewDeltaFold, fold_span.elapsed_ns());
    }

    /// Write an edited view back (the lens `put`) — pessimistic path.
    ///
    /// The base table's stripe stays write-locked across put/diff/publish,
    /// so concurrent writers of views over the same table serialize and no
    /// write is torn. Note the semantics: a `put` replaces the view's
    /// whole visible window, so two clients that both *read* a view and
    /// then both `put` it land last-writer-wins — the second put's view
    /// state is authoritative. For read-modify-write edits that must not
    /// lose concurrent updates, use [`EngineServer::edit_view_optimistic`]
    /// (or [`crate::EntangledView::edit`]), which revalidates
    /// first-committer-wins against the WAL. Returns the base-table delta.
    pub fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        let (delta, seq) = {
            let views = self.inner.views.read().expect("views lock poisoned");
            let reg = views
                .get(name)
                .ok_or_else(|| EngineError::NoSuchView(name.to_string()))?;
            // Eager windows lock before the stripe (window → stripe → WAL).
            let mut eager = self.lock_eager_views(&views, |t| t == reg.table);
            let mut shard = self.inner.tables.write(&reg.table);
            let _lock_hold = self.inner.telemetry.timer(Phase::CommitLockHold);
            let base = shard
                .get_mut(&reg.table)
                .ok_or_else(|| EngineError::NoSuchTable(reg.table.clone()))?;
            // Lens puts panic on view tables that don't fit their schema;
            // a panic here would poison the stripe and views locks and
            // wedge the whole engine, so catch it and surface an error to
            // the offending client instead.
            let put_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reg.lens.put(base.clone(), view)
            }));
            let new_base = match put_result {
                Ok(t) => t,
                Err(_) => {
                    return Err(EngineError::Store(esm_store::StoreError::BadQuery(
                        format!("view write rejected: the edited table does not fit view {name}"),
                    )))
                }
            };
            let delta = Delta::between(base, &new_base)?;
            if delta.is_empty() {
                (delta, None)
            } else {
                // Publish by applying the delta to the live table rather
                // than swapping in the lens output: apply clones the
                // current table (secondary indexes included) and
                // maintains them incrementally, instead of rebuilding
                // every index from scratch under the stripe write lock.
                let next = delta.apply(base)?;
                // Lock order is always stripe → WAL (see
                // edit_view_optimistic). Durable-first: if the segment
                // write fails, the base table is untouched and the error
                // surfaces to this client only.
                let mut wal = self.lock_wal();
                let seq = wal.append(&reg.table, &delta, self.defer_sync())?;
                *base = next;
                let table_name = reg.table.clone();
                self.fold_eager_views(&mut eager, &wal.mem, &[(table_name.as_str(), &*base)]);
                drop(wal);
                drop(shard);
                self.inner.metrics.commit(delta.len() as u64);
                (delta, Some(seq))
            }
        };
        if let Some(seq) = seq {
            self.wait_group(seq)?;
            self.inner.notifier.publish(seq);
        }
        Ok(delta)
    }

    /// Transactionally edit a view — optimistic path.
    ///
    /// Snapshots the view, applies `edit`, runs the lens `put` outside any
    /// lock, then commits under the write lock iff no WAL record since the
    /// snapshot touches a primary key this edit touches (first-committer-
    /// wins, like [`crate::TxStore`]); otherwise retries with a fresh
    /// snapshot, up to `attempts` times.
    pub fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                self.inner.metrics.retry();
            }
            // Snapshot seq *before* the base table: a commit landing in
            // between makes us re-check records already reflected in our
            // base — a spurious retry at worst, never a lost update.
            let snap_span = Span::start();
            let snap_tspan = esm_obs::trace::span("commit_snapshot");
            let snap_seq = self.lock_wal().mem.last_seq();
            let (table_name, base, lens) = self.with_view(name, |reg| {
                let shard = self.inner.tables.read(&reg.table);
                let base = shard
                    .get(&reg.table)
                    .ok_or_else(|| EngineError::NoSuchTable(reg.table.clone()))?;
                Ok((reg.table.clone(), base.clone(), reg.lens.clone()))
            })?;
            self.inner
                .telemetry
                .record(Phase::CommitSnapshot, snap_span.elapsed_ns());
            drop(snap_tspan);

            let mut view = lens.get(&base);
            edit(&mut view)?;
            let new_base = lens.put(base.clone(), view);
            let delta = Delta::between(&base, &new_base)?;
            if delta.is_empty() {
                return Ok(delta);
            }
            // Our own key set, once — not once per WAL record scanned.
            let our_keys = delta_keys(&base, &delta);

            // Validate + publish under the stripe write lock; eager
            // windows lock first (window → stripe → WAL).
            let views = self.inner.views.read().expect("views lock poisoned");
            let mut eager = self.lock_eager_views(&views, |t| t == table_name);
            let mut shard = self.inner.tables.write(&table_name);
            let _lock_hold = self.inner.telemetry.timer(Phase::CommitLockHold);
            let current = shard
                .get_mut(&table_name)
                .ok_or_else(|| EngineError::NoSuchTable(table_name.clone()))?;
            let mut wal = self.lock_wal();
            // A truncation may have dropped records we would need to
            // scan; a snapshot older than the log's start conservatively
            // conflicts (the retry re-snapshots past the truncation
            // point, so progress is never lost).
            let validate_tspan = esm_obs::trace::span("commit_validate");
            let conflicted = self.inner.telemetry.time(Phase::CommitValidate, || {
                snap_seq < wal.mem.start_seq()
                    || wal.mem.records_after(snap_seq).iter().any(|rec| {
                        rec.delta_op().is_some_and(|(rec_table, rec_delta)| {
                            rec_table == table_name
                                && delta_keys(&base, rec_delta)
                                    .iter()
                                    .any(|k| our_keys.contains(k))
                        })
                    })
            });
            drop(validate_tspan);
            if conflicted {
                drop(wal);
                drop(shard);
                drop(eager);
                drop(views);
                self.inner.metrics.conflict();
                continue;
            }
            // Rebase: disjoint concurrent commits are already in
            // `current`; applying our delta on top is the serial outcome.
            // Durable-first: a failed segment write publishes nothing.
            let next = delta.apply(current)?;
            let seq = wal.append(&table_name, &delta, self.defer_sync())?;
            *current = next;
            self.fold_eager_views(&mut eager, &wal.mem, &[(table_name.as_str(), &*current)]);
            drop(wal);
            drop(shard);
            drop(eager);
            drop(views);
            self.inner.metrics.commit(delta.len() as u64);
            self.wait_group(seq)?;
            self.inner.notifier.publish(seq);
            return Ok(delta);
        }
        Err(EngineError::RetriesExhausted {
            view: name.to_string(),
            attempts,
        })
    }

    // ------------------------------------------------------------------
    // Transactions.
    // ------------------------------------------------------------------

    /// A consistent whole-database snapshot plus the WAL position it
    /// reflects: every stripe read lock is held together while both are
    /// taken, so no committed write can land between any two tables or
    /// between the tables and the sequence number.
    fn snapshot_with_seq(&self) -> (Database, u64) {
        let _snapshot = self.inner.telemetry.timer(Phase::CommitSnapshot);
        let _tspan = esm_obs::trace::span("commit_snapshot");
        let guards = self.inner.tables.read_all();
        let mut db = Database::new();
        for guard in &guards {
            for (name, table) in guard.iter() {
                db.replace_table(name.clone(), table.clone());
            }
        }
        let seq = self.lock_wal().mem.last_seq();
        (db, seq)
    }

    /// Run `body` in a snapshot transaction over the whole database,
    /// retrying first-committer-wins conflicts up to `max_attempts`
    /// times — the unsharded counterpart of
    /// [`crate::shard::ShardedEngineServer::transact`].
    ///
    /// The snapshot is taken under all stripe read locks at once; the
    /// commit validates key overlap against every WAL record since the
    /// snapshot and publishes atomically under the affected stripes'
    /// write locks (taken in index order — the same discipline
    /// concurrent transactions follow, so multi-stripe commits never
    /// deadlock). A transaction that changed several tables appends one
    /// *chained* WAL record group, the all-or-nothing durability unit.
    /// Tables `body` creates in its working copy are ignored: the
    /// engine's table set is fixed at construction.
    pub fn transact(
        &self,
        max_attempts: u32,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        let mut attempt = 0;
        loop {
            let (snapshot, snap_seq) = self.snapshot_with_seq();
            let mut working = snapshot.clone();
            body(&mut working)?;
            let mut deltas = BTreeMap::new();
            for name in snapshot.table_names() {
                let delta = Delta::between(snapshot.table(name)?, working.table(name)?)?;
                if !delta.is_empty() {
                    deltas.insert(name.to_string(), delta);
                }
            }
            match self.commit_tx_deltas(&snapshot, snap_seq, &deltas) {
                Ok(stamp) => {
                    return Ok(CommitReceipt {
                        stamp,
                        shards: Vec::new(),
                        deltas,
                        gtx: None,
                    })
                }
                Err(EngineError::Conflict { .. }) if attempt + 1 < max_attempts.max(1) => {
                    attempt += 1;
                    self.inner.metrics.retry();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Validate and publish one transaction's per-table deltas: write
    /// locks on every affected stripe (index order), first-committer-
    /// wins against the WAL records since `snap_seq`, one chained WAL
    /// group, then install. Returns the commit stamp (the terminator
    /// record's sequence number).
    fn commit_tx_deltas(
        &self,
        snapshot: &Database,
        snap_seq: u64,
        deltas: &BTreeMap<String, Delta>,
    ) -> Result<u64, EngineError> {
        if deltas.is_empty() {
            return Ok(self.lock_wal().mem.last_seq());
        }
        let mut stripes: Vec<usize> = deltas
            .keys()
            .map(|t| self.inner.tables.stripe_of(t))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        // Eager windows lock before the stripes (window → stripe → WAL).
        let views = self.inner.views.read().expect("views lock poisoned");
        let mut eager = self.lock_eager_views(&views, |t| deltas.contains_key(t));
        let mut guards = self.inner.tables.write_indices(&stripes);
        let lock_span = Span::start();
        let mut wal = self.lock_wal();

        // FCW: a snapshot older than the log start (a truncation landed
        // since) conservatively conflicts; otherwise scan for key
        // overlap per table.
        let validate_span = Span::start();
        let validate_tspan = esm_obs::trace::span("commit_validate");
        if snap_seq < wal.mem.start_seq() {
            self.inner
                .telemetry
                .record(Phase::CommitValidate, validate_span.elapsed_ns());
            self.inner.metrics.conflict();
            return Err(EngineError::Conflict {
                table: deltas.keys().next().expect("non-empty").clone(),
                detail: format!(
                    "snapshot at seq {snap_seq} predates the truncated log start {}",
                    wal.mem.start_seq()
                ),
            });
        }
        for (name, delta) in deltas {
            let base = snapshot.table(name)?;
            let our_keys = delta_keys(base, delta);
            for rec in wal.mem.records_after(snap_seq) {
                let Some((rec_table, rec_delta)) = rec.delta_op() else {
                    continue;
                };
                if rec_table == name
                    && delta_keys(base, rec_delta)
                        .iter()
                        .any(|k| our_keys.contains(k))
                {
                    self.inner
                        .telemetry
                        .record(Phase::CommitValidate, validate_span.elapsed_ns());
                    self.inner.metrics.conflict();
                    return Err(EngineError::Conflict {
                        table: name.clone(),
                        detail: format!(
                            "snapshot at seq {snap_seq} overlaps commit seq {}",
                            rec.seq
                        ),
                    });
                }
            }
        }
        let validate_ns = validate_span.elapsed_ns();
        drop(validate_tspan);
        self.inner
            .telemetry
            .record(Phase::CommitValidate, validate_ns);

        // Rebase onto the live tables (disjoint concurrent commits are
        // already in them); an apply error aborts before anything is
        // logged or installed.
        let mut staged: Vec<(usize, String, Table)> = Vec::with_capacity(deltas.len());
        for (name, delta) in deltas {
            let stripe = self.inner.tables.stripe_of(name);
            let slot = stripes
                .binary_search(&stripe)
                .expect("stripe was collected");
            let current = guards[slot]
                .1
                .get(name)
                .ok_or_else(|| EngineError::NoSuchTable(name.clone()))?;
            staged.push((slot, name.clone(), delta.apply(current)?));
        }
        // Durable-first: a failed segment write publishes nothing.
        let group: Vec<(String, Delta)> =
            deltas.iter().map(|(t, d)| (t.clone(), d.clone())).collect();
        let stamp = wal.append_group(&group, self.defer_sync())?;
        for (slot, name, next) in staged {
            guards[slot].1.insert(name, next);
        }
        let fresh: Vec<(&str, &Table)> = deltas
            .keys()
            .filter_map(|name| {
                let stripe = self.inner.tables.stripe_of(name);
                let slot = stripes.binary_search(&stripe).expect("stripe collected");
                guards[slot].1.get(name).map(|t| (name.as_str(), t))
            })
            .collect();
        self.fold_eager_views(&mut eager, &wal.mem, &fresh);
        drop(wal);
        let lock_ns = lock_span.elapsed_ns();
        drop(guards);
        drop(eager);
        drop(views);
        self.inner.telemetry.record(Phase::CommitLockHold, lock_ns);
        self.inner.telemetry.record_slow(
            "transact",
            lock_ns,
            &[
                (Phase::CommitValidate, validate_ns),
                (Phase::CommitLockHold, lock_ns),
            ],
        );
        let rows: u64 = deltas.values().map(|d| d.len() as u64).sum();
        self.inner.metrics.commit(rows);
        self.wait_group(stamp)?;
        self.inner.notifier.publish(stamp);
        Ok(stamp)
    }

    /// Delta-direct checked commit — the engine side of the wire
    /// protocol's `commit` request, O(delta) instead of O(database):
    /// no whole-database snapshot, no re-diff. Pre-image validation
    /// against the *live* tables under the affected stripes' write
    /// locks is the first-committer-wins check (a mismatch means some
    /// commit landed since the client's snapshot), then the deltas
    /// append as one chained WAL group and install atomically.
    pub fn commit_deltas_checked(
        &self,
        deltas: &[(String, Delta)],
    ) -> Result<CommitReceipt, EngineError> {
        let nonempty: Vec<&(String, Delta)> =
            deltas.iter().filter(|(_, d)| !d.is_empty()).collect();
        if nonempty.is_empty() {
            return Ok(CommitReceipt {
                stamp: self.lock_wal().mem.last_seq(),
                shards: Vec::new(),
                deltas: BTreeMap::new(),
                gtx: None,
            });
        }
        let mut stripes: Vec<usize> = nonempty
            .iter()
            .map(|(t, _)| self.inner.tables.stripe_of(t))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        // Eager windows lock before the stripes (window → stripe → WAL).
        let views = self.inner.views.read().expect("views lock poisoned");
        let mut eager =
            self.lock_eager_views(&views, |t| nonempty.iter().any(|(name, _)| name == t));
        let mut guards = self.inner.tables.write_indices(&stripes);
        let lock_span = Span::start();

        // Validate and stage per table (duplicate table entries apply
        // in request order onto the same staged copy).
        let validate_span = Span::start();
        let validate_tspan = esm_obs::trace::span("commit_validate");
        let mut staged: BTreeMap<String, (usize, Table)> = BTreeMap::new();
        for (name, delta) in &nonempty {
            if !staged.contains_key(name) {
                let stripe = self.inner.tables.stripe_of(name);
                let slot = stripes
                    .binary_search(&stripe)
                    .expect("stripe was collected");
                let current = guards[slot]
                    .1
                    .get(name)
                    .ok_or_else(|| EngineError::NoSuchTable(name.clone()))?
                    .clone();
                staged.insert(name.clone(), (slot, current));
            }
            let (_, table) = staged.get_mut(name).expect("staged above");
            crate::engine::apply_table_delta_checked(table, name, delta)?;
        }
        self.inner
            .telemetry
            .record(Phase::CommitValidate, validate_span.elapsed_ns());
        drop(validate_tspan);

        // Durable-first: a failed segment write publishes nothing.
        let mut wal = self.lock_wal();
        let group: Vec<(String, Delta)> = nonempty
            .iter()
            .map(|(t, d)| (t.clone(), d.clone()))
            .collect();
        let stamp = wal.append_group(&group, self.defer_sync())?;
        let touched: Vec<String> = staged.keys().cloned().collect();
        for (name, (slot, next)) in staged {
            guards[slot].1.insert(name, next);
        }
        let fresh: Vec<(&str, &Table)> = touched
            .iter()
            .filter_map(|name| {
                let stripe = self.inner.tables.stripe_of(name);
                let slot = stripes.binary_search(&stripe).expect("stripe collected");
                guards[slot].1.get(name).map(|t| (name.as_str(), t))
            })
            .collect();
        self.fold_eager_views(&mut eager, &wal.mem, &fresh);
        drop(wal);
        let lock_ns = lock_span.elapsed_ns();
        drop(guards);
        drop(eager);
        drop(views);
        self.inner.telemetry.record(Phase::CommitLockHold, lock_ns);
        let rows: u64 = nonempty.iter().map(|(_, d)| d.len() as u64).sum();
        self.inner.metrics.commit(rows);
        self.wait_group(stamp)?;
        self.inner.notifier.publish(stamp);
        let mut delta_map: BTreeMap<String, Delta> = BTreeMap::new();
        for (name, delta) in &nonempty {
            let entry = delta_map.entry(name.clone()).or_insert_with(Delta::empty);
            entry.inserted.extend(delta.inserted.iter().cloned());
            entry.deleted.extend(delta.deleted.iter().cloned());
        }
        Ok(CommitReceipt {
            stamp,
            shards: Vec::new(),
            deltas: delta_map,
            gtx: None,
        })
    }

    // ------------------------------------------------------------------
    // WAL truncation.
    // ------------------------------------------------------------------

    /// Drop the WAL prefix every consumer is past: records at or below
    /// the oldest view-window cursor **and** the durable checkpoint (for
    /// durable engines), cut back to a settled transaction boundary, are
    /// folded into the replay baseline and removed from the in-memory
    /// log — bounding its growth without breaking the replay law or any
    /// window drain. Returns how many records were dropped.
    ///
    /// First-committer-wins validation of in-flight optimistic edits is
    /// truncation-aware: a snapshot older than the new log start
    /// conflicts conservatively and retries against fresh state.
    pub fn truncate_wal(&self) -> Result<u64, EngineError> {
        // The floor: the oldest WAL position any materialized window
        // still needs to drain from. Cursors only advance, so reading
        // them before taking the WAL lock is conservative; views
        // registered concurrently materialize at the live position,
        // which is at or past any cut chosen here.
        let mut floor = u64::MAX;
        {
            let views = self.inner.views.read().expect("views lock poisoned");
            for reg in views.values() {
                let mat = reg.mat.lock().expect("view window lock poisoned");
                floor = floor.min(mat.applied_seq);
            }
        }
        let mut baseline = self.inner.baseline.lock().expect("baseline lock poisoned");
        let mut wal = self.lock_wal();
        if let Some(d) = wal.durable.as_ref() {
            floor = floor.min(d.checkpoint_seq());
        }
        let floor = floor.min(wal.mem.last_seq());
        let cut = wal.mem.settled_prefix_end(floor);
        if cut <= wal.mem.start_seq() {
            return Ok(0);
        }
        let dropped = wal.mem.truncate_through(cut)?;
        let count = dropped.len() as u64;
        *baseline = Wal::from_records(dropped).replay(&baseline)?;
        drop(wal);
        drop(baseline);
        self.inner.metrics.wal_truncated(count);
        Ok(count)
    }

    fn lock_wal(&self) -> std::sync::MutexGuard<'_, WalState> {
        self.inner.wal.lock().expect("wal lock poisoned")
    }

    /// Whether commit paths defer their durable fsync to the
    /// [`GroupCommit`] gate.
    fn defer_sync(&self) -> bool {
        self.inner.group.is_some()
    }

    /// Block until `seq` is durable. Called *after* the commit path has
    /// dropped its stripe and WAL locks: the only lock held while parked
    /// is the group gate's own, and the elected leader re-takes the WAL
    /// lock inside the sync closure — so whoever leads carries every
    /// committer that appended before the fsync was issued. No-op for
    /// engines without the gate (in-memory, or lazy `group_commit > 1`).
    fn wait_group(&self, seq: u64) -> Result<(), EngineError> {
        let Some(group) = &self.inner.group else {
            return Ok(());
        };
        let tspan = esm_obs::trace::span("group_commit_wait");
        let led = group.wait_durable(seq, || {
            let mut wal = self.lock_wal();
            let durable = wal
                .durable
                .as_mut()
                .expect("the group-commit gate exists only on durable engines");
            let through = durable.last_seq();
            durable.sync()?;
            Ok(through)
        })?;
        if let Some(mut t) = tspan {
            t.set_tag(if led { "leader" } else { "follower" });
        }
        Ok(())
    }
}

impl std::fmt::Debug for EngineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EngineServer {{ tables: {:?}, views: {:?} }}",
            self.table_names(),
            self.view_names()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Operand, Predicate, Schema, Value, ValueType};

    fn employees() -> Database {
        let schema = Schema::build(
            &[
                ("eid", ValueType::Int),
                ("name", ValueType::Str),
                ("dept", ValueType::Str),
                ("salary", ValueType::Int),
            ],
            &["eid"],
        )
        .unwrap();
        let t = Table::from_rows(
            schema,
            vec![
                row![1, "ada", "research", 90_000],
                row![2, "alan", "ops", 80_000],
                row![3, "grace", "research", 95_000],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.create_table("employees", t).unwrap();
        db
    }

    fn engine_with_views() -> EngineServer {
        let engine = EngineServer::new(employees());
        engine
            .define_view(
                "research",
                "employees",
                &ViewDef::base().select(Predicate::eq(
                    Operand::col("dept"),
                    Operand::val("research"),
                )),
            )
            .unwrap();
        engine
            .define_view(
                "directory",
                "employees",
                &ViewDef::base().project(
                    &["eid", "name"],
                    &[
                        ("dept", Value::str("unknown")),
                        ("salary", Value::Int(50_000)),
                    ],
                ),
            )
            .unwrap();
        engine
    }

    #[test]
    fn views_read_against_live_state() {
        let e = engine_with_views();
        assert_eq!(e.view_names(), vec!["directory", "research"]);
        assert_eq!(e.read_view("research").unwrap().len(), 2);
        assert_eq!(e.read_view("directory").unwrap().len(), 3);
        assert!(matches!(
            e.read_view("ghost"),
            Err(EngineError::NoSuchView(_))
        ));
        // The select view auto-indexed its predicate column.
        assert_eq!(
            e.table("employees").unwrap().indexed_columns(),
            vec!["dept"]
        );
    }

    #[test]
    fn pessimistic_writes_report_base_deltas_and_wal() {
        let e = engine_with_views();
        let mut v = e.read_view("research").unwrap();
        v.upsert(row![4, "barbara", "research", 70_000]).unwrap();
        let delta = e.write_view("research", v).unwrap();
        assert_eq!(delta.inserted, vec![row![4, "barbara", "research", 70_000]]);
        // Visible through the other entangled view.
        assert!(e
            .read_view("directory")
            .unwrap()
            .contains(&row![4, "barbara"]));
        assert_eq!(e.wal().len(), 1);
        assert_eq!(e.metrics().commits, 1);
        // Hippocratic: writing a view back unchanged is a no-op.
        let v = e.read_view("research").unwrap();
        assert!(e.write_view("research", v).unwrap().is_empty());
        assert_eq!(e.wal().len(), 1);
    }

    #[test]
    fn optimistic_edits_commit_and_recover() {
        let e = engine_with_views();
        e.edit_view_optimistic("research", 4, |v| {
            v.upsert(row![5, "edsger", "research", 88_000])?;
            Ok(())
        })
        .unwrap();
        e.edit_view_optimistic("directory", 4, |v| {
            v.upsert(row![1, "ada lovelace"])?;
            Ok(())
        })
        .unwrap();
        // Hidden salary survives the projection edit.
        assert!(e.table("employees").unwrap().contains(&row![
            1,
            "ada lovelace",
            "research",
            90_000
        ]));
        // WAL replay reproduces the live state.
        assert_eq!(e.recovered_database().unwrap(), e.snapshot());
    }

    #[test]
    fn ill_fitting_view_writes_error_without_wedging_the_engine() {
        let e = engine_with_views();
        // A view table with the wrong arity: the lens put would panic;
        // the engine must surface an error and stay fully usable.
        let bad = Table::from_rows(
            Schema::build(&[("eid", ValueType::Int)], &["eid"]).unwrap(),
            vec![row![1]],
        )
        .unwrap();
        assert!(matches!(
            e.write_view("research", bad),
            Err(EngineError::Store(_))
        ));
        // Locks are not poisoned: reads and writes still work.
        assert_eq!(e.read_view("research").unwrap().len(), 2);
        let mut v = e.read_view("research").unwrap();
        v.upsert(row![9, "ok", "research", 1]).unwrap();
        assert!(!e.write_view("research", v).unwrap().is_empty());
    }

    #[test]
    fn steady_state_reads_are_materialized_not_recomputed() {
        let e = engine_with_views();
        // Registration materialized each view once.
        let registration_rebuilds = e.metrics().view.rebuilds;
        assert_eq!(registration_rebuilds, 2);

        for i in 0..10i64 {
            e.edit_view_optimistic("research", 4, move |v| {
                v.upsert(row![100 + i, format!("r{i}"), "research", 60_000])?;
                Ok(())
            })
            .unwrap();
            // Reads pick the commit up through delta maintenance…
            assert_eq!(e.read_view("research").unwrap().len() as i64, 3 + i);
            // …and the entangled sibling view stays in lockstep too.
            assert_eq!(e.read_view("directory").unwrap().len() as i64, 4 + i);
        }

        let m = e.metrics();
        // The acceptance gate: repeated reads under a write workload
        // never re-run the whole-base lens get.
        assert_eq!(
            m.view.rebuilds, registration_rebuilds,
            "steady-state reads must not rebuild"
        );
        assert_eq!(m.view.materialized_reads, 20);
        assert!(m.view.deltas_applied >= 20, "both windows drained deltas");

        // Quiescent re-reads stay flat and cheap.
        let before = e.metrics().view.deltas_applied;
        for _ in 0..5 {
            assert_eq!(e.read_view("research").unwrap().len(), 12);
        }
        assert_eq!(e.metrics().view.deltas_applied, before);
        assert_eq!(e.metrics().view.rebuilds, registration_rebuilds);
    }

    #[test]
    fn duplicate_views_and_unknown_tables_are_rejected() {
        let e = engine_with_views();
        assert!(matches!(
            e.define_view("research", "employees", &ViewDef::base()),
            Err(EngineError::ViewExists(_))
        ));
        assert!(matches!(
            e.define_view("x", "ghost", &ViewDef::base()),
            Err(EngineError::NoSuchTable(_))
        ));
    }
}
