//! Checkpoints: durable snapshots of the committed database at a known
//! WAL sequence number.
//!
//! A checkpoint file `checkpoint-<seq, zero-padded>.ckpt` holds:
//!
//! ```text
//! !checkpoint seq=<seq>
//! <database snapshot, the esm_store::snapshot text format>
//! !end
//! ```
//!
//! Recovery loads the newest *valid* checkpoint and replays only WAL
//! records with `seq > checkpoint.seq`, instead of replaying from
//! genesis. Validity matters because a crash can interrupt a checkpoint:
//! files are written to a temporary name, fsynced, then renamed into
//! place (atomic on POSIX), and the `!end` trailer guards against
//! filesystems that lie about rename atomicity — a checkpoint missing its
//! trailer is ignored and recovery falls back to the previous one.
//!
//! Compaction follows from checkpoints: every segment whose records are
//! all covered by the newest checkpoint can be deleted (see
//! [`crate::DurableWal::checkpoint`]).

use std::path::{Path, PathBuf};

use esm_store::{decode_database, encode_database, Database};

use crate::error::EngineError;

/// Filename extension of checkpoint files.
pub const CHECKPOINT_SUFFIX: &str = ".ckpt";

/// The file name of the checkpoint covering `seq`.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("checkpoint-{seq:020}{CHECKPOINT_SUFFIX}")
}

/// Parse a checkpoint file name back to the sequence number it covers.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(CHECKPOINT_SUFFIX)?
        .parse()
        .ok()
}

/// A decoded checkpoint: the database state after applying every WAL
/// record with `seq <= seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The WAL sequence number this snapshot covers.
    pub seq: u64,
    /// The committed database at that point.
    pub db: Database,
}

impl Checkpoint {
    /// Render the checkpoint file content.
    pub fn encode(&self) -> String {
        format!(
            "!checkpoint seq={}\n{}!end\n",
            self.seq,
            encode_database(&self.db)
        )
    }

    /// Parse checkpoint file content, validating header and trailer.
    pub fn decode(text: &str) -> Result<Checkpoint, EngineError> {
        let rest = text.strip_prefix("!checkpoint seq=").ok_or_else(|| {
            EngineError::WalCorrupt("checkpoint missing !checkpoint header".into())
        })?;
        let (seq_str, body) = rest
            .split_once('\n')
            .ok_or_else(|| EngineError::WalCorrupt("truncated checkpoint header".into()))?;
        let seq: u64 = seq_str
            .parse()
            .map_err(|_| EngineError::WalCorrupt(format!("bad checkpoint seq: {seq_str}")))?;
        let body = body.strip_suffix("!end\n").ok_or_else(|| {
            EngineError::WalCorrupt("checkpoint missing !end trailer (torn write?)".into())
        })?;
        let db = decode_database(body)
            .map_err(|e| EngineError::WalCorrupt(format!("checkpoint snapshot: {e}")))?;
        Ok(Checkpoint { seq, db })
    }

    /// Write this checkpoint into `dir` atomically: temp file, fsync,
    /// rename, fsync the directory. Returns the final path.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, EngineError> {
        write_atomic_text(dir, &checkpoint_file_name(self.seq), &self.encode())
    }
}

/// Write `text` into `dir/name` atomically (temp file → fsync → rename →
/// directory fsync) — the discipline checkpoints use, shared with the
/// shard topology file. Returns the final path.
pub(crate) fn write_atomic_text(
    dir: &Path,
    name: &str,
    text: &str,
) -> Result<PathBuf, EngineError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// fsync a directory so renames/creates/unlinks inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), EngineError> {
    // Directory fsync is supported on Linux; on platforms where opening a
    // directory fails, fall back to best effort (the rename itself is
    // still atomic).
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

/// Load the newest valid checkpoint in `dir`, skipping unreadable or
/// torn ones (a crash mid-checkpoint must fall back, not fail recovery).
/// Returns the checkpoint and how many corrupt candidates were skipped.
pub fn latest_valid_checkpoint(dir: &Path) -> Result<(Option<Checkpoint>, u64), EngineError> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    let mut skipped = 0;
    for seq in seqs.into_iter().rev() {
        let path = dir.join(checkpoint_file_name(seq));
        let parsed = std::fs::read_to_string(&path)
            .map_err(EngineError::from)
            .and_then(|text| Checkpoint::decode(&text));
        match parsed {
            Ok(ckpt) if ckpt.seq == seq => return Ok((Some(ckpt), skipped)),
            _ => skipped += 1,
        }
    }
    Ok((None, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, Table, ValueType};

    fn db() -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(schema, vec![row![1, "a"], row![2, "b"]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("esm-checkpoint-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(parse_checkpoint_name(&checkpoint_file_name(42)), Some(42));
        assert!(checkpoint_file_name(9) < checkpoint_file_name(10));
        assert_eq!(parse_checkpoint_name("wal-1.seg"), None);
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = Checkpoint { seq: 7, db: db() };
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn truncated_checkpoints_are_rejected() {
        let text = Checkpoint { seq: 7, db: db() }.encode();
        for cut in 0..text.len() {
            assert!(
                Checkpoint::decode(&text[..cut]).is_err(),
                "cut at {cut} must not decode (missing trailer)"
            );
        }
    }

    #[test]
    fn latest_valid_skips_torn_newer_checkpoints() {
        let dir = tmp_dir("skip-torn");
        Checkpoint { seq: 5, db: db() }.write_atomic(&dir).unwrap();
        // A newer checkpoint whose write was interrupted (no trailer).
        std::fs::write(
            dir.join(checkpoint_file_name(9)),
            "!checkpoint seq=9\n%table t\n",
        )
        .unwrap();
        let (found, skipped) = latest_valid_checkpoint(&dir).unwrap();
        assert_eq!(found.unwrap().seq, 5);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmp_dir("empty");
        let (found, skipped) = latest_valid_checkpoint(&dir).unwrap();
        assert!(found.is_none());
        assert_eq!(skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
