//! [`EntangledView`]: a client's handle onto one bidirectional view.
//!
//! This is the paper's entangled-state-monad session made concurrent: the
//! hidden shared state is a base table inside the engine; `get` reads the
//! view of the *current* state; `put` writes an edited view back through
//! the lens as a transaction. Many clients hold views over the same base
//! table — each one's writes show up in every other's reads, because the
//! state is entangled, not copied.

use esm_store::{Delta, Table};

use crate::error::EngineError;
use crate::server::{EngineServer, DEFAULT_OPTIMISTIC_ATTEMPTS};

/// A client handle onto one named view of an [`EngineServer`]. Cheap to
/// clone and [`Send`], so each worker thread can own one.
#[derive(Clone, Debug)]
pub struct EntangledView {
    server: EngineServer,
    name: String,
}

impl EntangledView {
    pub(crate) fn new(server: EngineServer, name: String) -> EntangledView {
        EntangledView { server, name }
    }

    /// The view's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine this view belongs to.
    pub fn server(&self) -> &EngineServer {
        &self.server
    }

    /// Read the view against the current base state (lens `get`).
    pub fn get(&self) -> Result<Table, EngineError> {
        self.server.read_view(&self.name)
    }

    /// Write an edited view back (lens `put`, pessimistic path); returns
    /// the delta applied to the base table.
    ///
    /// A `put` replaces the view's whole visible window (last-writer-wins
    /// between racing putters); prefer [`EntangledView::edit`] for
    /// read-modify-write edits that must not lose concurrent updates.
    pub fn put(&self, view: Table) -> Result<Delta, EngineError> {
        self.server.write_view(&self.name, view)
    }

    /// Transactionally edit the view (optimistic path with retries):
    /// read, apply `edit`, write back, revalidating first-committer-wins.
    pub fn edit(
        &self,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        self.server
            .edit_view_optimistic(&self.name, DEFAULT_OPTIMISTIC_ATTEMPTS, edit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_relational::ViewDef;
    use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};

    fn engine() -> EngineServer {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("grp", ValueType::Str),
                ("n", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a", 10], row![2, "b", 20]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        EngineServer::new(db)
    }

    #[test]
    fn handles_route_to_their_view() {
        let e = engine();
        let a = e
            .define_view(
                "a",
                "t",
                &ViewDef::base().select(Predicate::eq(Operand::col("grp"), Operand::val("a"))),
            )
            .unwrap();
        assert_eq!(a.name(), "a");
        assert_eq!(a.get().unwrap().len(), 1);

        let delta = a
            .edit(|v| Ok(v.upsert(row![3, "a", 30]).map(|_| ())?))
            .unwrap();
        assert_eq!(delta.inserted.len(), 1);
        assert_eq!(a.get().unwrap().len(), 2);

        // A second handle to the same engine sees the write immediately.
        let again = e.view("a").unwrap();
        assert_eq!(again.get().unwrap().len(), 2);
    }

    #[test]
    fn put_reports_the_base_delta() {
        let e = engine();
        let all = e.define_view("all", "t", &ViewDef::base()).unwrap();
        let mut v = all.get().unwrap();
        v.delete_by_key(&row![2]);
        let delta = all.put(v).unwrap();
        assert_eq!(delta.deleted, vec![row![2, "b", 20]]);
        assert_eq!(all.server().wal().len(), 1);
    }
}
