//! [`EntangledView`]: a client's handle onto one bidirectional view.
//!
//! This is the paper's entangled-state-monad session made concurrent: the
//! hidden shared state is a base table inside the engine; `get` reads the
//! view of the *current* state; `put` writes an edited view back through
//! the lens as a transaction. Many clients hold views over the same base
//! table — each one's writes show up in every other's reads, because the
//! state is entangled, not copied.
//!
//! A view handle is **host-location-oblivious**: it fronts any
//! [`Engine`] — a single [`crate::EngineServer`], a
//! [`crate::shard::ShardedEngineServer`] whose base table is partitioned
//! over many shards, or a `RemoteEngine` speaking the wire protocol from
//! another process. The client API is identical everywhere; routing,
//! two-phase commit and network framing all stay under the trait.

use std::sync::Arc;

use esm_lens::{DeltaLens, DeltaOutcome};
use esm_store::{Delta, Table};

use crate::engine::{ArcEngine, Engine};
use crate::error::EngineError;
use crate::server::DEFAULT_OPTIMISTIC_ATTEMPTS;

/// A client handle onto one named view of an engine. Cheap to clone and
/// [`Send`], so each worker thread can own one.
#[derive(Clone, Debug)]
pub struct EntangledView {
    host: ArcEngine,
    name: String,
}

impl EntangledView {
    /// Attach a handle to the view named `name` on `host`. Engines hand
    /// these out from `define_view` / `view` (which validate the name);
    /// attaching to an unregistered name is allowed but every operation
    /// will answer [`EngineError::NoSuchView`].
    pub fn attach(host: ArcEngine, name: impl Into<String>) -> EntangledView {
        EntangledView {
            host,
            name: name.into(),
        }
    }

    /// The view's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine hosting this view — uniform across unsharded, sharded
    /// and remote hosts (downcast-free: everything a client needs is on
    /// the [`Engine`] trait).
    pub fn engine(&self) -> &dyn Engine {
        &*self.host
    }

    /// A shared handle to the hosting engine.
    pub fn engine_arc(&self) -> ArcEngine {
        Arc::clone(&self.host)
    }

    /// Read the view against the current base state.
    ///
    /// Served from the engine's maintained materialized window —
    /// committed deltas since the last read are folded in (shard-pruned
    /// under key bounds on a sharded engine), equal to a fresh lens
    /// `get` but O(changes) instead of O(base).
    pub fn get(&self) -> Result<Table, EngineError> {
        self.host.read_view(&self.name)
    }

    /// Write an edited view back (lens `put`, pessimistic path); returns
    /// the delta applied to the base table.
    ///
    /// A `put` replaces the view's whole visible window (last-writer-wins
    /// between racing putters); prefer [`EntangledView::edit`] for
    /// read-modify-write edits that must not lose concurrent updates.
    pub fn put(&self, view: Table) -> Result<Delta, EngineError> {
        self.host.write_view(&self.name, view)
    }

    /// Transactionally edit the view (optimistic path with retries):
    /// read, apply `edit`, write back, revalidating first-committer-wins.
    pub fn edit(
        &self,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        self.edit_with_attempts(DEFAULT_OPTIMISTIC_ATTEMPTS, edit)
    }

    /// [`EntangledView::edit`] with an explicit retry budget (what a
    /// [`crate::Session`]'s retry policy drives).
    pub fn edit_with_attempts(
        &self,
        attempts: u32,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        self.host.edit_view_optimistic(&self.name, attempts, &edit)
    }
}

/// The one maintenance algorithm both engines share: translate a
/// drained run of committed base deltas through the view's propagator,
/// coalesce it into a single delta, and fold it into the window in
/// place. Returns the number of committed deltas folded in, or `None`
/// when the run needs the escape hatch (a [`DeltaOutcome::Rebuild`] or
/// an application error) — the caller then re-runs the lens `get` and
/// counts a rebuild; nothing from the run survives.
pub(crate) fn drain_into_window<'a>(
    lens: &DeltaLens<Table, Table, Delta>,
    pending: impl IntoIterator<Item = &'a Delta>,
    window: &mut Table,
) -> Option<u64> {
    let mut view_deltas = Vec::new();
    for delta in pending {
        match lens.get_delta(delta) {
            DeltaOutcome::View(view_delta) => view_deltas.push(view_delta),
            DeltaOutcome::Rebuild => return None,
        }
    }
    let drained = view_deltas.len() as u64;
    let key_idx = window.schema().key_indices();
    let combined = Delta::coalesce(view_deltas, &key_idx);
    match combined.apply_in_place(window) {
        Ok(()) => Some(drained),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::EngineServer;
    use esm_relational::ViewDef;
    use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};

    fn engine() -> EngineServer {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("grp", ValueType::Str),
                ("n", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a", 10], row![2, "b", 20]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        EngineServer::new(db)
    }

    #[test]
    fn handles_route_to_their_view() {
        let e = engine();
        let a = e
            .define_view(
                "a",
                "t",
                &ViewDef::base().select(Predicate::eq(Operand::col("grp"), Operand::val("a"))),
            )
            .unwrap();
        assert_eq!(a.name(), "a");
        assert_eq!(a.get().unwrap().len(), 1);

        let delta = a
            .edit(|v| Ok(v.upsert(row![3, "a", 30]).map(|_| ())?))
            .unwrap();
        assert_eq!(delta.inserted.len(), 1);
        assert_eq!(a.get().unwrap().len(), 2);

        // A second handle to the same engine sees the write immediately.
        let again = e.view("a").unwrap();
        assert_eq!(again.get().unwrap().len(), 2);
    }

    #[test]
    fn put_reports_the_base_delta() {
        let e = engine();
        let all = e.define_view("all", "t", &ViewDef::base()).unwrap();
        let mut v = all.get().unwrap();
        v.delete_by_key(&row![2]);
        let delta = all.put(v).unwrap();
        assert_eq!(delta.deleted, vec![row![2, "b", 20]]);
        assert_eq!(e.wal().len(), 1);
        // The host is reachable uniformly through the trait, whatever
        // kind of engine it is.
        assert_eq!(all.engine().table_names().unwrap(), vec!["t"]);
        assert_eq!(all.engine().metrics().unwrap().commits, 1);
    }

    #[test]
    fn attached_handles_to_unknown_views_error_per_call() {
        let e = engine();
        let ghost = EntangledView::attach(e.as_engine(), "ghost");
        assert!(matches!(ghost.get(), Err(EngineError::NoSuchView(_))));
        assert!(matches!(
            ghost.edit(|_| Ok(())),
            Err(EngineError::NoSuchView(_))
        ));
    }
}
