//! [`EntangledView`]: a client's handle onto one bidirectional view.
//!
//! This is the paper's entangled-state-monad session made concurrent: the
//! hidden shared state is a base table inside the engine; `get` reads the
//! view of the *current* state; `put` writes an edited view back through
//! the lens as a transaction. Many clients hold views over the same base
//! table — each one's writes show up in every other's reads, because the
//! state is entangled, not copied.
//!
//! A view handle is **routing-oblivious**: it may front a single
//! [`EngineServer`] or a [`ShardedEngineServer`] whose base table is
//! partitioned over many shards — the client API is identical, and
//! cross-shard writes coordinate transparently (two-phase commit inside
//! the engine).

use esm_lens::{DeltaLens, DeltaOutcome};
use esm_store::{Delta, Table};

use crate::error::EngineError;
use crate::server::{EngineServer, DEFAULT_OPTIMISTIC_ATTEMPTS};
use crate::shard::ShardedEngineServer;

/// The engine a view handle routes to.
#[derive(Clone, Debug)]
enum ViewHost {
    /// A single (possibly striped, possibly durable) engine.
    Engine(EngineServer),
    /// A key-range-sharded engine; writes route per key, cross-shard
    /// writes run two-phase commit.
    Sharded(ShardedEngineServer),
}

/// A client handle onto one named view of an engine. Cheap to clone and
/// [`Send`], so each worker thread can own one.
#[derive(Clone, Debug)]
pub struct EntangledView {
    host: ViewHost,
    name: String,
}

impl EntangledView {
    pub(crate) fn new(server: EngineServer, name: String) -> EntangledView {
        EntangledView {
            host: ViewHost::Engine(server),
            name,
        }
    }

    pub(crate) fn new_sharded(server: ShardedEngineServer, name: String) -> EntangledView {
        EntangledView {
            host: ViewHost::Sharded(server),
            name,
        }
    }

    /// The view's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unsharded engine this view belongs to (`None` when the view
    /// fronts a [`ShardedEngineServer`] — see
    /// [`EntangledView::sharded_server`]).
    pub fn server(&self) -> Option<&EngineServer> {
        match &self.host {
            ViewHost::Engine(e) => Some(e),
            ViewHost::Sharded(_) => None,
        }
    }

    /// The sharded engine this view belongs to (`None` when the view
    /// fronts a plain [`EngineServer`]).
    pub fn sharded_server(&self) -> Option<&ShardedEngineServer> {
        match &self.host {
            ViewHost::Engine(_) => None,
            ViewHost::Sharded(s) => Some(s),
        }
    }

    /// Read the view against the current base state.
    ///
    /// Served from the engine's maintained materialized window —
    /// committed deltas since the last read are folded in (shard-pruned
    /// under key bounds on a sharded engine), equal to a fresh lens
    /// `get` but O(changes) instead of O(base).
    pub fn get(&self) -> Result<Table, EngineError> {
        match &self.host {
            ViewHost::Engine(e) => e.read_view(&self.name),
            ViewHost::Sharded(s) => s.read_view(&self.name),
        }
    }

    /// Write an edited view back (lens `put`, pessimistic path); returns
    /// the delta applied to the base table.
    ///
    /// A `put` replaces the view's whole visible window (last-writer-wins
    /// between racing putters); prefer [`EntangledView::edit`] for
    /// read-modify-write edits that must not lose concurrent updates.
    pub fn put(&self, view: Table) -> Result<Delta, EngineError> {
        match &self.host {
            ViewHost::Engine(e) => e.write_view(&self.name, view),
            ViewHost::Sharded(s) => s.write_view(&self.name, view),
        }
    }

    /// Transactionally edit the view (optimistic path with retries):
    /// read, apply `edit`, write back, revalidating first-committer-wins.
    pub fn edit(
        &self,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        match &self.host {
            ViewHost::Engine(e) => {
                e.edit_view_optimistic(&self.name, DEFAULT_OPTIMISTIC_ATTEMPTS, edit)
            }
            ViewHost::Sharded(s) => {
                s.edit_view_optimistic(&self.name, DEFAULT_OPTIMISTIC_ATTEMPTS, edit)
            }
        }
    }
}

/// The one maintenance algorithm both engines share: translate a
/// drained run of committed base deltas through the view's propagator,
/// coalesce it into a single delta, and fold it into the window in
/// place. Returns the number of committed deltas folded in, or `None`
/// when the run needs the escape hatch (a [`DeltaOutcome::Rebuild`] or
/// an application error) — the caller then re-runs the lens `get` and
/// counts a rebuild; nothing from the run survives.
pub(crate) fn drain_into_window<'a>(
    lens: &DeltaLens<Table, Table, Delta>,
    pending: impl IntoIterator<Item = &'a Delta>,
    window: &mut Table,
) -> Option<u64> {
    let mut view_deltas = Vec::new();
    for delta in pending {
        match lens.get_delta(delta) {
            DeltaOutcome::View(view_delta) => view_deltas.push(view_delta),
            DeltaOutcome::Rebuild => return None,
        }
    }
    let drained = view_deltas.len() as u64;
    let key_idx = window.schema().key_indices();
    let combined = Delta::coalesce(view_deltas, &key_idx);
    match combined.apply_in_place(window) {
        Ok(()) => Some(drained),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_relational::ViewDef;
    use esm_store::{row, Database, Operand, Predicate, Schema, Table, ValueType};

    fn engine() -> EngineServer {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("grp", ValueType::Str),
                ("n", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a", 10], row![2, "b", 20]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        EngineServer::new(db)
    }

    #[test]
    fn handles_route_to_their_view() {
        let e = engine();
        let a = e
            .define_view(
                "a",
                "t",
                &ViewDef::base().select(Predicate::eq(Operand::col("grp"), Operand::val("a"))),
            )
            .unwrap();
        assert_eq!(a.name(), "a");
        assert_eq!(a.get().unwrap().len(), 1);

        let delta = a
            .edit(|v| Ok(v.upsert(row![3, "a", 30]).map(|_| ())?))
            .unwrap();
        assert_eq!(delta.inserted.len(), 1);
        assert_eq!(a.get().unwrap().len(), 2);

        // A second handle to the same engine sees the write immediately.
        let again = e.view("a").unwrap();
        assert_eq!(again.get().unwrap().len(), 2);
    }

    #[test]
    fn put_reports_the_base_delta() {
        let e = engine();
        let all = e.define_view("all", "t", &ViewDef::base()).unwrap();
        let mut v = all.get().unwrap();
        v.delete_by_key(&row![2]);
        let delta = all.put(v).unwrap();
        assert_eq!(delta.deleted, vec![row![2, "b", 20]]);
        assert_eq!(all.server().unwrap().wal().len(), 1);
        assert!(all.sharded_server().is_none());
    }
}
