//! WAL segment files: append-only chunks of the durable log.
//!
//! A segment is a file named `wal-<first_seq, zero-padded>.seg` holding
//! consecutive [`WalRecord`]s, each wrapped in a CRC frame. Two frame
//! formats coexist, dispatched per frame on the first byte:
//!
//! * **Binary** (what new segments are written in) — first byte is the
//!   magic `0xB5`, which no text frame can start with:
//!
//!   ```text
//!   [0xB5][payload len: u32 LE][crc32 of payload: u32 LE][payload]
//!   ```
//!
//!   The payload is one record in the binary WAL codec: a tag byte
//!   (`0` delta, `1` chained delta, `2` prepare, `3` resolve), the
//!   `seq` as a `u64` LE, then the variant's fields (strings length-
//!   prefixed, rows in the `esm-store` binary row codec).
//!
//! * **Text** (legacy, still fully decodable for recovery of segments
//!   written before the binary codec) — first byte is `=`:
//!
//!   ```text
//!   =<payload bytes> <crc32 of payload, 8 hex digits>\n
//!   <record in the WAL text format (see crate::wal)>
//!   ```
//!
//! The durable log is the concatenation of all segments in name order;
//! rotation starts a fresh file once the current one passes the size
//! threshold, so checkpoint-covered history can be dropped file-by-file
//! (compaction) instead of rewriting one giant log.
//!
//! ## Crash tolerance vs bit rot
//!
//! The frame separates two very different failure modes:
//!
//! * **Torn tail** (a crash): the byte stream simply *stops* — inside a
//!   frame header, mid-payload, even mid-code-point. Everything before
//!   the incomplete frame is intact; [`decode_segment_prefix`] reports
//!   the complete-record prefix with `torn = true` and recovery truncates
//!   the tail. Crashes only ever shorten the stream, so a torn tail is
//!   always the *last* thing in a segment.
//! * **Corruption** (bit rot, a lying disk): a frame is *complete* but
//!   its payload no longer matches its CRC32 — or the frame header
//!   itself is garbled mid-stream. That is not a crash artifact; silently
//!   truncating would discard committed records. The decode reports it in
//!   `corrupt` and recovery refuses the directory
//!   ([`crate::plan_recovery`] surfaces
//!   [`EngineError::WalCorrupt`](crate::EngineError::WalCorrupt)).
//!
//! The crash-recovery suite drives truncation at every byte offset of a
//! recorded run (always classified torn, never corrupt) and flips bytes
//! mid-stream (always corrupt, never silently dropped).
//!
//! ## Fault injection
//!
//! [`SegmentFile`] abstracts the byte sink so tests can swap the real
//! [`DiskFile`] for a [`SimFile`]: an in-memory file that only makes
//! bytes durable on `sync`, can tear a sync partway through, and exposes
//! exactly what would survive a crash.

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use esm_obs::{Phase, Span, Telemetry};
use esm_store::{codec, Delta};

use crate::error::EngineError;
use crate::wal::{decode_header, decode_row_line, HeaderLine, WalOp, WalRecord};

/// Filename extension of WAL segment files.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// The file name of the segment whose first record is `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}{SEGMENT_SUFFIX}")
}

/// Parse a segment file name back to its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven, built at compile time).
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice — the per-record checksum in the segment
/// framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encode one record with its *text* segment frame (`=<len> <crc>\n` +
/// record text) — the legacy format, exposed so tests and tools can
/// hand-build old-style segment files and prove recovery still reads
/// them. New segments are written with [`encode_framed_binary`].
pub fn encode_framed(record: &WalRecord) -> String {
    let text = record.encode();
    format!("={} {:08x}\n{}", text.len(), crc32(text.as_bytes()), text)
}

/// First byte of a binary segment frame. Text frames start with `=`
/// (0x3D) and every text payload is ASCII, so the magic unambiguously
/// selects the decoder per frame — segments may mix formats freely.
pub const BINARY_FRAME_MAGIC: u8 = 0xB5;

/// Bytes in a binary frame header: magic, payload len (u32 LE), crc32
/// (u32 LE).
const BINARY_HEADER_BYTES: usize = 9;

const REC_DELTA: u8 = 0;
const REC_CHAINED: u8 = 1;
const REC_PREPARE: u8 = 2;
const REC_RESOLVE: u8 = 3;

/// Encode one record's binary payload (tag, seq, fields) — the bytes a
/// binary frame's CRC covers.
pub fn encode_record_binary(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &record.op {
        WalOp::Delta {
            table,
            delta,
            chained,
        } => {
            out.push(if *chained { REC_CHAINED } else { REC_DELTA });
            codec::put_u64(&mut out, record.seq);
            codec::put_str(&mut out, table);
            codec::put_u32(&mut out, delta.inserted.len() as u32);
            codec::put_u32(&mut out, delta.deleted.len() as u32);
            for row in &delta.inserted {
                codec::put_row(&mut out, row);
            }
            for row in &delta.deleted {
                codec::put_row(&mut out, row);
            }
        }
        WalOp::Prepare { gtx, records } => {
            out.push(REC_PREPARE);
            codec::put_u64(&mut out, record.seq);
            codec::put_str(&mut out, gtx);
            codec::put_u64(&mut out, *records);
        }
        WalOp::Resolve { gtx, committed } => {
            out.push(REC_RESOLVE);
            codec::put_u64(&mut out, record.seq);
            codec::put_str(&mut out, gtx);
            out.push(u8::from(*committed));
        }
    }
    out
}

/// Decode one binary record payload produced by [`encode_record_binary`].
pub fn decode_record_binary(payload: &[u8]) -> Result<WalRecord, EngineError> {
    let mut r = codec::BinReader::new(payload);
    let rot = |e: esm_store::StoreError| EngineError::WalCorrupt(e.to_string());
    let tag = r.u8().map_err(rot)?;
    let seq = r.u64().map_err(rot)?;
    let record = match tag {
        REC_DELTA | REC_CHAINED => {
            let table = r.str().map_err(rot)?;
            let ins = r.u32().map_err(rot)? as usize;
            let del = r.u32().map_err(rot)? as usize;
            let mut delta = Delta::empty();
            for _ in 0..ins {
                delta.inserted.push(r.row().map_err(rot)?);
            }
            for _ in 0..del {
                delta.deleted.push(r.row().map_err(rot)?);
            }
            if tag == REC_CHAINED {
                WalRecord::chained(seq, table, delta)
            } else {
                WalRecord::delta(seq, table, delta)
            }
        }
        REC_PREPARE => {
            let gtx = r.str().map_err(rot)?;
            let records = r.u64().map_err(rot)?;
            WalRecord::prepare(seq, gtx, records)
        }
        REC_RESOLVE => {
            let gtx = r.str().map_err(rot)?;
            let committed = match r.u8().map_err(rot)? {
                0 => false,
                1 => true,
                b => {
                    return Err(EngineError::WalCorrupt(format!(
                        "bad resolve verdict byte {b}"
                    )))
                }
            };
            WalRecord::resolve(seq, gtx, committed)
        }
        tag => {
            return Err(EngineError::WalCorrupt(format!(
                "unknown binary record tag {tag}"
            )))
        }
    };
    r.end().map_err(rot)?;
    Ok(record)
}

/// Encode one record with its binary segment frame — exactly the bytes
/// [`SegmentWriter::append`] writes.
pub fn encode_framed_binary(record: &WalRecord) -> Vec<u8> {
    let payload = encode_record_binary(record);
    let mut out = Vec::with_capacity(BINARY_HEADER_BYTES + payload.len());
    out.push(BINARY_FRAME_MAGIC);
    codec::put_u32(&mut out, payload.len() as u32);
    codec::put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// An append-only byte sink with explicit durability points.
///
/// `append` buffers; only bytes written before a successful `sync` are
/// guaranteed to survive a crash (the OS may persist more, which recovery
/// tolerates as a torn tail).
pub trait SegmentFile: Send {
    /// Append bytes to the logical end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError>;
    /// Make every appended byte durable.
    fn sync(&mut self) -> Result<(), EngineError>;
}

/// A real segment file on disk.
#[derive(Debug)]
pub struct DiskFile {
    file: std::fs::File,
    /// Live fault-injection knob: extra nanoseconds slept before every
    /// fsync. Shared with whoever configured it
    /// ([`crate::DurabilityConfig::sync_delay_handle`]) so a chaos
    /// harness can raise and drop the delay mid-run.
    sync_delay: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl DiskFile {
    /// Create (truncating) a segment file at `path`.
    pub fn create(path: &Path) -> Result<DiskFile, EngineError> {
        Ok(DiskFile {
            file: std::fs::File::create(path)?,
            sync_delay: None,
        })
    }

    /// Attach a live sync-delay knob (nanos slept before each fsync).
    pub fn set_sync_delay(&mut self, delay: Option<Arc<std::sync::atomic::AtomicU64>>) {
        self.sync_delay = delay;
    }
}

impl SegmentFile for DiskFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), EngineError> {
        if let Some(delay) = &self.sync_delay {
            let ns = delay.load(std::sync::atomic::Ordering::Relaxed);
            if ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(ns));
            }
        }
        self.file.sync_data()?;
        Ok(())
    }
}

/// The observable state of a [`SimFile`]: what is durable, what is only
/// buffered, and how many syncs ran.
#[derive(Debug, Default)]
pub struct SimDisk {
    durable: Vec<u8>,
    buffered: Vec<u8>,
    /// Number of successful syncs.
    pub syncs: u64,
    /// When set, the next sync persists only this many of the buffered
    /// bytes, then fails — a torn write.
    pub tear_next_sync_at: Option<usize>,
    /// When set, every sync stalls this long before persisting — a slow
    /// disk, for telemetry tests that need fsync time to dominate.
    pub sync_delay: Option<std::time::Duration>,
}

impl SimDisk {
    /// The bytes that would survive a crash right now.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.durable.clone()
    }

    /// Bytes appended but not yet durable.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }
}

/// An in-memory [`SegmentFile`] with fault injection, for the
/// crash-recovery test harness. Cloning shares the underlying disk.
#[derive(Debug, Clone, Default)]
pub struct SimFile {
    disk: Arc<Mutex<SimDisk>>,
}

impl SimFile {
    /// A fresh, empty simulated file.
    pub fn new() -> SimFile {
        SimFile::default()
    }

    /// A handle onto the simulated disk, to inject faults and to inspect
    /// durable state after a "crash".
    pub fn disk(&self) -> Arc<Mutex<SimDisk>> {
        Arc::clone(&self.disk)
    }
}

impl SegmentFile for SimFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.disk
            .lock()
            .expect("sim disk lock")
            .buffered
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), EngineError> {
        let mut disk = self.disk.lock().expect("sim disk lock");
        if let Some(delay) = disk.sync_delay {
            std::thread::sleep(delay);
        }
        if let Some(keep) = disk.tear_next_sync_at.take() {
            let keep = keep.min(disk.buffered.len());
            let torn: Vec<u8> = disk.buffered.drain(..keep).collect();
            disk.durable.extend_from_slice(&torn);
            disk.buffered.clear();
            return Err(EngineError::Io("simulated torn sync".into()));
        }
        let buffered = std::mem::take(&mut disk.buffered);
        disk.durable.extend_from_slice(&buffered);
        disk.syncs += 1;
        Ok(())
    }
}

/// An appender onto one segment: frames records with their CRC, counts
/// bytes and unsynced records. Group-commit policy (when to sync) lives
/// with the caller, [`crate::DurableWal`]. With a telemetry handle
/// attached, appends time into [`Phase::CommitWalAppend`] and issued
/// syncs into [`Phase::CommitFsync`] — this is the one place the two
/// costs are cleanly separable, which is what lets the histograms tell
/// a slow disk apart from a fat record.
#[derive(Debug)]
pub struct SegmentWriter<F: SegmentFile> {
    file: F,
    first_seq: u64,
    bytes: u64,
    pending: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl<F: SegmentFile> SegmentWriter<F> {
    /// Start a segment whose first record will be `first_seq`.
    pub fn new(file: F, first_seq: u64) -> SegmentWriter<F> {
        SegmentWriter {
            file,
            first_seq,
            bytes: 0,
            pending: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry registry: appends and syncs start recording
    /// their latency.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.telemetry = telemetry;
    }

    /// Append one framed record (buffered until the next
    /// [`SegmentWriter::sync`]). Returns the appended size in bytes,
    /// frame included.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, EngineError> {
        let span = Span::start();
        let mut tspan = esm_obs::trace::span("commit_wal_append");
        let framed = encode_framed_binary(record);
        self.file.append(&framed)?;
        self.bytes += framed.len() as u64;
        self.pending += 1;
        if let Some(t) = tspan.as_mut() {
            t.set_bytes(framed.len() as u64);
        }
        if let Some(tel) = &self.telemetry {
            tel.record(Phase::CommitWalAppend, span.elapsed_ns());
        }
        Ok(framed.len() as u64)
    }

    /// Sync appended records to durable storage. Returns whether a sync
    /// was actually issued (no-op when nothing is pending).
    pub fn sync(&mut self) -> Result<bool, EngineError> {
        if self.pending == 0 {
            return Ok(false);
        }
        let span = Span::start();
        let _tspan = esm_obs::trace::span("commit_fsync");
        self.file.sync()?;
        if let Some(tel) = &self.telemetry {
            tel.record(Phase::CommitFsync, span.elapsed_ns());
        }
        self.pending = 0;
        Ok(true)
    }

    /// The first sequence number this segment holds.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Bytes appended so far (durable or not).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended since the last sync.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// The result of decoding a (possibly crash-torn, possibly rotten)
/// segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPrefix {
    /// The complete, checksum-valid records, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past each record's frame (so recovery can
    /// truncate a file back to any record boundary).
    pub ends: Vec<usize>,
    /// How many leading bytes those records occupy.
    pub consumed: usize,
    /// Whether bytes past `consumed` remained that look like a crash
    /// artifact (an incomplete trailing frame).
    pub torn: bool,
    /// Set when the bytes past `consumed` are provably *not* a crash
    /// artifact: a complete frame whose payload fails its CRC or does not
    /// parse, or a garbled frame header. Mid-stream bit rot, not a torn
    /// tail — recovery must refuse, not truncate.
    pub corrupt: Option<String>,
}

/// Decode the longest prefix of complete, CRC-valid records from raw
/// segment bytes. Each frame is dispatched on its first byte —
/// [`BINARY_FRAME_MAGIC`] selects the binary decoder, `=` the legacy
/// text decoder — so text and binary frames coexist in one segment.
///
/// A record counts only when its frame header is complete, all its
/// promised payload bytes are present, the payload matches its CRC32 and
/// parses as exactly one record. An *incomplete* trailing frame is
/// reported as `torn` (what a crash leaves behind); a *complete but
/// invalid* frame is reported as `corrupt` (what bit rot leaves behind).
pub fn decode_segment_prefix(bytes: &[u8]) -> SegmentPrefix {
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut consumed = 0usize;
    let mut corrupt = None;
    while consumed < bytes.len() {
        let rest = &bytes[consumed..];
        // Binary frame: magic, u32 len, u32 crc, payload.
        let (payload_start, len, crc) = if rest[0] == BINARY_FRAME_MAGIC {
            if rest.len() < BINARY_HEADER_BYTES {
                break; // incomplete frame header: torn
            }
            let len = u32::from_le_bytes(rest[1..5].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(rest[5..9].try_into().expect("4"));
            (consumed + BINARY_HEADER_BYTES, len, crc)
        } else {
            // Text frame header: `=<len> <crc>\n`, pure ASCII.
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                break; // incomplete frame header: torn
            };
            let header = &rest[..nl];
            let Some((len, crc)) = parse_frame_header(header) else {
                // A complete-but-garbled frame header cannot come from a
                // crash (truncation only shortens); it is rot.
                corrupt = Some(format!(
                    "garbled frame header at byte {consumed}: {:?}",
                    String::from_utf8_lossy(header)
                ));
                break;
            };
            (consumed + nl + 1, len, crc)
        };
        if bytes.len() - payload_start < len {
            break; // incomplete payload: torn
        }
        let binary = bytes[consumed] == BINARY_FRAME_MAGIC;
        let payload = &bytes[payload_start..payload_start + len];
        let actual = crc32(payload);
        if actual != crc {
            corrupt = Some(format!(
                "crc mismatch at byte {payload_start}: frame says {crc:08x}, payload is {actual:08x}"
            ));
            break;
        }
        let parsed = if binary {
            decode_record_binary(payload)
        } else {
            parse_record_payload(payload)
        };
        match parsed {
            Ok(record) => {
                records.push(record);
                consumed = payload_start + len;
                ends.push(consumed);
            }
            Err(e) => {
                // CRC-valid but unparseable: the writer never produced
                // this, so the frame header itself lies — rot.
                corrupt = Some(format!("unparseable framed record: {e}"));
                break;
            }
        }
    }
    let torn = corrupt.is_none() && consumed < bytes.len();
    SegmentPrefix {
        records,
        ends,
        consumed,
        torn,
        corrupt,
    }
}

/// Parse `=<len> <crc-8-hex>` (without the newline).
fn parse_frame_header(header: &[u8]) -> Option<(usize, u32)> {
    let header = std::str::from_utf8(header).ok()?;
    let rest = header.strip_prefix('=')?;
    let (len, crc) = rest.split_once(' ')?;
    if crc.len() != 8 {
        return None;
    }
    Some((len.parse().ok()?, u32::from_str_radix(crc, 16).ok()?))
}

/// Parse a frame payload as exactly one WAL record (header line plus its
/// promised row lines, nothing more).
fn parse_record_payload(payload: &[u8]) -> Result<WalRecord, EngineError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| EngineError::WalCorrupt(format!("invalid UTF-8 payload: {e}")))?;
    let mut cur = 0usize;
    let header = take_line(text, &mut cur)
        .ok_or_else(|| EngineError::WalCorrupt("payload missing header line".into()))?;
    let record = match decode_header(header)? {
        HeaderLine::Delta {
            seq,
            table,
            inserted,
            deleted,
            chained,
        } => {
            let mut delta = Delta::empty();
            for sign in std::iter::repeat_n('+', inserted).chain(std::iter::repeat_n('-', deleted))
            {
                let row = decode_row_line(take_line(text, &mut cur), sign)?;
                if sign == '+' {
                    delta.inserted.push(row);
                } else {
                    delta.deleted.push(row);
                }
            }
            if chained {
                WalRecord::chained(seq, table, delta)
            } else {
                WalRecord::delta(seq, table, delta)
            }
        }
        HeaderLine::Marker(rec) => rec,
    };
    if cur != text.len() {
        return Err(EngineError::WalCorrupt(format!(
            "{} trailing bytes after the framed record",
            text.len() - cur
        )));
    }
    Ok(record)
}

/// The next `\n`-terminated line at `*cur`, advancing past it; `None`
/// when no complete line remains.
fn take_line<'a>(text: &'a str, cur: &mut usize) -> Option<&'a str> {
    let rest = &text[*cur..];
    let end = rest.find('\n')?;
    let line = &rest[..end];
    *cur += end + 1;
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::row;

    fn rec(seq: u64, n: i64) -> WalRecord {
        WalRecord::delta(
            seq,
            "t",
            Delta {
                inserted: vec![row![n, "payload"]],
                deleted: if n % 2 == 0 {
                    vec![row![n - 1, "old"]]
                } else {
                    vec![]
                },
            },
        )
    }

    #[test]
    fn segment_names_round_trip_and_sort() {
        let names: Vec<String> = [1u64, 42, 100, 7_000_000_000]
            .iter()
            .map(|&s| segment_file_name(s))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "zero padding keeps name order == seq order");
        for (i, &s) in [1u64, 42, 100, 7_000_000_000].iter().enumerate() {
            assert_eq!(parse_segment_name(&names[i]), Some(s));
        }
        assert_eq!(parse_segment_name("checkpoint-1.ckpt"), None);
        assert_eq!(parse_segment_name("wal-x.seg"), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn prefix_decode_at_every_byte_is_a_clean_record_prefix() {
        let records: Vec<WalRecord> = (1..=5).map(|i| rec(i, i as i64)).collect();
        let full: String = records.iter().map(encode_framed).collect();
        let bytes = full.as_bytes();
        for cut in 0..=bytes.len() {
            let prefix = decode_segment_prefix(&bytes[..cut]);
            // Truncation is a crash artifact: never classified as rot.
            assert_eq!(prefix.corrupt, None, "cut at {cut}");
            // The decoded records are exactly the complete ones.
            assert_eq!(
                prefix.records,
                records[..prefix.records.len()],
                "cut at {cut}"
            );
            assert!(prefix.consumed <= cut);
            assert_eq!(prefix.torn, prefix.consumed < cut);
            // consumed always sits on a frame boundary.
            let reencoded: String = prefix.records.iter().map(encode_framed).collect();
            assert_eq!(reencoded.len(), prefix.consumed);
            assert_eq!(prefix.ends.last().copied().unwrap_or(0), prefix.consumed);
        }
        // The untruncated stream decodes completely.
        let whole = decode_segment_prefix(bytes);
        assert_eq!(whole.records.len(), 5);
        assert!(!whole.torn);
    }

    #[test]
    fn markers_and_chains_survive_framing() {
        let records = vec![
            WalRecord::chained(1, "t", rec(1, 1).delta_op().unwrap().1.clone()),
            WalRecord::prepare(2, "g1", 1),
            WalRecord::resolve(3, "g1", true),
        ];
        let full: String = records.iter().map(encode_framed).collect();
        let p = decode_segment_prefix(full.as_bytes());
        assert_eq!(p.records, records);
        assert!(!p.torn && p.corrupt.is_none());
    }

    #[test]
    fn binary_frames_round_trip_all_record_kinds() {
        let records = vec![
            rec(1, 1),
            rec(2, 2),
            WalRecord::chained(3, "tab\tle", rec(1, 1).delta_op().unwrap().1.clone()),
            WalRecord::delta(4, "t", Delta::empty()),
            WalRecord::prepare(5, "g1", 2),
            WalRecord::resolve(6, "g1", true),
            WalRecord::resolve(7, "g2", false),
        ];
        let full: Vec<u8> = records.iter().flat_map(encode_framed_binary).collect();
        let p = decode_segment_prefix(&full);
        assert_eq!(p.records, records);
        assert!(!p.torn && p.corrupt.is_none());
    }

    #[test]
    fn binary_prefix_decode_at_every_byte_is_a_clean_record_prefix() {
        let records: Vec<WalRecord> = (1..=5).map(|i| rec(i, i as i64)).collect();
        let bytes: Vec<u8> = records.iter().flat_map(encode_framed_binary).collect();
        for cut in 0..=bytes.len() {
            let prefix = decode_segment_prefix(&bytes[..cut]);
            assert_eq!(prefix.corrupt, None, "cut at {cut}");
            assert_eq!(
                prefix.records,
                records[..prefix.records.len()],
                "cut at {cut}"
            );
            assert!(prefix.consumed <= cut);
            assert_eq!(prefix.torn, prefix.consumed < cut);
            let reencoded: Vec<u8> = prefix
                .records
                .iter()
                .flat_map(encode_framed_binary)
                .collect();
            assert_eq!(reencoded.len(), prefix.consumed);
        }
    }

    #[test]
    fn mixed_text_and_binary_frames_decode_in_one_stream() {
        let records: Vec<WalRecord> = (1..=6).map(|i| rec(i, i as i64)).collect();
        let mut bytes = Vec::new();
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                bytes.extend_from_slice(encode_framed(r).as_bytes());
            } else {
                bytes.extend_from_slice(&encode_framed_binary(r));
            }
        }
        let p = decode_segment_prefix(&bytes);
        assert_eq!(p.records, records);
        assert!(!p.torn && p.corrupt.is_none());
    }

    #[test]
    fn binary_bit_rot_is_corruption_not_a_torn_tail() {
        let clean: Vec<u8> = (1..=3)
            .flat_map(|i| encode_framed_binary(&rec(i, i as i64)))
            .collect();
        // Flip a byte inside the first record's payload.
        let mut rotten = clean.clone();
        rotten[BINARY_HEADER_BYTES + 3] ^= 0x40;
        let p = decode_segment_prefix(&rotten);
        assert!(p.corrupt.is_some(), "flipped payload byte: {p:?}");
        assert!(!p.torn);
        assert!(p.records.is_empty());
        // A CRC-valid payload with an unknown tag is corruption too.
        let mut payload = encode_record_binary(&rec(1, 1));
        payload[0] = 99;
        let mut framed = vec![BINARY_FRAME_MAGIC];
        codec::put_u32(&mut framed, payload.len() as u32);
        codec::put_u32(&mut framed, crc32(&payload));
        framed.extend_from_slice(&payload);
        let p = decode_segment_prefix(&framed);
        assert!(p.corrupt.is_some());
    }

    #[test]
    fn bit_rot_is_corruption_not_a_torn_tail() {
        let full: String = (1..=3).map(|i| encode_framed(&rec(i, i as i64))).collect();
        let clean = full.as_bytes().to_vec();
        // Flip one byte inside the *first* record's payload.
        let hdr_end = clean.iter().position(|&b| b == b'\n').unwrap();
        let mut rotten = clean.clone();
        rotten[hdr_end + 3] ^= 0x40;
        let p = decode_segment_prefix(&rotten);
        assert!(
            p.corrupt.is_some(),
            "a flipped byte must be detected: {p:?}"
        );
        assert!(!p.torn);
        assert!(p.records.is_empty(), "rot cuts the decodable prefix short");
        // Garbling the frame header is corruption too.
        let mut garbled = clean;
        garbled[0] = b'?';
        let p = decode_segment_prefix(&garbled);
        assert!(p.corrupt.is_some());
        assert!(p.records.is_empty());
    }

    #[test]
    fn prefix_decode_survives_split_utf8() {
        let mut bytes = encode_framed(&WalRecord::delta(
            1,
            "t",
            Delta {
                inserted: vec![row![1, "λambda"]],
                deleted: vec![],
            },
        ))
        .into_bytes();
        let full = decode_segment_prefix(&bytes);
        assert_eq!(full.records.len(), 1);
        // Cut inside the 2-byte λ: the whole record is torn, not an error.
        let lambda_pos = bytes.windows(2).position(|w| w == "λ".as_bytes()).unwrap();
        bytes.truncate(lambda_pos + 1);
        let torn = decode_segment_prefix(&bytes);
        assert!(torn.records.is_empty() && torn.torn && torn.corrupt.is_none());
    }

    #[test]
    fn writer_tracks_bytes_and_pending() {
        let mut w = SegmentWriter::new(SimFile::new(), 1);
        let r = rec(1, 1);
        let n = w.append(&r).unwrap();
        assert_eq!(n, encode_framed_binary(&r).len() as u64);
        assert_eq!(w.bytes(), n);
        assert_eq!(w.pending(), 1);
        assert!(w.sync().unwrap());
        assert_eq!(w.pending(), 0);
        assert!(!w.sync().unwrap(), "sync with nothing pending is a no-op");
    }

    #[test]
    fn simfile_loses_unsynced_bytes_on_crash() {
        let file = SimFile::new();
        let disk = file.disk();
        let mut w = SegmentWriter::new(file, 1);
        for i in 1..=10 {
            w.append(&rec(i, i as i64)).unwrap();
            if i % 4 == 0 {
                w.sync().unwrap(); // group commit every 4 records
            }
        }
        // Crash now: only the 8 synced records survive.
        let durable = disk.lock().unwrap().durable_bytes();
        let p = decode_segment_prefix(&durable);
        assert_eq!(p.records.len(), 8);
        assert!(!p.torn, "synced batches end on record boundaries");
        assert_eq!(disk.lock().unwrap().syncs, 2);
        assert!(disk.lock().unwrap().buffered_len() > 0);
    }

    #[test]
    fn simfile_torn_sync_leaves_decodable_prefix() {
        let file = SimFile::new();
        let disk = file.disk();
        let mut w = SegmentWriter::new(file, 1);
        w.append(&rec(1, 1)).unwrap();
        w.append(&rec(2, 2)).unwrap();
        let first_len = encode_framed_binary(&rec(1, 1)).len();
        disk.lock().unwrap().tear_next_sync_at = Some(first_len + 7);
        assert!(matches!(w.sync(), Err(EngineError::Io(_))));
        let durable = disk.lock().unwrap().durable_bytes();
        let p = decode_segment_prefix(&durable);
        assert_eq!(p.records.len(), 1, "only the first record fully landed");
        assert!(p.torn, "the second record's first 7 bytes are a torn tail");
    }
}
