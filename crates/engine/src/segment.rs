//! WAL segment files: append-only chunks of the durable log.
//!
//! A segment is a file named `wal-<first_seq, zero-padded>.seg` holding
//! consecutive [`WalRecord`]s in the WAL text format (see [`crate::wal`]).
//! The durable log is the concatenation of all segments in name order;
//! rotation starts a fresh file once the current one passes the size
//! threshold, so checkpoint-covered history can be dropped file-by-file
//! (compaction) instead of rewriting one giant log.
//!
//! ## Crash tolerance
//!
//! A crash can leave the tail of the newest segment *torn*: a partially
//! written record, a half-flushed line, even a split UTF-8 code point.
//! [`decode_segment_prefix`] therefore decodes the longest prefix of
//! *complete* records — a record counts only when every one of its lines
//! (header + rows) is `\n`-terminated and parses — and reports how many
//! bytes it consumed plus whether torn bytes remained. Recovery truncates
//! the torn tail and continues; the crash-recovery suite drives this at
//! every byte offset of a recorded run.
//!
//! ## Fault injection
//!
//! [`SegmentFile`] abstracts the byte sink so tests can swap the real
//! [`DiskFile`] for a [`SimFile`]: an in-memory file that only makes
//! bytes durable on `sync`, can tear a sync partway through, and exposes
//! exactly what would survive a crash.

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use esm_store::Delta;

use crate::error::EngineError;
use crate::wal::{decode_header, decode_row_line, WalRecord};

/// Filename extension of WAL segment files.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// The file name of the segment whose first record is `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}{SEGMENT_SUFFIX}")
}

/// Parse a segment file name back to its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// An append-only byte sink with explicit durability points.
///
/// `append` buffers; only bytes written before a successful `sync` are
/// guaranteed to survive a crash (the OS may persist more, which recovery
/// tolerates as a torn tail).
pub trait SegmentFile: Send {
    /// Append bytes to the logical end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError>;
    /// Make every appended byte durable.
    fn sync(&mut self) -> Result<(), EngineError>;
}

/// A real segment file on disk.
#[derive(Debug)]
pub struct DiskFile {
    file: std::fs::File,
}

impl DiskFile {
    /// Create (truncating) a segment file at `path`.
    pub fn create(path: &Path) -> Result<DiskFile, EngineError> {
        Ok(DiskFile {
            file: std::fs::File::create(path)?,
        })
    }
}

impl SegmentFile for DiskFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), EngineError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// The observable state of a [`SimFile`]: what is durable, what is only
/// buffered, and how many syncs ran.
#[derive(Debug, Default)]
pub struct SimDisk {
    durable: Vec<u8>,
    buffered: Vec<u8>,
    /// Number of successful syncs.
    pub syncs: u64,
    /// When set, the next sync persists only this many of the buffered
    /// bytes, then fails — a torn write.
    pub tear_next_sync_at: Option<usize>,
}

impl SimDisk {
    /// The bytes that would survive a crash right now.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.durable.clone()
    }

    /// Bytes appended but not yet durable.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }
}

/// An in-memory [`SegmentFile`] with fault injection, for the
/// crash-recovery test harness. Cloning shares the underlying disk.
#[derive(Debug, Clone, Default)]
pub struct SimFile {
    disk: Arc<Mutex<SimDisk>>,
}

impl SimFile {
    /// A fresh, empty simulated file.
    pub fn new() -> SimFile {
        SimFile::default()
    }

    /// A handle onto the simulated disk, to inject faults and to inspect
    /// durable state after a "crash".
    pub fn disk(&self) -> Arc<Mutex<SimDisk>> {
        Arc::clone(&self.disk)
    }
}

impl SegmentFile for SimFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.disk
            .lock()
            .expect("sim disk lock")
            .buffered
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), EngineError> {
        let mut disk = self.disk.lock().expect("sim disk lock");
        if let Some(keep) = disk.tear_next_sync_at.take() {
            let keep = keep.min(disk.buffered.len());
            let torn: Vec<u8> = disk.buffered.drain(..keep).collect();
            disk.durable.extend_from_slice(&torn);
            disk.buffered.clear();
            return Err(EngineError::Io("simulated torn sync".into()));
        }
        let buffered = std::mem::take(&mut disk.buffered);
        disk.durable.extend_from_slice(&buffered);
        disk.syncs += 1;
        Ok(())
    }
}

/// An appender onto one segment: encodes records, counts bytes and
/// unsynced records. Group-commit policy (when to sync) lives with the
/// caller, [`crate::DurableWal`].
#[derive(Debug)]
pub struct SegmentWriter<F: SegmentFile> {
    file: F,
    first_seq: u64,
    bytes: u64,
    pending: usize,
}

impl<F: SegmentFile> SegmentWriter<F> {
    /// Start a segment whose first record will be `first_seq`.
    pub fn new(file: F, first_seq: u64) -> SegmentWriter<F> {
        SegmentWriter {
            file,
            first_seq,
            bytes: 0,
            pending: 0,
        }
    }

    /// Append one record (buffered until the next [`SegmentWriter::sync`]).
    /// Returns the encoded size in bytes.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, EngineError> {
        let text = record.encode();
        self.file.append(text.as_bytes())?;
        self.bytes += text.len() as u64;
        self.pending += 1;
        Ok(text.len() as u64)
    }

    /// Sync appended records to durable storage. Returns whether a sync
    /// was actually issued (no-op when nothing is pending).
    pub fn sync(&mut self) -> Result<bool, EngineError> {
        if self.pending == 0 {
            return Ok(false);
        }
        self.file.sync()?;
        self.pending = 0;
        Ok(true)
    }

    /// The first sequence number this segment holds.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Bytes appended so far (durable or not).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended since the last sync.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// The result of decoding a (possibly crash-torn) segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPrefix {
    /// The complete records, in file order.
    pub records: Vec<WalRecord>,
    /// How many leading bytes those records occupy.
    pub consumed: usize,
    /// Whether bytes past `consumed` remained (a torn tail).
    pub torn: bool,
}

/// Decode the longest prefix of complete records from raw segment bytes.
///
/// A record counts only when its header and every promised row line are
/// present, `\n`-terminated and well-formed; anything after the last
/// complete record — a truncated line, a half-written record, an invalid
/// UTF-8 tail — is reported as torn rather than an error, because that is
/// exactly what a crash mid-write leaves behind.
pub fn decode_segment_prefix(bytes: &[u8]) -> SegmentPrefix {
    let valid = match std::str::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            // A crash can split a multi-byte code point; parse the valid
            // prefix and treat the rest as torn.
            std::str::from_utf8(&bytes[..e.valid_up_to()]).expect("valid_up_to is a boundary")
        }
    };
    let mut records = Vec::new();
    let mut consumed = 0usize;
    loop {
        let mut cur = consumed;
        let Some(header) = take_line(valid, &mut cur) else {
            break;
        };
        let Ok((seq, table, inserted, deleted)) = decode_header(header) else {
            break;
        };
        let mut delta = Delta::empty();
        let mut complete = true;
        for sign in std::iter::repeat_n('+', inserted).chain(std::iter::repeat_n('-', deleted)) {
            match take_line(valid, &mut cur).map(|l| decode_row_line(Some(l), sign)) {
                Some(Ok(row)) => {
                    if sign == '+' {
                        delta.inserted.push(row);
                    } else {
                        delta.deleted.push(row);
                    }
                }
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            break;
        }
        records.push(WalRecord { seq, table, delta });
        consumed = cur;
    }
    SegmentPrefix {
        records,
        consumed,
        torn: consumed < bytes.len(),
    }
}

/// The next `\n`-terminated line at `*cur`, advancing past it; `None`
/// when no complete line remains.
fn take_line<'a>(text: &'a str, cur: &mut usize) -> Option<&'a str> {
    let rest = &text[*cur..];
    let end = rest.find('\n')?;
    let line = &rest[..end];
    *cur += end + 1;
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::row;

    fn rec(seq: u64, n: i64) -> WalRecord {
        WalRecord {
            seq,
            table: "t".into(),
            delta: Delta {
                inserted: vec![row![n, "payload"]],
                deleted: if n % 2 == 0 {
                    vec![row![n - 1, "old"]]
                } else {
                    vec![]
                },
            },
        }
    }

    #[test]
    fn segment_names_round_trip_and_sort() {
        let names: Vec<String> = [1u64, 42, 100, 7_000_000_000]
            .iter()
            .map(|&s| segment_file_name(s))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "zero padding keeps name order == seq order");
        for (i, &s) in [1u64, 42, 100, 7_000_000_000].iter().enumerate() {
            assert_eq!(parse_segment_name(&names[i]), Some(s));
        }
        assert_eq!(parse_segment_name("checkpoint-1.ckpt"), None);
        assert_eq!(parse_segment_name("wal-x.seg"), None);
    }

    #[test]
    fn prefix_decode_at_every_byte_is_a_clean_record_prefix() {
        let records: Vec<WalRecord> = (1..=5).map(|i| rec(i, i as i64)).collect();
        let full: String = records.iter().map(WalRecord::encode).collect();
        let bytes = full.as_bytes();
        for cut in 0..=bytes.len() {
            let prefix = decode_segment_prefix(&bytes[..cut]);
            // The decoded records are exactly the complete ones.
            assert_eq!(
                prefix.records,
                records[..prefix.records.len()],
                "cut at {cut}"
            );
            assert!(prefix.consumed <= cut);
            assert_eq!(prefix.torn, prefix.consumed < cut);
            // consumed always sits on a record boundary.
            let reencoded: String = prefix.records.iter().map(WalRecord::encode).collect();
            assert_eq!(reencoded.len(), prefix.consumed);
        }
        // The untruncated stream decodes completely.
        let whole = decode_segment_prefix(bytes);
        assert_eq!(whole.records.len(), 5);
        assert!(!whole.torn);
    }

    #[test]
    fn prefix_decode_requires_newline_termination() {
        // A row line that is a valid *prefix* of a cell must not count
        // until its newline lands: "s:ab" truncated from "s:abc" parses,
        // so only the terminator proves the record complete.
        let text = "#1 t +1 -0\n+ s:abc";
        let p = decode_segment_prefix(text.as_bytes());
        assert!(p.records.is_empty() && p.torn && p.consumed == 0);
        let p = decode_segment_prefix(format!("{text}\n").as_bytes());
        assert_eq!(p.records.len(), 1);
        assert!(!p.torn);
    }

    #[test]
    fn prefix_decode_survives_split_utf8() {
        let mut bytes = WalRecord {
            seq: 1,
            table: "t".into(),
            delta: Delta {
                inserted: vec![row![1, "λambda"]],
                deleted: vec![],
            },
        }
        .encode()
        .into_bytes();
        let full = decode_segment_prefix(&bytes);
        assert_eq!(full.records.len(), 1);
        // Cut inside the 2-byte λ: the whole record is torn, not an error.
        let lambda_pos = bytes.windows(2).position(|w| w == "λ".as_bytes()).unwrap();
        bytes.truncate(lambda_pos + 1);
        let torn = decode_segment_prefix(&bytes);
        assert!(torn.records.is_empty() && torn.torn);
    }

    #[test]
    fn writer_tracks_bytes_and_pending() {
        let mut w = SegmentWriter::new(SimFile::new(), 1);
        let r = rec(1, 1);
        let n = w.append(&r).unwrap();
        assert_eq!(n, r.encode().len() as u64);
        assert_eq!(w.bytes(), n);
        assert_eq!(w.pending(), 1);
        assert!(w.sync().unwrap());
        assert_eq!(w.pending(), 0);
        assert!(!w.sync().unwrap(), "sync with nothing pending is a no-op");
    }

    #[test]
    fn simfile_loses_unsynced_bytes_on_crash() {
        let file = SimFile::new();
        let disk = file.disk();
        let mut w = SegmentWriter::new(file, 1);
        for i in 1..=10 {
            w.append(&rec(i, i as i64)).unwrap();
            if i % 4 == 0 {
                w.sync().unwrap(); // group commit every 4 records
            }
        }
        // Crash now: only the 8 synced records survive.
        let durable = disk.lock().unwrap().durable_bytes();
        let p = decode_segment_prefix(&durable);
        assert_eq!(p.records.len(), 8);
        assert!(!p.torn, "synced batches end on record boundaries");
        assert_eq!(disk.lock().unwrap().syncs, 2);
        assert!(disk.lock().unwrap().buffered_len() > 0);
    }

    #[test]
    fn simfile_torn_sync_leaves_decodable_prefix() {
        let file = SimFile::new();
        let disk = file.disk();
        let mut w = SegmentWriter::new(file, 1);
        w.append(&rec(1, 1)).unwrap();
        w.append(&rec(2, 2)).unwrap();
        let first_len = rec(1, 1).encode().len();
        disk.lock().unwrap().tear_next_sync_at = Some(first_len + 7);
        assert!(matches!(w.sync(), Err(EngineError::Io(_))));
        let durable = disk.lock().unwrap().durable_bytes();
        let p = decode_segment_prefix(&durable);
        assert_eq!(p.records.len(), 1, "only the first record fully landed");
        assert!(p.torn, "the second record's first 7 bytes are a torn tail");
    }
}
