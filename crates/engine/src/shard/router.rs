//! [`ShardRouter`]: key-range partitioning of the primary-key space.
//!
//! The router holds `n - 1` sorted *split points*; shard `i` owns the
//! half-open key range `[splits[i-1], splits[i])` (unbounded at the
//! edges). Routing a key is a binary search — [`ShardRouter::shard_of`]
//! is a **total function** of the key and the ranges tile the key space,
//! so every key belongs to exactly one shard (the bijection the property
//! suite checks: sorting keys by `(shard, key)` equals sorting by key).
//!
//! Keys are the schema's key projections ([`esm_store::Table::key_of`]),
//! compared with [`esm_store::Value`]'s total order (`Bool < Int <
//! Str`), so one router partitions heterogeneously-keyed tables
//! coherently: each table is cut by the same global key order.

use esm_store::Row;

use crate::error::EngineError;

/// A key-range partitioner: `splits.len() + 1` shards tiling the key
/// space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// Sorted, distinct split points; shard `i` owns `[splits[i-1],
    /// splits[i])`.
    splits: Vec<Row>,
}

impl ShardRouter {
    /// The trivial router: one shard owning every key.
    pub fn single() -> ShardRouter {
        ShardRouter { splits: Vec::new() }
    }

    /// A router from explicit split points; they must be strictly
    /// increasing.
    pub fn from_splits(splits: Vec<Row>) -> Result<ShardRouter, EngineError> {
        if splits.windows(2).any(|w| w[0] >= w[1]) {
            return Err(EngineError::ShardTopology(
                "split points must be strictly increasing".into(),
            ));
        }
        Ok(ShardRouter { splits })
    }

    /// `shards` ranges cutting `[lo, hi)` uniformly on a single integer
    /// key column — the common case for benches and tests.
    pub fn uniform_int(shards: usize, lo: i64, hi: i64) -> Result<ShardRouter, EngineError> {
        if shards == 0 || hi <= lo {
            return Err(EngineError::ShardTopology(format!(
                "uniform_int needs shards >= 1 and lo < hi, got {shards} over [{lo}, {hi})"
            )));
        }
        let width = (hi - lo) / shards as i64;
        if width == 0 {
            return Err(EngineError::ShardTopology(format!(
                "range [{lo}, {hi}) is too narrow for {shards} shards"
            )));
        }
        ShardRouter::from_splits(
            (1..shards as i64)
                .map(|i| vec![esm_store::Value::Int(lo + i * width)])
                .collect(),
        )
    }

    /// Number of shards (always `splits.len() + 1`).
    pub fn shard_count(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning `key`. Total: every key routes somewhere.
    pub fn shard_of(&self, key: &Row) -> usize {
        self.splits
            .partition_point(|split| split.as_slice() <= key.as_slice())
    }

    /// The half-open range `[lo, hi)` shard `shard` owns (`None` =
    /// unbounded on that side).
    pub fn range_of(&self, shard: usize) -> Result<(Option<&Row>, Option<&Row>), EngineError> {
        if shard >= self.shard_count() {
            return Err(EngineError::ShardTopology(format!(
                "no shard {shard}: router has {}",
                self.shard_count()
            )));
        }
        let lo = shard.checked_sub(1).map(|i| &self.splits[i]);
        let hi = self.splits.get(shard);
        Ok((lo, hi))
    }

    /// The contiguous run of shards whose key range can intersect keys
    /// whose *first* component satisfies the given bounds — the pruning
    /// primitive for key-constrained view reads. Returns the inclusive
    /// index range, or `None` when the bounds provably exclude every
    /// shard's range (possible only with contradictory bounds).
    ///
    /// Conservative and total: a shard is skipped only when its split
    /// boundaries *prove* every key it owns falls outside the bounds
    /// (lexicographic order guarantees `k >= split ⟹ k[0] >= split[0]`
    /// and `k < split ⟹ k[0] <= split[0]`), so every key satisfying the
    /// bounds always routes to an included shard. Unbounded sides prune
    /// nothing on that side.
    pub fn shards_in_value_range(
        &self,
        lo: &std::ops::Bound<esm_store::Value>,
        hi: &std::ops::Bound<esm_store::Value>,
    ) -> Option<(usize, usize)> {
        use std::ops::Bound;
        let n = self.shard_count();
        // Walk excluded shards off the low end: shard `i` is out when its
        // upper boundary `splits[i]` shows every owned key's first
        // component is below the lower bound.
        let mut start = 0;
        while start < n {
            let excluded = match (lo, self.splits.get(start)) {
                (Bound::Unbounded, _) | (_, None) => false,
                // Every owned key is `< split`; `split <= [l]` (the row
                // `[l]` is the smallest key whose first component is `l`)
                // proves every owned key's first component is `< l`.
                (Bound::Included(l), Some(split)) => split.as_slice() <= std::slice::from_ref(l),
                (Bound::Excluded(l), Some(split)) => split.first().is_some_and(|f| f <= l),
            };
            if !excluded {
                break;
            }
            start += 1;
        }
        // And off the high end: shard `i` is out when its lower boundary
        // `splits[i - 1]` shows every owned key's first component is
        // above the upper bound.
        let mut end = n - 1;
        while end > 0 {
            let split = &self.splits[end - 1];
            let excluded = match hi {
                Bound::Unbounded => false,
                Bound::Included(h) => split.first().is_some_and(|f| f > h),
                Bound::Excluded(h) => split.first().is_some_and(|f| f >= h),
            };
            if !excluded {
                break;
            }
            end -= 1;
        }
        if start > end {
            None
        } else {
            Some((start, end))
        }
    }

    /// Split the shard owning `at` into two at key `at` (which becomes
    /// the new boundary: the lower half keeps `[lo, at)`, the new shard
    /// takes `[at, hi)`). Returns the index of the new upper shard. `at`
    /// must lie strictly inside the shard's range (it cannot equal an
    /// existing split point).
    pub fn split_at(&mut self, at: Row) -> Result<usize, EngineError> {
        let pos = self.splits.partition_point(|split| *split < at);
        if self.splits.get(pos) == Some(&at) {
            return Err(EngineError::ShardTopology(format!(
                "key {at:?} is already a shard boundary"
            )));
        }
        self.splits.insert(pos, at);
        Ok(pos + 1)
    }

    /// Merge shard `left + 1` into shard `left` (adjacent ranges fuse;
    /// the boundary between them disappears).
    pub fn merge_into(&mut self, left: usize) -> Result<(), EngineError> {
        if left + 1 >= self.shard_count() {
            return Err(EngineError::ShardTopology(format!(
                "cannot merge shard {} into {left}: router has {}",
                left + 1,
                self.shard_count()
            )));
        }
        self.splits.remove(left);
        Ok(())
    }

    /// The split points, sorted (for persistence and diagnostics).
    pub fn splits(&self) -> &[Row] {
        &self.splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::row;

    #[test]
    fn single_router_owns_everything() {
        let r = ShardRouter::single();
        assert_eq!(r.shard_count(), 1);
        assert_eq!(r.shard_of(&row![i64::MIN]), 0);
        assert_eq!(r.shard_of(&row!["zebra"]), 0);
        assert_eq!(r.range_of(0).unwrap(), (None, None));
        assert!(r.range_of(1).is_err());
    }

    #[test]
    fn uniform_int_tiles_the_range() {
        let r = ShardRouter::uniform_int(4, 0, 4000).unwrap();
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.shard_of(&row![-5]), 0);
        assert_eq!(r.shard_of(&row![0]), 0);
        assert_eq!(r.shard_of(&row![999]), 0);
        assert_eq!(r.shard_of(&row![1000]), 1);
        assert_eq!(r.shard_of(&row![2500]), 2);
        assert_eq!(r.shard_of(&row![3000]), 3);
        assert_eq!(r.shard_of(&row![999_999]), 3);
        assert_eq!(
            r.range_of(1).unwrap(),
            (Some(&row![1000]), Some(&row![2000]))
        );
        assert!(ShardRouter::uniform_int(0, 0, 10).is_err());
        assert!(ShardRouter::uniform_int(20, 0, 10).is_err());
    }

    #[test]
    fn from_splits_requires_strict_order() {
        assert!(ShardRouter::from_splits(vec![row![1], row![1]]).is_err());
        assert!(ShardRouter::from_splits(vec![row![2], row![1]]).is_err());
        assert!(ShardRouter::from_splits(vec![row![1], row![2]]).is_ok());
    }

    #[test]
    fn split_and_merge_are_inverse() {
        let mut r = ShardRouter::uniform_int(2, 0, 2000).unwrap();
        let new_idx = r.split_at(row![1500]).unwrap();
        assert_eq!(new_idx, 2);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.shard_of(&row![1499]), 1);
        assert_eq!(r.shard_of(&row![1500]), 2);
        assert!(r.split_at(row![1500]).is_err(), "existing boundary");
        r.merge_into(1).unwrap();
        assert_eq!(r, ShardRouter::uniform_int(2, 0, 2000).unwrap());
        assert!(r.merge_into(1).is_err(), "no right neighbour");
    }

    #[test]
    fn value_ranges_prune_to_a_contiguous_run() {
        use esm_store::Value;
        use std::ops::Bound;
        let r = ShardRouter::uniform_int(4, 0, 4000).unwrap(); // splits 1000, 2000, 3000
        let range = |lo: Bound<i64>, hi: Bound<i64>| {
            r.shards_in_value_range(&lo.map(Value::Int), &hi.map(Value::Int))
        };
        // Unbounded prunes nothing.
        assert_eq!(range(Bound::Unbounded, Bound::Unbounded), Some((0, 3)));
        // A point lands on exactly its shard.
        assert_eq!(
            range(Bound::Included(2500), Bound::Included(2500)),
            Some((2, 2))
        );
        // Boundary values stay conservative: key 1000 lives on shard 1,
        // and keys [1000, …] could extend past the split row, so shard 0
        // is pruned only when provable.
        assert_eq!(
            range(Bound::Included(1000), Bound::Included(1000)),
            Some((1, 1))
        );
        assert_eq!(
            range(Bound::Excluded(999), Bound::Excluded(2001)),
            Some((0, 2)),
            "999 < k can still admit k = 999.5-ish multi-part keys on shard 0's edge"
        );
        // Half-open windows prune one side.
        assert_eq!(range(Bound::Included(3500), Bound::Unbounded), Some((3, 3)));
        assert_eq!(range(Bound::Unbounded, Bound::Excluded(1000)), Some((0, 0)));
        // Contradictory bounds exclude everything.
        assert_eq!(range(Bound::Included(3500), Bound::Included(500)), None);
        // Every routed key is inside its computed run (soundness spot
        // check across the boundary values).
        for k in [0i64, 999, 1000, 1001, 2999, 3000, 3999] {
            let (a, b) = range(Bound::Included(k), Bound::Included(k)).unwrap();
            let s = r.shard_of(&row![k]);
            assert!(a <= s && s <= b, "key {k} routed to {s}, run {a}..={b}");
        }
    }

    #[test]
    fn mixed_type_keys_route_totally() {
        // Value's total order (Bool < Int < Str) makes routing total for
        // any key shape.
        let r = ShardRouter::from_splits(vec![row![0], row!["m"]]).unwrap();
        assert_eq!(r.shard_of(&row![true]), 0); // Bool < Int
        assert_eq!(r.shard_of(&row![5]), 1);
        assert_eq!(r.shard_of(&row!["a"]), 1); // Int < Str < "m"
        assert_eq!(r.shard_of(&row!["z"]), 2);
    }
}
