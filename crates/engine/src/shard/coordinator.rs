//! [`ShardCoordinator`]: two-phase commit across shards, built on the
//! per-shard WAL's prepare/resolve markers.
//!
//! ## Protocol
//!
//! The coordinator write-locks every participant **in shard-index
//! order** (one global lock order — no deadlocks against other
//! coordinators, single-shard committers or the rebalancer) and holds
//! the locks across both phases:
//!
//! 1. **Prepare** — each participant validates first-committer-wins
//!    against its own WAL, then appends its chain of delta records
//!    terminated by a `!prepare <gtx>` marker (buffered, no inline
//!    sync); the participants' WALs are then **fsynced in parallel**,
//!    one scoped thread per shard, so the phase costs the slowest
//!    fsync rather than their sum. The syncs are load-bearing: once
//!    any shard's commit resolution reaches disk, every participant's
//!    prepared chain must already be there, or a crash could surface a
//!    partial transaction.
//! 2. **Resolve** — each participant appends `!resolve commit <gtx>`
//!    and applies its chain.
//!
//! Because the locks are held throughout, no other transaction can
//! observe (or commit between) the phases: the in-doubt window exists
//! only on disk, for crash recovery to settle.
//!
//! ## Crash recovery (presumed abort)
//!
//! A coordinator that dies between the phases leaves each participant's
//! log ending in a prepared-but-unresolved chain. Recovery
//! ([`crate::shard::ShardedEngineServer::recover_with`]) collects every
//! shard's verdict evidence: if **any** shard holds `!resolve commit
//! <gtx>`, the transaction committed — recovery finishes the resolution
//! on the rest; if none does, nothing was acknowledged — recovery
//! appends `!resolve abort` everywhere. Either way every shard lands on
//! the same side: all-or-nothing, deterministically.
//!
//! [`FailPoint`] injects coordinator crashes at the protocol's two
//! dangerous windows so the crash tests can prove exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

use esm_obs::{Phase, Span, Telemetry};
use esm_store::Delta;

use crate::error::EngineError;
use crate::shard::shard::{GroupEnd, Shard, ShardState};

/// Coordinator crash injection, for the recovery test harness. After a
/// failpoint fires the engine instance is wedged mid-protocol (locks
/// released, resolution never written) — exactly a coordinator crash;
/// discard it and recover from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailPoint {
    /// No injected failure (production).
    #[default]
    None,
    /// Die after every participant prepared (and fsynced) but before any
    /// resolution is written: recovery must presume abort everywhere.
    AfterPrepare,
    /// Die after this many participants wrote their commit resolution:
    /// recovery must finish the commit everywhere.
    AfterResolves(usize),
}

/// One participant's share of a cross-shard transaction.
pub(crate) struct Participant<'a> {
    /// Index of the shard in the topology (the lock order).
    pub index: usize,
    /// The shard itself.
    pub shard: &'a Shard,
    /// The WAL seq this transaction's snapshot reflected on this shard.
    pub snap_seq: u64,
    /// Per-table deltas to commit on this shard.
    pub deltas: Vec<(String, Delta)>,
    /// This transaction's key set per table (for first-committer-wins).
    pub keys: std::collections::BTreeMap<String, std::collections::BTreeSet<esm_store::Row>>,
}

/// Issues global transaction ids and runs two-phase commit.
#[derive(Debug, Default)]
pub struct ShardCoordinator {
    next_gtx: AtomicU64,
}

impl ShardCoordinator {
    /// A coordinator whose first transaction id follows `seed` (recovery
    /// seeds this past every recovered id, keeping gtx ids unique per
    /// directory lifetime).
    pub(crate) fn starting_after(seed: u64) -> ShardCoordinator {
        ShardCoordinator {
            next_gtx: AtomicU64::new(seed + 1),
        }
    }

    /// Commit a cross-shard transaction by 2PC. Participants must be
    /// sorted by `index` (the global lock order). On a
    /// first-committer-wins conflict nothing is written and the conflict
    /// error returns to the caller for retry. Returns the gtx id.
    ///
    /// `stamp` is called once, while every participant lock is held,
    /// with no conflicts remaining — its return value is the commit's
    /// position in the engine-wide serialization order.
    ///
    /// With `telemetry`, each participant's prepare append, resolve
    /// append and both fsyncs time into the `Twopc*` phases — one
    /// sample per participant per phase, so the histograms expose the
    /// per-shard cost, not just the transaction total.
    pub(crate) fn commit_cross<R>(
        &self,
        participants: &[Participant<'_>],
        failpoint: FailPoint,
        telemetry: Option<&Telemetry>,
        stamp: impl FnOnce() -> R,
    ) -> Result<(String, R), EngineError> {
        debug_assert!(
            participants.windows(2).all(|w| w[0].index < w[1].index),
            "participants must be locked in index order"
        );
        let gtx = format!("g{}", self.next_gtx.fetch_add(1, Ordering::Relaxed));

        // Lock all participants in index order and hold across both
        // phases.
        let mut guards: Vec<std::sync::RwLockWriteGuard<'_, ShardState>> =
            participants.iter().map(|p| p.shard.write()).collect();

        // With an active trace, each participant gets an *umbrella* span
        // covering its whole share of the protocol; the prepare, fsync
        // and resolve children below parent under it, so the rendered
        // tree groups per shard even though the phases interleave across
        // participants. Within one participant the children are
        // time-disjoint; across participants the umbrellas overlap (the
        // prepare fsyncs run in parallel).
        let trace = esm_obs::trace::current();
        let umbrellas: Option<Vec<esm_obs::SpanGuard>> = trace.as_ref().map(|t| {
            participants
                .iter()
                .map(|p| t.child("twopc_participant", format!("shard:{}", p.index)))
                .collect()
        });
        let under = |i: usize| -> Option<esm_obs::ActiveTrace> {
            match (&trace, &umbrellas) {
                (Some(t), Some(us)) => Some(t.under(us[i].id())),
                _ => None,
            }
        };

        // Validate first-committer-wins on every participant before
        // writing anything anywhere.
        for (p, guard) in participants.iter().zip(guards.iter()) {
            if let Some((table, seq)) = guard.fcw_conflict(p.snap_seq, &p.keys)? {
                return Err(EngineError::Conflict {
                    table,
                    detail: format!(
                        "cross-shard snapshot at seq {} overlaps commit seq {seq} on shard {}",
                        p.snap_seq, p.index
                    ),
                });
            }
        }

        // Phase 1: prepare everywhere (appends deferred — no inline
        // fsync), then fsync all participants in parallel. The appends
        // are cheap buffered writes; the fsyncs dominate and are
        // independent per shard (each its own WAL directory), so running
        // them on scoped threads turns the prepare latency from
        // sum-of-fsyncs into max-of-fsyncs. On an append failure,
        // best-effort abort the shards already prepared (a poisoned
        // shard refuses and recovery will presume abort for it anyway).
        for i in 0..participants.len() {
            let prep_span = Span::start();
            let prep_tspan = under(i).map(|ctx| ctx.child("twopc_prepare", ""));
            let appended = guards[i].append_group(
                &participants[i].deltas,
                GroupEnd::Prepare(gtx.clone()),
                true,
            );
            drop(prep_tspan);
            if let Some(tel) = telemetry {
                tel.record(Phase::TwopcPrepare, prep_span.elapsed_ns());
            }
            if let Err(e) = appended {
                for j in 0..i {
                    let _ = guards[j].resolve(&gtx, false, &participants[j].deltas, false);
                }
                return Err(e);
            }
        }
        let sync_results: Vec<Result<(), EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = guards
                .iter_mut()
                .enumerate()
                .map(|(i, guard)| {
                    let state: &mut ShardState = guard;
                    // The scoped thread has no thread-local trace;
                    // parent its fsync span explicitly under the
                    // participant's umbrella.
                    let ctx = under(i);
                    scope.spawn(move || {
                        let sync_span = Span::start();
                        let sync_tspan = ctx.map(|c| c.child("twopc_fsync", "prepare"));
                        let synced = state.sync();
                        drop(sync_tspan);
                        if let Some(tel) = telemetry {
                            tel.record(Phase::TwopcParticipantFsync, sync_span.elapsed_ns());
                        }
                        synced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("2pc prepare fsync thread panicked"))
                .collect()
        });
        if let Some(first_err) = sync_results.into_iter().find_map(Result::err) {
            // Some prepares may be durable, but no resolution is: write
            // a best-effort abort everywhere so live readers never see
            // the chain; recovery presumes abort for whatever sticks.
            for j in 0..participants.len() {
                let _ = guards[j].resolve(&gtx, false, &participants[j].deltas, false);
            }
            return Err(first_err);
        }
        if failpoint == FailPoint::AfterPrepare {
            return Err(EngineError::Io(format!(
                "failpoint: coordinator crashed after prepare of {gtx}"
            )));
        }

        // The commit point: every participant is prepared and durable.
        let receipt = stamp();

        // Phase 2: resolve-commit, fsync, and apply everywhere. The
        // resolution syncs are load-bearing: a shard whose in-memory
        // in-doubt state is clean must have its resolution *on disk*,
        // because a peer's later checkpoint may compact away that peer's
        // own copy of the verdict — an unsynced resolution here could
        // then flip to presumed-abort at recovery while the checkpointed
        // peer kept the commit. If a crash hits mid-phase, some shards
        // hold a durable commit verdict and recovery finishes the commit
        // on the rest; if it hits before any resolution, recovery
        // presumes abort everywhere — either way all-or-nothing.
        for (i, (p, guard)) in participants.iter().zip(guards.iter_mut()).enumerate() {
            if failpoint == FailPoint::AfterResolves(i) {
                return Err(EngineError::Io(format!(
                    "failpoint: coordinator crashed after {i} resolutions of {gtx}"
                )));
            }
            let resolve_span = Span::start();
            let resolve_tspan = under(i).map(|ctx| ctx.child("twopc_resolve", ""));
            guard.resolve(&gtx, true, &p.deltas, true)?;
            drop(resolve_tspan);
            if let Some(tel) = telemetry {
                tel.record(Phase::TwopcResolve, resolve_span.elapsed_ns());
            }
            let sync_span = Span::start();
            let sync_tspan = under(i).map(|ctx| ctx.child("twopc_fsync", "resolve"));
            guard.sync()?;
            drop(sync_tspan);
            if let Some(tel) = telemetry {
                tel.record(Phase::TwopcParticipantFsync, sync_span.elapsed_ns());
            }
        }
        Ok((gtx, receipt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Database, Schema, Table, ValueType};
    use std::collections::{BTreeMap, BTreeSet};

    fn piece(seed: i64) -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(schema, vec![row![seed, "seed"]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn participant<'a>(index: usize, shard: &'a Shard, id: i64) -> Participant<'a> {
        Participant {
            index,
            shard,
            snap_seq: shard.read().wal.last_seq(),
            deltas: vec![(
                "t".to_string(),
                Delta {
                    inserted: vec![row![id, "x"]],
                    deleted: vec![],
                },
            )],
            keys: BTreeMap::from([("t".to_string(), BTreeSet::from([row![id]]))]),
        }
    }

    #[test]
    fn two_phase_commit_applies_on_all_participants() {
        let a = Shard::new_in_memory(0, piece(0));
        let b = Shard::new_in_memory(1, piece(1000));
        let coord = ShardCoordinator::default();
        let (gtx, stamp) = coord
            .commit_cross(
                &[participant(0, &a, 10), participant(1, &b, 1010)],
                FailPoint::None,
                None,
                || 42u64,
            )
            .unwrap();
        assert_eq!(stamp, 42);
        assert!(gtx.starts_with('g'));
        assert!(a.read().db.table("t").unwrap().contains(&row![10, "x"]));
        assert!(b.read().db.table("t").unwrap().contains(&row![1010, "x"]));
        // Both shard logs replay to their live pieces.
        assert_eq!(a.recovered_database().unwrap(), a.read().db);
        assert_eq!(b.recovered_database().unwrap(), b.read().db);
        // Each log holds chain + prepare + resolve.
        assert_eq!(a.read().wal.len(), 3);
    }

    #[test]
    fn conflicts_abort_before_any_write() {
        let a = Shard::new_in_memory(0, piece(0));
        let b = Shard::new_in_memory(1, piece(1000));
        let coord = ShardCoordinator::default();
        let stale_a = participant(0, &a, 10);
        // Another commit lands on shard a first, touching the same key.
        {
            let mut state = a.write();
            state
                .append_group(&stale_a.deltas.clone(), GroupEnd::Commit, false)
                .unwrap();
        }
        let err = coord
            .commit_cross(
                &[stale_a, participant(1, &b, 1010)],
                FailPoint::None,
                None,
                || (),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Conflict { .. }));
        assert!(b.read().wal.is_empty(), "the clean shard saw no writes");
    }

    #[test]
    fn failpoints_simulate_coordinator_crashes() {
        let a = Shard::new_in_memory(0, piece(0));
        let b = Shard::new_in_memory(1, piece(1000));
        let coord = ShardCoordinator::default();
        let err = coord
            .commit_cross(
                &[participant(0, &a, 10), participant(1, &b, 1010)],
                FailPoint::AfterPrepare,
                None,
                || (),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Io(msg) if msg.contains("failpoint")));
        // Prepared, unresolved, unapplied on both shards.
        assert_eq!(a.read().wal.len(), 2, "chain + prepare");
        assert!(!a.read().db.table("t").unwrap().contains(&row![10, "x"]));
        assert!(!b.read().db.table("t").unwrap().contains(&row![1010, "x"]));
    }

    #[test]
    fn gtx_ids_continue_after_a_seed() {
        let coord = ShardCoordinator::starting_after(41);
        let a = Shard::new_in_memory(0, piece(0));
        let (gtx, _) = coord
            .commit_cross(&[participant(0, &a, 10)], FailPoint::None, None, || ())
            .unwrap();
        assert_eq!(gtx, "g42");
    }
}
