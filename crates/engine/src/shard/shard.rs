//! [`Shard`]: one key range's worth of data, with its own committed
//! [`Database`], in-memory [`Wal`] and (optionally) durable WAL.
//!
//! A shard is the unit of commit parallelism: disjoint single-shard
//! transactions never share a lock, a commit's write-ahead append and
//! apply touch only this shard's state, and the per-shard WAL replays to
//! exactly this shard's live piece (the recovery law, asserted per
//! shard). Cross-shard transactions lock their participants in index
//! order and run two-phase commit over the per-shard WALs (see
//! [`crate::shard::coordinator`]).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use esm_store::{Database, Delta, Row};

use crate::durable::{DurabilityConfig, DurableWal, GroupCommit, RecoveryReport};
use crate::error::EngineError;
use crate::tx::delta_keys;
use crate::wal::{Wal, WalRecord};

/// How a transaction's chain of records on one shard terminates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GroupEnd {
    /// A plain commit: the chain applies immediately.
    Commit,
    /// A 2PC prepare for this global transaction: the chain is held in
    /// doubt until a resolution marker.
    Prepare(String),
}

/// The lock-protected state of one shard.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// This shard's piece of every table (all tables present, possibly
    /// empty — replay needs the schemas).
    pub db: Database,
    /// Committed records since this shard's baseline.
    pub wal: Wal,
    /// The file-backed log, when the engine is durable.
    pub durable: Option<DurableWal>,
    /// The state the in-memory WAL replays over (construction snapshot
    /// or recovery result).
    pub baseline: Database,
}

impl ShardState {
    /// First-committer-wins: does any record committed after `snap_seq`
    /// touch a key in `our_keys`? Markers carry no keys and never
    /// conflict. Returns the conflicting `(table, seq)` if so.
    pub fn fcw_conflict(
        &self,
        snap_seq: u64,
        our_keys: &BTreeMap<String, BTreeSet<Row>>,
    ) -> Result<Option<(String, u64)>, EngineError> {
        // A WAL truncation may have dropped records committed after an
        // old snapshot; conservatively conflict so the caller retries
        // against fresh state instead of validating against a hole.
        if snap_seq < self.wal.start_seq() {
            return Ok(Some((String::new(), self.wal.start_seq())));
        }
        for rec in self.wal.records_after(snap_seq) {
            let Some((rec_table, rec_delta)) = rec.delta_op() else {
                continue;
            };
            if let Some(ours) = our_keys.get(rec_table) {
                let table = self.db.table(rec_table)?;
                if delta_keys(table, rec_delta)
                    .iter()
                    .any(|k| ours.contains(k))
                {
                    return Ok(Some((rec_table.to_string(), rec.seq)));
                }
            }
        }
        Ok(None)
    }

    /// Append one transaction's chain of per-table deltas, write-ahead
    /// first. With [`GroupEnd::Commit`] the chain applies to the live
    /// state; with [`GroupEnd::Prepare`] it stays pending (the durable
    /// log holds it in doubt) until [`ShardState::resolve`].
    ///
    /// With `defer_sync` the durable appends skip their inline fsync:
    /// the caller either syncs explicitly afterwards (the 2PC
    /// coordinator, the rebalancer) or parks on the shard's
    /// [`GroupCommit`] gate (the single-shard commit path).
    ///
    /// Returns the sequence numbers consumed.
    pub fn append_group(
        &mut self,
        deltas: &[(String, Delta)],
        end: GroupEnd,
        defer_sync: bool,
    ) -> Result<std::ops::Range<u64>, EngineError> {
        let first_seq = self.wal.next_seq();
        let mut records: Vec<WalRecord> = Vec::with_capacity(deltas.len() + 1);
        for (i, (table, delta)) in deltas.iter().enumerate() {
            let seq = first_seq + i as u64;
            let chained = i + 1 < deltas.len() || matches!(end, GroupEnd::Prepare(_));
            records.push(if chained {
                WalRecord::chained(seq, table.clone(), delta.clone())
            } else {
                WalRecord::delta(seq, table.clone(), delta.clone())
            });
        }
        if let GroupEnd::Prepare(gtx) = &end {
            records.push(WalRecord::prepare(
                first_seq + deltas.len() as u64,
                gtx.clone(),
                deltas.len() as u64,
            ));
        }
        // Write ahead: the durable log sees every record before anything
        // is applied; an I/O failure publishes nothing here and poisons
        // the durable log (fail-stop, like the unsharded paths).
        if let Some(durable) = self.durable.as_mut() {
            for rec in &records {
                if defer_sync {
                    durable.append_deferred(rec)?;
                } else {
                    durable.append(rec)?;
                }
            }
        }
        let end_seq = first_seq + records.len() as u64;
        for rec in records {
            self.wal
                .push(rec)
                .expect("fresh seqs under the shard lock continue the log");
        }
        if matches!(end, GroupEnd::Commit) {
            for (table, delta) in deltas {
                let next = delta.apply(self.db.table(table)?)?;
                self.db.replace_table(table.clone(), next);
            }
        }
        Ok(first_seq..end_seq)
    }

    /// Append the 2PC resolution for `gtx` and, when committed, apply
    /// its prepared deltas to the live state. The caller (coordinator or
    /// recovery) supplies the prepared chain — the shard does not track
    /// it in memory; the durable log tracks its own copy for crash
    /// safety.
    pub fn resolve(
        &mut self,
        gtx: &str,
        committed: bool,
        deltas: &[(String, Delta)],
        defer_sync: bool,
    ) -> Result<(), EngineError> {
        let seq = self.wal.next_seq();
        let rec = WalRecord::resolve(seq, gtx, committed);
        if let Some(durable) = self.durable.as_mut() {
            if defer_sync {
                durable.append_deferred(&rec)?;
            } else {
                durable.append(&rec)?;
            }
        }
        self.wal
            .push(rec)
            .expect("fresh seq under the shard lock continues the log");
        if committed {
            for (table, delta) in deltas {
                let next = delta.apply(self.db.table(table)?)?;
                self.db.replace_table(table.clone(), next);
            }
        }
        Ok(())
    }

    /// Force-fsync any group-commit batch the durable log is holding
    /// (2PC prepares must be durable before any resolution is written).
    pub fn sync(&mut self) -> Result<(), EngineError> {
        match self.durable.as_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Drop this shard's in-memory WAL prefix at or below `floor`
    /// (additionally capped by the durable checkpoint, so recovery
    /// never depends on records only the dropped prefix held), cut back
    /// to a settled transaction boundary, folding the dropped records
    /// into the replay baseline. Returns how many records were dropped.
    pub fn truncate_wal(&mut self, floor: u64) -> Result<u64, EngineError> {
        let mut floor = floor;
        if let Some(d) = self.durable.as_ref() {
            floor = floor.min(d.checkpoint_seq());
        }
        let floor = floor.min(self.wal.last_seq());
        let cut = self.wal.settled_prefix_end(floor);
        if cut <= self.wal.start_seq() {
            return Ok(0);
        }
        let dropped = self.wal.truncate_through(cut)?;
        let count = dropped.len() as u64;
        self.baseline = Wal::from_records(dropped).replay(&self.baseline)?;
        Ok(count)
    }
}

/// One shard: a stable id plus its rwlock-guarded state. Cloning shares
/// the shard.
#[derive(Clone, Debug)]
pub struct Shard {
    inner: Arc<ShardInner>,
}

#[derive(Debug)]
struct ShardInner {
    id: u64,
    state: RwLock<ShardState>,
    /// Cross-session group-commit gate, present iff the shard is durable
    /// with `group_commit == 1` (the strict per-commit-fsync setting,
    /// where batching across sessions is the only way to share fsyncs;
    /// with `group_commit > 1` the log already batches lazily).
    group: Option<Arc<GroupCommit>>,
    /// Transactions committed through this shard (single-shard commits
    /// plus 2PC participations), read lock-free by the rebalance policy
    /// to compute per-shard commit-rate EWMAs.
    commits: AtomicU64,
}

impl Shard {
    /// An in-memory shard over its piece of the database.
    pub(crate) fn new_in_memory(id: u64, db: Database) -> Shard {
        Shard {
            inner: Arc::new(ShardInner {
                id,
                state: RwLock::new(ShardState {
                    baseline: db.clone(),
                    db,
                    wal: Wal::new(),
                    durable: None,
                }),
                group: None,
                commits: AtomicU64::new(0),
            }),
        }
    }

    /// A durable shard: `db` becomes the genesis checkpoint of a fresh
    /// WAL directory.
    pub(crate) fn create_durable(
        id: u64,
        db: Database,
        cfg: DurabilityConfig,
    ) -> Result<Shard, EngineError> {
        let group = (cfg.group_commit == 1).then(|| Arc::new(GroupCommit::new(0)));
        let durable = DurableWal::create(cfg, &db)?;
        Ok(Shard {
            inner: Arc::new(ShardInner {
                id,
                state: RwLock::new(ShardState {
                    baseline: db.clone(),
                    db,
                    wal: Wal::new(),
                    durable: Some(durable),
                }),
                group,
                commits: AtomicU64::new(0),
            }),
        })
    }

    /// Recover a durable shard from its WAL directory. In-doubt 2PC
    /// chains are *not* applied — they wait in the durable log until the
    /// sharded recovery settles them ([`crate::shard::ShardedEngineServer::recover_with`]).
    pub(crate) fn recover(
        id: u64,
        cfg: DurabilityConfig,
    ) -> Result<(Shard, RecoveryReport), EngineError> {
        let group = (cfg.group_commit == 1).then_some(());
        let (durable, db, report) = DurableWal::open(cfg)?;
        Ok((
            Shard {
                inner: Arc::new(ShardInner {
                    id,
                    state: RwLock::new(ShardState {
                        baseline: db.clone(),
                        db,
                        wal: Wal::starting_at(report.last_seq),
                        durable: Some(durable),
                    }),
                    group: group.map(|()| Arc::new(GroupCommit::new(report.last_seq))),
                    commits: AtomicU64::new(0),
                }),
            },
            report,
        ))
    }

    /// The shard's stable id (survives splits and merges; names its WAL
    /// directory, `shard-<id>`).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Read-lock the shard state.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, ShardState> {
        self.inner.state.read().expect("shard lock poisoned")
    }

    /// Write-lock the shard state.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, ShardState> {
        self.inner.state.write().expect("shard lock poisoned")
    }

    /// Read-lock the shard state without blocking (`None` when busy).
    /// The checkpoint-safety scan uses this out of lock order; a try
    /// never deadlocks, and a busy peer just defers the checkpoint to
    /// the next maintenance tick.
    pub(crate) fn try_read(&self) -> Option<RwLockReadGuard<'_, ShardState>> {
        self.inner.state.try_read().ok()
    }

    /// Whether this shard batches commits through a cross-session
    /// group-commit gate (durable, `group_commit == 1`).
    pub(crate) fn has_group_commit(&self) -> bool {
        self.inner.group.is_some()
    }

    /// Park until every record up to `seq` is fsynced, electing one
    /// waiter as the leader that fsyncs the whole batch (see
    /// [`GroupCommit::wait_durable`]). A no-op when the shard has no
    /// gate. Call *without* holding the shard lock: the leader re-takes
    /// the write lock to sync.
    pub(crate) fn wait_group(&self, seq: u64) -> Result<(), EngineError> {
        let Some(group) = &self.inner.group else {
            return Ok(());
        };
        let tspan = esm_obs::trace::span("group_commit_wait");
        let led = group.wait_durable(seq, || {
            let mut state = self.write();
            let durable = state
                .durable
                .as_mut()
                .expect("the group-commit gate exists only on durable shards");
            let through = durable.last_seq();
            durable.sync()?;
            Ok(through)
        })?;
        if let Some(mut t) = tspan {
            t.set_tag(if led { "leader" } else { "follower" });
        }
        Ok(())
    }

    /// Count one committed transaction against this shard (single-shard
    /// commit or 2PC participation). Lock-free.
    pub(crate) fn note_commit(&self) {
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Transactions committed through this shard since construction.
    pub(crate) fn commit_count(&self) -> u64 {
        self.inner.commits.load(Ordering::Relaxed)
    }

    /// This shard's recovery law: its in-memory WAL replayed over its
    /// baseline equals its live piece (asserted by the suites).
    pub fn recovered_database(&self) -> Result<Database, EngineError> {
        let state = self.read();
        state.wal.replay(&state.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, Table, ValueType};

    fn piece() -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table("t", Table::from_rows(schema, vec![row![1, "a"]]).unwrap())
            .unwrap();
        db
    }

    fn ins(id: i64) -> (String, Delta) {
        (
            "t".to_string(),
            Delta {
                inserted: vec![row![id, format!("r{id}")]],
                deleted: vec![],
            },
        )
    }

    #[test]
    fn commit_groups_apply_and_replay() {
        let shard = Shard::new_in_memory(0, piece());
        {
            let mut state = shard.write();
            state
                .append_group(&[ins(2), ins(3)], GroupEnd::Commit, false)
                .unwrap();
        }
        let state = shard.read();
        assert_eq!(state.db.table("t").unwrap().len(), 3);
        assert_eq!(state.wal.len(), 2);
        drop(state);
        assert_eq!(
            shard.recovered_database().unwrap(),
            shard.read().db,
            "per-shard replay law"
        );
    }

    #[test]
    fn prepared_groups_wait_for_their_resolution() {
        let shard = Shard::new_in_memory(7, piece());
        let deltas = vec![ins(5)];
        {
            let mut state = shard.write();
            state
                .append_group(&deltas, GroupEnd::Prepare("g1".into()), false)
                .unwrap();
            assert_eq!(state.db.table("t").unwrap().len(), 1, "held in doubt");
            state.resolve("g1", true, &deltas, false).unwrap();
            assert_eq!(state.db.table("t").unwrap().len(), 2);
        }
        assert_eq!(shard.recovered_database().unwrap(), shard.read().db);
        // An aborted branch leaves no trace in the live state but stays
        // replayable.
        {
            let mut state = shard.write();
            state
                .append_group(&[ins(9)], GroupEnd::Prepare("g2".into()), false)
                .unwrap();
            state.resolve("g2", false, &[ins(9)], false).unwrap();
            assert_eq!(state.db.table("t").unwrap().len(), 2);
        }
        assert_eq!(shard.recovered_database().unwrap(), shard.read().db);
    }

    #[test]
    fn fcw_sees_only_delta_records() {
        let shard = Shard::new_in_memory(0, piece());
        let mut state = shard.write();
        let snap = state.wal.last_seq();
        state
            .append_group(&[ins(2)], GroupEnd::Prepare("g".into()), false)
            .unwrap();
        state.resolve("g", true, &[ins(2)], false).unwrap();
        let overlapping: BTreeMap<String, BTreeSet<Row>> =
            BTreeMap::from([("t".to_string(), BTreeSet::from([row![2]]))]);
        let disjoint: BTreeMap<String, BTreeSet<Row>> =
            BTreeMap::from([("t".to_string(), BTreeSet::from([row![99]]))]);
        assert!(state.fcw_conflict(snap, &overlapping).unwrap().is_some());
        assert!(state.fcw_conflict(snap, &disjoint).unwrap().is_none());
    }
}
