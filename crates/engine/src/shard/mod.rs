//! Key-range sharding: many shards, one engine.
//!
//! [`ShardedEngineServer`] partitions every table across N [`Shard`]s by
//! primary-key range ([`ShardRouter`]). Each shard owns its own
//! committed [`esm_store::Database`] piece, in-memory WAL and
//! (optionally) durable segment log, so the commit pipeline scales with
//! the shard count:
//!
//! * **Single-shard fast path** — a transaction whose keys all route to
//!   one shard commits under that shard's lock alone: no coordination,
//!   one WAL, one fsync cadence. Disjoint traffic on different shards
//!   never shares a lock *or* a log.
//! * **Cross-shard transactions** — two-phase commit over the per-shard
//!   WALs ([`coordinator`]): prepare markers land (fsynced) on every
//!   participant before any resolution, and recovery settles in-doubt
//!   transactions deterministically by scanning all shard logs (any
//!   commit marker anywhere → commit everywhere; none → presumed
//!   abort).
//! * **Online rebalancing** — [`rebalance`]: split a hot shard at a key
//!   (draining the upper range into a fresh shard under a brief write
//!   fence) or merge adjacent shards, while other shards keep
//!   committing.
//!
//! Clients stay routing-oblivious: [`ShardedEngineServer::define_view`]
//! hands out the same [`crate::EntangledView`] handles the unsharded
//! engine does, and `get`/`put`/`edit` route (and coordinate) per key
//! under the hood.
//!
//! ## Durable layout
//!
//! ```text
//! base-dir/
//!   topology.esm          shard ids + split points (atomic rewrite)
//!   shard-0/              one durable WAL directory per shard
//!     checkpoint-…ckpt
//!     wal-…seg
//!   shard-1/…
//! ```
//!
//! The topology file is rewritten atomically on every split/merge;
//! recovery reads it, recovers each shard directory, settles in-doubt
//! 2PC transactions, prunes rows a half-finished rebalance left outside
//! their shard's range, and sweeps shard directories a crashed split
//! never published.

pub mod coordinator;
pub mod rebalance;
pub mod router;
#[allow(clippy::module_inception)]
pub mod shard;

pub use coordinator::{FailPoint, ShardCoordinator};
pub use router::ShardRouter;
pub use shard::Shard;

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use esm_lens::DeltaLens;
use esm_obs::{Phase, Span, Telemetry, TelemetrySnapshot};
use esm_relational::ViewDef;
use esm_store::{Database, Delta, Row, Schema, Table, Value};

use crate::checkpoint::write_atomic_text;
use crate::durable::{checkpoint_off_lock, DurabilityConfig, MaintenanceThread, RecoveryReport};
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot, ShardLoad, ShardMetrics, WalStats};
use crate::sub::{CommitNotifier, ViewDeltas};
use crate::view::EntangledView;
use crate::wal::{check_table_names, committed_table_deltas, Wal};

use self::coordinator::Participant;
use self::shard::GroupEnd;

/// File name of the topology manifest inside a sharded base directory.
pub const TOPOLOGY_FILE: &str = "topology.esm";

/// The mutable shard layout: the router and the shards it indexes, kept
/// in lockstep (`router.shard_count() == shards.len()`, range `i` ↔
/// `shards[i]`).
#[derive(Debug)]
pub(crate) struct Topology {
    pub router: ShardRouter,
    pub shards: Vec<Shard>,
    /// Bumped by every split/merge under the topology write lock.
    /// Materialized view windows remember the epoch they were built
    /// against; a mismatch invalidates them (shard WAL cursors do not
    /// survive a layout change).
    pub epoch: u64,
}

pub use crate::engine::CommitReceipt;

/// What a sharded recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct ShardRecoveryReport {
    /// Per-shard recovery reports, in topology order.
    pub shards: Vec<RecoveryReport>,
    /// Per-shard in-doubt settlements resolved as committed (some shard
    /// held a commit resolution). Counts shard-side chains, not distinct
    /// transactions: one cross-shard transaction left in doubt on `k`
    /// shards contributes `k`.
    pub committed_in_doubt: u64,
    /// Per-shard in-doubt settlements resolved as aborted (presumed
    /// abort: no shard held a commit resolution). Same per-shard
    /// counting unit as `committed_in_doubt`.
    pub aborted_in_doubt: u64,
    /// Rows pruned because a half-finished rebalance left them outside
    /// their shard's key range.
    pub repaired_rows: u64,
    /// Orphan `shard-*` directories swept (created by a split that
    /// crashed before publishing its topology).
    pub orphan_dirs_swept: u64,
}

struct ViewReg {
    table: String,
    lens: DeltaLens<Table, Table, Delta>,
    /// The tightest first-key-component bounds the view definition's
    /// base-schema selects imply: the pruning hint for reads and writes.
    bounds: (Bound<Value>, Bound<Value>),
    /// The view's output schema (for assembling an empty result when the
    /// bounds prune every shard).
    schema: Schema,
    /// Per-shard materialized windows, built lazily on first read and
    /// invalidated by topology epoch changes. Lock order is always view
    /// windows → topology → shard locks.
    mat: Mutex<Option<ShardedMat>>,
}

/// A sharded view's materialized state: one window per in-range shard,
/// each with the shard-WAL position it reflects.
struct ShardedMat {
    /// The topology epoch the windows were built against.
    epoch: u64,
    /// Windows aligned with the pruned shard run (recomputed per read
    /// from the router and the view bounds; stable within an epoch).
    windows: Vec<Window>,
}

struct Window {
    table: Table,
    applied_seq: u64,
}

pub(crate) struct ShardedInner {
    pub(crate) topology: Arc<RwLock<Topology>>,
    views: RwLock<BTreeMap<String, ViewReg>>,
    pub(crate) coordinator: ShardCoordinator,
    stamp: AtomicU64,
    /// Commit signal for push pumps: every settled commit publishes its
    /// global stamp here (see [`crate::sub::CommitNotifier`]).
    notifier: Arc<CommitNotifier>,
    pub(crate) metrics: Metrics,
    pub(crate) shard_metrics: ShardMetrics,
    /// Base durability config (dir = the base directory); `None` for
    /// in-memory engines. Shard `id` logs into `dir/shard-<id>`.
    pub(crate) durable_base: Option<DurabilityConfig>,
    pub(crate) next_shard_id: AtomicU64,
    /// Phase-latency histograms + slow-op ring, shared with every
    /// shard's durable WAL (and handed to shards created later by the
    /// rebalancer).
    pub(crate) telemetry: Arc<Telemetry>,
    /// The address this engine tells redirected writers to retry
    /// against (set by the serving layer after bind; shipped to
    /// replicas in the manifest so their `NotPrimary` errors carry it).
    pub(crate) advertised: Mutex<Option<String>>,
    /// The rebalance policy thread's latest per-shard load view
    /// (rows, cumulative commits, commit-rate EWMA). Folded into
    /// [`ShardedEngineServer::metrics`] so `STATS` exports it without
    /// new locks on the commit path.
    pub(crate) shard_load: Mutex<Vec<ShardLoad>>,
    _maintenance: Option<MaintenanceThread>,
}

/// A concurrent, transactional, bidirectional engine whose tables are
/// partitioned across shards by key range. Clone the handle freely:
/// clones share state.
#[derive(Clone)]
pub struct ShardedEngineServer {
    pub(crate) inner: Arc<ShardedInner>,
}

/// Split `db` into per-shard pieces: every shard holds every table (with
/// its schema), each row living on the shard its key routes to. Each
/// table is cut with [`Table::split_off_key`] at the router's split
/// points — one O(log n) tree split per boundary instead of routing
/// row by row.
fn partition(db: &Database, router: &ShardRouter) -> Result<Vec<Database>, EngineError> {
    let mut pieces: Vec<Database> = (0..router.shard_count()).map(|_| Database::new()).collect();
    for name in db.table_names() {
        let mut remaining = db.table(name)?.clone();
        for (i, split) in router.splits().iter().enumerate().rev() {
            let upper = remaining.split_off_key(split);
            pieces[i + 1].replace_table(name.to_string(), upper);
        }
        pieces[0].replace_table(name.to_string(), remaining);
    }
    Ok(pieces)
}

/// Merge shard pieces into one database (shards hold disjoint keys, so
/// upserts never collide).
pub(crate) fn assemble(pieces: impl Iterator<Item = Database>) -> Result<Database, EngineError> {
    let mut out = Database::new();
    for piece in pieces {
        for name in piece.table_names() {
            let table = piece.table(name)?;
            if out.table(name).is_err() {
                out.replace_table(name.to_string(), table.clone());
            } else {
                let merged = out.table_mut(name)?;
                for row in table.rows() {
                    merged.upsert(row.clone())?;
                }
            }
        }
    }
    Ok(out)
}

/// May shard `index` checkpoint right now? Only when no *peer* shard is
/// poisoned or holds an in-doubt 2PC chain: a checkpoint compacts
/// history, and the `!resolve commit` record it could compact away may
/// be the only durable evidence recovery has for settling a peer's
/// in-doubt transaction. Peers are inspected with try-locks (never
/// blocking out of lock order — no deadlock against a coordinator); a
/// busy peer conservatively answers "not safe", deferring to the next
/// maintenance tick. The caller holds `index`'s write lock, so every
/// 2PC this shard participated in has fully finished and its peers'
/// poison/in-doubt state is visible.
fn shards_safe_to_checkpoint(shards: &[Shard], index: usize) -> bool {
    shards.iter().enumerate().all(|(j, shard)| {
        if j == index {
            return true; // own state is covered by needs/begin_checkpoint
        }
        match shard.try_read() {
            Some(state) => state
                .durable
                .as_ref()
                .is_none_or(|d| !d.is_poisoned() && d.in_doubt().is_empty()),
            None => false,
        }
    })
}

/// Checkpoint shard `index` with the file write outside its lock.
/// `force = false` is the maintenance path (only when due, silently
/// skipped when unsafe); `force = true` is the explicit path (always,
/// but still *refusing* — with an error — while a peer holds unresolved
/// 2PC state). Returns `None` for in-memory shards and skipped
/// maintenance passes.
fn checkpoint_shard(
    shards: &[Shard],
    index: usize,
    force: bool,
) -> Result<Option<u64>, EngineError> {
    checkpoint_off_lock(
        || {
            let mut state = shards[index].write();
            let Some(durable) = state.durable.as_mut() else {
                return Ok(None);
            };
            if !force && !durable.needs_checkpoint() {
                return Ok(None);
            }
            if !shards_safe_to_checkpoint(shards, index) {
                return if force {
                    Err(EngineError::Io(
                        "checkpoint refused: a peer shard is poisoned or holds \
                         in-doubt 2PC state whose evidence compaction could destroy"
                            .into(),
                    ))
                } else {
                    Ok(None)
                };
            }
            Ok(Some((
                durable.begin_checkpoint()?,
                durable.checkpoint_dir(),
            )))
        },
        |seq| {
            let mut state = shards[index].write();
            match state.durable.as_mut() {
                Some(durable) => durable.finish_checkpoint(seq),
                None => Ok(seq),
            }
        },
    )
}

/// The per-shard durability config for shard `id` under `base`.
pub(crate) fn shard_config(base: &DurabilityConfig, id: u64) -> DurabilityConfig {
    let mut cfg = base.clone();
    cfg.dir = base.dir.join(format!("shard-{id}"));
    cfg
}

impl ShardedEngineServer {
    // ------------------------------------------------------------------
    // Construction.
    // ------------------------------------------------------------------

    /// An in-memory sharded engine over `db`, cut into (up to) `shards`
    /// ranges at key quantiles of the existing data. Use
    /// [`ShardedEngineServer::with_router`] to control the split points.
    pub fn new(db: Database, shards: usize) -> Result<ShardedEngineServer, EngineError> {
        ShardedEngineServer::with_router(db.clone(), quantile_router(&db, shards))
    }

    /// An in-memory sharded engine with explicit split points.
    pub fn with_router(
        db: Database,
        router: ShardRouter,
    ) -> Result<ShardedEngineServer, EngineError> {
        check_table_names(&db)?;
        let pieces = partition(&db, &router)?;
        let shards: Vec<Shard> = pieces
            .into_iter()
            .enumerate()
            .map(|(i, piece)| Shard::new_in_memory(i as u64, piece))
            .collect();
        Ok(ShardedEngineServer::from_parts(
            router,
            shards,
            None,
            ShardCoordinator::default(),
        ))
    }

    /// A durable sharded engine: `config.dir` becomes the base
    /// directory, each shard logs into `shard-<id>/` within it, and the
    /// topology manifest is written atomically. Refuses a directory that
    /// already holds a topology — recover it instead.
    pub fn with_durability(
        db: Database,
        router: ShardRouter,
        config: DurabilityConfig,
    ) -> Result<ShardedEngineServer, EngineError> {
        check_table_names(&db)?;
        std::fs::create_dir_all(&config.dir)?;
        if config.dir.join(TOPOLOGY_FILE).exists() {
            return Err(EngineError::Io(format!(
                "{} already holds a sharded engine; recover it instead of re-creating",
                config.dir.display()
            )));
        }
        let pieces = partition(&db, &router)?;
        let mut shards = Vec::with_capacity(pieces.len());
        for (i, piece) in pieces.into_iter().enumerate() {
            shards.push(Shard::create_durable(
                i as u64,
                piece,
                shard_config(&config, i as u64),
            )?);
        }
        let ids: Vec<u64> = shards.iter().map(Shard::id).collect();
        write_topology(&config.dir, shards.len() as u64, &router, &ids)?;
        Ok(ShardedEngineServer::from_parts(
            router,
            shards,
            Some(config),
            ShardCoordinator::default(),
        ))
    }

    /// Recover a sharded engine from its base directory with default
    /// durability tuning; see [`ShardedEngineServer::recover_with`].
    pub fn recover(
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(ShardedEngineServer, ShardRecoveryReport), EngineError> {
        ShardedEngineServer::recover_with(DurabilityConfig::new(dir))
    }

    /// Recover a sharded engine: read the topology manifest, recover
    /// every shard's WAL directory, then settle what a crash left
    /// half-done —
    ///
    /// 1. **In-doubt 2PC transactions**: committed iff *any* shard's log
    ///    holds a `!resolve commit` for the gtx (the coordinator never
    ///    writes one before every participant's prepare is fsynced);
    ///    otherwise presumed aborted. The missing resolutions are
    ///    appended to every affected shard, so the logs self-heal and
    ///    every shard lands on the same side — all-or-nothing.
    /// 2. **Rebalance debris**: rows outside their shard's key range
    ///    (a split/merge that crashed between moving data and updating
    ///    the topology) are pruned with a logged repair delta, and
    ///    orphan `shard-*` directories the topology never published are
    ///    swept.
    pub fn recover_with(
        config: DurabilityConfig,
    ) -> Result<(ShardedEngineServer, ShardRecoveryReport), EngineError> {
        let (next_id, router, ids) = read_topology(&config.dir)?;
        let mut report = ShardRecoveryReport::default();

        // Sweep shard directories the topology never published (a split
        // that crashed before its atomic topology rewrite never
        // happened; its half-built directory must not linger to collide
        // with a future split reusing the id).
        let known: BTreeSet<u64> = ids.iter().copied().collect();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            if !known.contains(&id) {
                std::fs::remove_dir_all(entry.path())?;
                report.orphan_dirs_swept += 1;
            }
        }

        let mut shards = Vec::with_capacity(ids.len());
        let mut in_doubt: Vec<BTreeMap<String, Vec<(String, Delta)>>> = Vec::new();
        let mut verdicts: BTreeMap<String, bool> = BTreeMap::new();
        let mut max_gtx = 0u64;
        for &id in &ids {
            let (shard, shard_report) = Shard::recover(id, shard_config(&config, id))?;
            {
                let state = shard.read();
                let durable = state.durable.as_ref().expect("recovered shards persist");
                in_doubt.push(durable.in_doubt().clone());
                for (gtx, committed) in durable.recovered_resolutions() {
                    // A commit verdict anywhere wins over aborts
                    // elsewhere (abort resolutions are only written by a
                    // coordinator that never reached its commit point).
                    let entry = verdicts.entry(gtx.clone()).or_insert(*committed);
                    *entry = *entry || *committed;
                    max_gtx = max_gtx.max(parse_gtx(gtx));
                }
                for gtx in durable.in_doubt().keys() {
                    max_gtx = max_gtx.max(parse_gtx(gtx));
                }
            }
            report.shards.push(shard_report);
            shards.push(shard);
        }

        // Settle in-doubt transactions: any commit resolution anywhere →
        // commit everywhere; none → presumed abort everywhere.
        let metrics = ShardMetrics::default();
        for (shard, doubts) in shards.iter().zip(in_doubt) {
            for (gtx, group) in doubts {
                let committed = verdicts.get(&gtx).copied().unwrap_or(false);
                let mut state = shard.write();
                state.resolve(&gtx, committed, &group, true)?;
                // The settled state is the shard's post-recovery
                // baseline: its in-memory WAL starts *after* the
                // resolution we just appended.
                state.baseline = state.db.clone();
                state.wal = Wal::starting_at(state.wal.last_seq());
                drop(state);
                if committed {
                    metrics.recovery_commit();
                } else {
                    metrics.recovery_abort();
                }
            }
        }
        report.committed_in_doubt = metrics.snapshot().recovery_commits;
        report.aborted_in_doubt = metrics.snapshot().recovery_aborts;

        // Prune rebalance debris: rows living outside their shard's
        // range (and therefore unreachable through the router) are
        // deleted with a logged repair delta.
        for (index, shard) in shards.iter().enumerate() {
            let mut state = shard.write();
            let mut repairs: Vec<(String, Delta)> = Vec::new();
            for name in state.db.table_names().into_iter().map(String::from) {
                let table = state.db.table(&name)?;
                let stray: Vec<Row> = table
                    .rows()
                    .filter(|row| router.shard_of(&table.key_of(row)) != index)
                    .cloned()
                    .collect();
                if !stray.is_empty() {
                    report.repaired_rows += stray.len() as u64;
                    repairs.push((
                        name,
                        Delta {
                            inserted: vec![],
                            deleted: stray,
                        },
                    ));
                }
            }
            if !repairs.is_empty() {
                state.append_group(&repairs, GroupEnd::Commit, true)?;
            }
            // Covers the deferred settle resolutions and repairs above.
            state.sync()?;
        }
        metrics.migrated(report.repaired_rows);

        let engine = ShardedEngineServer::from_parts_with_metrics(
            router,
            shards,
            Some(config),
            ShardCoordinator::starting_after(max_gtx),
            metrics,
            next_id,
        );
        Ok((engine, report))
    }

    fn from_parts(
        router: ShardRouter,
        shards: Vec<Shard>,
        durable_base: Option<DurabilityConfig>,
        coordinator: ShardCoordinator,
    ) -> ShardedEngineServer {
        let next_id = shards.iter().map(Shard::id).max().map_or(0, |m| m + 1);
        ShardedEngineServer::from_parts_with_metrics(
            router,
            shards,
            durable_base,
            coordinator,
            ShardMetrics::default(),
            next_id,
        )
    }

    fn from_parts_with_metrics(
        router: ShardRouter,
        shards: Vec<Shard>,
        durable_base: Option<DurabilityConfig>,
        coordinator: ShardCoordinator,
        shard_metrics: ShardMetrics,
        next_shard_id: u64,
    ) -> ShardedEngineServer {
        let telemetry = Arc::new(match &durable_base {
            Some(c) => Telemetry::with_config(c.telemetry.clone()),
            None => Telemetry::new(),
        });
        for shard in &shards {
            if let Some(d) = shard.write().durable.as_mut() {
                d.set_telemetry(Some(Arc::clone(&telemetry)));
            }
        }
        let topology = Arc::new(RwLock::new(Topology {
            router,
            shards,
            epoch: 0,
        }));
        let maintenance = durable_base.as_ref().and_then(|cfg| {
            if cfg.checkpoint_every == 0 || cfg.maintenance_interval_ms == 0 {
                return None;
            }
            let target = Arc::clone(&topology);
            Some(MaintenanceThread::spawn(
                std::time::Duration::from_millis(cfg.maintenance_interval_ms),
                move || {
                    let shards: Vec<Shard> = match target.read() {
                        Ok(topo) => topo.shards.clone(),
                        Err(_) => return,
                    };
                    for index in 0..shards.len() {
                        let _ = checkpoint_shard(&shards, index, false);
                    }
                },
            ))
        });
        ShardedEngineServer {
            inner: Arc::new(ShardedInner {
                topology,
                views: RwLock::new(BTreeMap::new()),
                coordinator,
                stamp: AtomicU64::new(1),
                notifier: Arc::new(CommitNotifier::new()),
                metrics: Metrics::default(),
                shard_metrics,
                durable_base,
                next_shard_id: AtomicU64::new(next_shard_id),
                telemetry,
                advertised: Mutex::new(None),
                shard_load: Mutex::new(Vec::new()),
                _maintenance: maintenance,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.topology().shards.len()
    }

    /// A copy of the current router (split points change under
    /// rebalancing).
    pub fn router(&self) -> ShardRouter {
        self.topology().router.clone()
    }

    /// The topology index of the shard owning `key` right now.
    pub fn shard_of_key(&self, key: &Row) -> usize {
        self.topology().router.shard_of(key)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let topo = self.topology();
        match topo.shards.first() {
            Some(shard) => shard
                .read()
                .db
                .table_names()
                .into_iter()
                .map(String::from)
                .collect(),
            None => Vec::new(),
        }
    }

    /// A consistent snapshot of one table, assembled across shards.
    pub fn table(&self, name: &str) -> Result<Table, EngineError> {
        let db = self.snapshot();
        Ok(db.table(name)?.clone())
    }

    /// A consistent snapshot of the whole database: all shard read locks
    /// are held together (in index order), so no cross-shard transaction
    /// is ever observed half-applied.
    pub fn snapshot(&self) -> Database {
        let topo = self.topology();
        let guards: Vec<_> = topo.shards.iter().map(Shard::read).collect();
        assemble(guards.iter().map(|g| g.db.clone()))
            .expect("shard pieces share schemas and disjoint keys")
    }

    /// Rebuild the committed state from every shard's baseline plus its
    /// WAL — the recovery law. At quiescence this equals
    /// [`ShardedEngineServer::snapshot`] (asserted by the suites).
    pub fn recovered_database(&self) -> Result<Database, EngineError> {
        let topo = self.topology();
        let mut replayed = Vec::with_capacity(topo.shards.len());
        for shard in &topo.shards {
            replayed.push(shard.recovered_database()?);
        }
        assemble(replayed.into_iter())
    }

    /// Per-shard snapshots of the in-memory WALs, in topology order.
    pub fn shard_wals(&self) -> Vec<Wal> {
        let topo = self.topology();
        topo.shards.iter().map(|s| s.read().wal.clone()).collect()
    }

    /// Current engine counters: commit/conflict/retry totals, sharding
    /// stats, and durable-WAL stats summed across shards.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut wal = WalStats::default();
        {
            let topo = self.topology();
            for shard in &topo.shards {
                if let Some(d) = shard.read().durable.as_ref() {
                    let s = d.stats();
                    wal.appends += s.appends;
                    wal.syncs += s.syncs;
                    wal.bytes_written += s.bytes_written;
                    wal.rotations += s.rotations;
                    wal.checkpoints += s.checkpoints;
                    wal.segments_compacted += s.segments_compacted;
                }
            }
        }
        let load: Vec<ShardLoad> = self
            .inner
            .shard_load
            .lock()
            .map(|l| l.clone())
            .unwrap_or_default();
        let mut shard_stats = self.inner.shard_metrics.snapshot();
        let rates: Vec<u64> = load.iter().map(|l| l.rate_ewma_milli).collect();
        if let Some(&max) = rates.iter().max() {
            shard_stats.commit_rate_ewma_milli = max;
            let min = *rates.iter().min().expect("non-empty");
            shard_stats.commit_rate_skew_milli = match max.saturating_mul(1000).checked_div(min) {
                Some(skew) => skew,
                // An idle fleet is perfectly level; any load over a
                // zero-rate shard is infinitely skewed.
                None if max == 0 => 1000,
                None => u64::MAX,
            };
        }
        self.inner
            .metrics
            .snapshot()
            .with_wal(wal)
            .with_shard(shard_stats)
            .with_shard_load(load)
    }

    /// Record the address writers should be redirected to (typically the
    /// net layer's bound address). Ships to replicas in the replication
    /// manifest; their `NotPrimary` errors carry it.
    pub fn advertise(&self, addr: impl Into<String>) {
        if let Ok(mut a) = self.inner.advertised.lock() {
            *a = Some(addr.into());
        }
    }

    /// The advertised primary address, if one was set.
    pub fn advertised_addr(&self) -> Option<String> {
        self.inner.advertised.lock().ok().and_then(|a| a.clone())
    }

    /// The median primary key of shard `index`'s largest table — the
    /// split point the auto-rebalance policy feeds to
    /// [`ShardedEngineServer::split_shard`] so each half keeps about half
    /// the rows. `None` when the shard has fewer than two rows in every
    /// table (nothing to split).
    pub fn median_split_key(&self, index: usize) -> Option<Row> {
        let topo = self.topology();
        let shard = topo.shards.get(index)?;
        let state = shard.read();
        let largest = state
            .db
            .table_names()
            .into_iter()
            .filter_map(|n| state.db.table(n).ok())
            .max_by_key(|t| t.len())?;
        if largest.len() < 2 {
            return None;
        }
        let mid = largest.key_at(largest.len() / 2)?;
        // A split at the very first key moves everything and leaves an
        // empty lower shard; step forward instead.
        if Some(&mid) == largest.key_at(0).as_ref() {
            largest.key_at(largest.len() / 2 + 1)
        } else {
            Some(mid)
        }
    }

    /// Per-shard load right now: rows (largest table), cumulative
    /// commits, and the policy thread's EWMA (zero until a policy runs).
    /// Topology order; the `shard` field carries stable shard ids.
    pub fn shard_load(&self) -> Vec<ShardLoad> {
        let ewmas: BTreeMap<u64, u64> = self
            .inner
            .shard_load
            .lock()
            .map(|l| l.iter().map(|s| (s.shard, s.rate_ewma_milli)).collect())
            .unwrap_or_default();
        let topo = self.topology();
        topo.shards
            .iter()
            .map(|shard| {
                let state = shard.read();
                let rows = state
                    .db
                    .table_names()
                    .into_iter()
                    .filter_map(|n| state.db.table(n).ok().map(Table::len))
                    .max()
                    .unwrap_or(0) as u64;
                ShardLoad {
                    shard: shard.id(),
                    rows,
                    commits: shard.commit_count(),
                    rate_ewma_milli: ewmas.get(&shard.id()).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Publish the policy thread's freshly computed load view (see
    /// [`crate::repl::PolicyConfig`]).
    pub(crate) fn set_shard_load(&self, load: Vec<ShardLoad>) {
        if let Ok(mut l) = self.inner.shard_load.lock() {
            *l = load;
        }
    }

    /// The base directory of a durable sharded engine (`None` when in
    /// memory) — where the topology manifest and `shard-<id>/` WAL
    /// directories live, and what [`crate::repl`] ships from.
    pub fn durable_base_dir(&self) -> Option<std::path::PathBuf> {
        self.inner.durable_base.as_ref().map(|c| c.dir.clone())
    }

    /// Per-shard last durable sequence numbers, keyed by stable shard
    /// id — the replication manifest's lag reference.
    pub(crate) fn shard_last_seqs(&self) -> BTreeMap<u64, u64> {
        let topo = self.topology();
        topo.shards
            .iter()
            .map(|s| {
                let last = s.read().durable.as_ref().map_or(0, |d| d.last_seq());
                (s.id(), last)
            })
            .collect()
    }

    /// The live phase-latency registry (shared with every shard's
    /// durable WAL). Exposed so embedders can tune the slow-op
    /// threshold; take [`ShardedEngineServer::telemetry`] for a
    /// snapshot.
    pub fn telemetry_registry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// A point-in-time copy of the phase-latency histograms and the
    /// slow-op ring.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry.snapshot()
    }

    /// Force-fsync every shard's group-commit batch. No-op in memory.
    pub fn sync_wal(&self) -> Result<(), EngineError> {
        let topo = self.topology();
        for shard in &topo.shards {
            shard.write().sync()?;
        }
        Ok(())
    }

    /// Checkpoint (and compact) every shard now. Returns the covered
    /// seqs, or `None` for in-memory engines. Refuses while any shard is
    /// poisoned or holds in-doubt 2PC state — a checkpoint must never
    /// compact away the resolution evidence a peer still needs at
    /// recovery.
    pub fn checkpoint(&self) -> Result<Option<Vec<u64>>, EngineError> {
        let shards = self.topology().shards.clone();
        let mut seqs = Vec::with_capacity(shards.len());
        for index in 0..shards.len() {
            match checkpoint_shard(&shards, index, true)? {
                Some(seq) => seqs.push(seq),
                None => return Ok(None), // in-memory shard
            }
        }
        Ok(Some(seqs))
    }

    /// Run one maintenance pass over every shard — what the background
    /// thread does each tick (checkpoint iff due and safe, file writes
    /// outside the shard locks), plus an in-memory WAL truncation below
    /// the view-window cursors ([`ShardedEngineServer::truncate_wals`]).
    /// Deterministic tests and embedders that disable the thread drive
    /// this directly.
    pub fn run_maintenance(&self) -> Result<(), EngineError> {
        let shards = self.topology().shards.clone();
        for index in 0..shards.len() {
            checkpoint_shard(&shards, index, false)?;
        }
        self.truncate_wals()?;
        Ok(())
    }

    /// Drop every shard's in-memory WAL prefix that no consumer needs
    /// any more: records at or below every materialized view window's
    /// cursor for that shard (and the shard's durable checkpoint), cut
    /// back to a settled transaction boundary, are folded into the
    /// shard's replay baseline and removed — bounding in-memory log
    /// growth under view maintenance. Views without a current-epoch
    /// materialization impose no floor (their next read rebuilds from
    /// the live shard piece, not from the log), and a view's windows
    /// only constrain the shards inside its pruned run — out-of-run
    /// shards are invisible to it by construction. Returns the total
    /// records dropped across shards.
    pub fn truncate_wals(&self) -> Result<u64, EngineError> {
        // Hold the topology read lock across the whole pass so the
        // run-to-shard alignment the floors are computed under cannot
        // shift (rebalances queue behind it, like any transaction).
        let topo = self.topology();
        let mut floors: Vec<u64> = vec![u64::MAX; topo.shards.len()];
        {
            let views = self.inner.views.read().expect("views lock poisoned");
            for reg in views.values() {
                let mat_slot = reg.mat.lock().expect("view windows lock poisoned");
                let Some(mat) = mat_slot.as_ref() else {
                    continue;
                };
                if mat.epoch != topo.epoch {
                    continue; // stale: the next read rebuilds, needs no log
                }
                let run = self.view_shard_run(&topo, reg);
                for (window, &shard_index) in mat.windows.iter().zip(run.iter()) {
                    floors[shard_index] = floors[shard_index].min(window.applied_seq);
                }
            }
        }
        let mut dropped = 0;
        for (shard, floor) in topo.shards.iter().zip(floors) {
            let mut state = shard.write();
            let floor = floor.min(state.wal.last_seq());
            dropped += state.truncate_wal(floor)?;
        }
        if dropped > 0 {
            self.inner.metrics.wal_truncated(dropped);
        }
        Ok(dropped)
    }

    pub(crate) fn topology(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.inner.topology.read().expect("topology lock poisoned")
    }

    // ------------------------------------------------------------------
    // Transactions.
    // ------------------------------------------------------------------

    /// Run `body` in a snapshot transaction over the whole database,
    /// retrying first-committer-wins conflicts up to `max_attempts`
    /// times. The commit routes per key: one shard → fast path, several
    /// → two-phase commit.
    pub fn transact(
        &self,
        max_attempts: u32,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        self.run_transact(None, max_attempts, FailPoint::None, body)
    }

    /// [`ShardedEngineServer::transact`] restricted to the shards owning
    /// `keys`: only those shards are snapshotted and locked, so the
    /// fast path touches one shard end to end. The transaction may only
    /// write rows whose keys route to a declared shard — anything else
    /// is rejected with [`EngineError::ShardTopology`].
    pub fn transact_keys(
        &self,
        keys: &[Row],
        max_attempts: u32,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        self.run_transact(Some(keys), max_attempts, FailPoint::None, body)
    }

    /// [`ShardedEngineServer::transact_keys`] with coordinator crash
    /// injection — the recovery test harness. After a failpoint fires
    /// the engine is mid-protocol by design; discard it and recover the
    /// directory.
    pub fn transact_keys_failpoint(
        &self,
        keys: &[Row],
        max_attempts: u32,
        failpoint: FailPoint,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        self.run_transact(Some(keys), max_attempts, failpoint, body)
    }

    /// Checked delta commit pruned to the touched shards: derive the
    /// key set from the delta rows, snapshot and lock only the shards
    /// those keys route to, and validate each row against its
    /// pre-image ([`crate::engine::apply_table_delta_checked`]) inside
    /// one transaction attempt — the sharded engine side of the wire
    /// protocol's `commit` request. A single-shard delta takes the
    /// single-shard fast path end to end.
    pub fn commit_deltas_checked(
        &self,
        deltas: &[(String, Delta)],
    ) -> Result<CommitReceipt, EngineError> {
        let mut keys: Vec<Row> = Vec::new();
        {
            let topo = self.topology();
            let Some(first) = topo.shards.first() else {
                return Err(EngineError::ShardTopology("no shards".into()));
            };
            let state = first.read();
            for (name, delta) in deltas {
                // Every shard holds every table's schema; key extraction
                // needs only that. Reject wrong-arity rows here, before
                // key projection can panic on them.
                let table = state.db.table(name)?;
                let arity = table.schema().columns().len();
                for row in delta.inserted.iter().chain(delta.deleted.iter()) {
                    if row.len() != arity {
                        return Err(EngineError::Store(esm_store::StoreError::Arity {
                            expected: arity,
                            got: row.len(),
                        }));
                    }
                    keys.push(table.key_of(row));
                }
            }
        }
        self.transact_keys(&keys, 1, |db| {
            crate::engine::apply_deltas_checked(db, deltas)
        })
    }

    fn run_transact(
        &self,
        keys: Option<&[Row]>,
        max_attempts: u32,
        failpoint: FailPoint,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        let mut attempts = 0;
        loop {
            // The topology read lock pins the shard layout for the whole
            // attempt (rebalances queue behind it — their write fence).
            let topo = self.topology();
            let participant_set: Option<BTreeSet<usize>> =
                keys.map(|keys| keys.iter().map(|k| topo.router.shard_of(k)).collect());
            let (snapshot, snap_seqs) = self.snapshot_with_seqs(&topo, participant_set.as_ref())?;
            let mut working = snapshot.clone();
            body(&mut working)?;
            let mut deltas = BTreeMap::new();
            for name in snapshot.table_names() {
                let delta = Delta::between(snapshot.table(name)?, working.table(name)?)?;
                if !delta.is_empty() {
                    deltas.insert(name.to_string(), delta);
                }
            }
            match self.commit_deltas(&topo, &snapshot, &snap_seqs, &deltas, failpoint) {
                Ok(receipt) => return Ok(receipt),
                Err(EngineError::Conflict { .. }) if attempts + 1 < max_attempts => {
                    attempts += 1;
                    self.inner.metrics.retry();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Snapshot the participant shards (all of them when `None`) under
    /// simultaneously-held read locks, returning the assembled database
    /// and each participant's WAL position.
    fn snapshot_with_seqs(
        &self,
        topo: &Topology,
        participants: Option<&BTreeSet<usize>>,
    ) -> Result<(Database, BTreeMap<usize, u64>), EngineError> {
        let indexes: Vec<usize> = match participants {
            Some(set) => set.iter().copied().collect(),
            None => (0..topo.shards.len()).collect(),
        };
        for &i in &indexes {
            if i >= topo.shards.len() {
                return Err(EngineError::ShardTopology(format!("no shard {i}")));
            }
        }
        let _snapshot = self.inner.telemetry.timer(Phase::CommitSnapshot);
        let _tspan = esm_obs::trace::span("commit_snapshot");
        let guards: Vec<_> = indexes.iter().map(|&i| topo.shards[i].read()).collect();
        let snap_seqs = indexes
            .iter()
            .zip(guards.iter())
            .map(|(&i, g)| (i, g.wal.last_seq()))
            .collect();
        let snapshot = assemble(guards.iter().map(|g| g.db.clone()))?;
        Ok((snapshot, snap_seqs))
    }

    /// Route `deltas` per key and commit: empty → no-op receipt, one
    /// shard → fast path under its lock, several → 2PC via the
    /// coordinator. `snap_seqs` must cover every routed shard (it always
    /// does for whole-database snapshots; keyed transactions that stray
    /// outside their declared key set are rejected).
    fn commit_deltas(
        &self,
        topo: &Topology,
        snapshot: &Database,
        snap_seqs: &BTreeMap<usize, u64>,
        deltas: &BTreeMap<String, Delta>,
        failpoint: FailPoint,
    ) -> Result<CommitReceipt, EngineError> {
        // Route every changed row to its shard.
        let mut per_shard: BTreeMap<usize, BTreeMap<String, Delta>> = BTreeMap::new();
        for (name, delta) in deltas {
            let table = snapshot.table(name)?;
            for row in &delta.inserted {
                let shard = topo.router.shard_of(&table.key_of(row));
                per_shard
                    .entry(shard)
                    .or_default()
                    .entry(name.clone())
                    .or_insert_with(Delta::empty)
                    .inserted
                    .push(row.clone());
            }
            for row in &delta.deleted {
                let shard = topo.router.shard_of(&table.key_of(row));
                per_shard
                    .entry(shard)
                    .or_default()
                    .entry(name.clone())
                    .or_insert_with(Delta::empty)
                    .deleted
                    .push(row.clone());
            }
        }
        for &shard in per_shard.keys() {
            if !snap_seqs.contains_key(&shard) {
                return Err(EngineError::ShardTopology(format!(
                    "transaction wrote a key owned by shard {shard} without declaring it"
                )));
            }
        }
        let rows: u64 = deltas.values().map(|d| d.len() as u64).sum();

        if per_shard.is_empty() {
            return Ok(CommitReceipt {
                stamp: self.inner.stamp.fetch_add(1, Ordering::SeqCst),
                shards: Vec::new(),
                deltas: BTreeMap::new(),
                gtx: None,
            });
        }

        if per_shard.len() == 1 {
            // Fast path: one shard, no coordination.
            let (&index, tables) = per_shard.iter().next().expect("len == 1");
            let shard_deltas: Vec<(String, Delta)> =
                tables.iter().map(|(t, d)| (t.clone(), d.clone())).collect();
            let keys = keys_of(snapshot, &shard_deltas)?;
            let shard = &topo.shards[index];
            let tel = &self.inner.telemetry;
            let mut guard = shard.write();
            let lock_span = Span::start();
            let validate_span = Span::start();
            let validate_tspan =
                esm_obs::trace::span_tagged("commit_validate", format!("shard:{index}"));
            let conflict = guard.fcw_conflict(snap_seqs[&index], &keys)?;
            let validate_ns = validate_span.elapsed_ns();
            drop(validate_tspan);
            tel.record(Phase::CommitValidate, validate_ns);
            if let Some((table, seq)) = conflict {
                drop(guard);
                tel.record(Phase::CommitLockHold, lock_span.elapsed_ns());
                self.inner.metrics.conflict();
                return Err(EngineError::Conflict {
                    table,
                    detail: format!(
                        "snapshot at seq {} overlaps commit seq {seq} on shard {index}",
                        snap_seqs[&index]
                    ),
                });
            }
            // Defer the fsync when the shard has a group-commit gate:
            // after the lock drops, this session parks on the gate and
            // one leader fsyncs the whole cross-session batch.
            let appended =
                guard.append_group(&shard_deltas, GroupEnd::Commit, shard.has_group_commit())?;
            let stamp = self.inner.stamp.fetch_add(1, Ordering::SeqCst);
            drop(guard);
            shard.wait_group(appended.end.saturating_sub(1))?;
            let lock_ns = lock_span.elapsed_ns();
            tel.record(Phase::CommitLockHold, lock_ns);
            tel.record_slow(
                "commit:single-shard",
                lock_ns,
                &[
                    (Phase::CommitValidate, validate_ns),
                    (Phase::CommitLockHold, lock_ns),
                ],
            );
            self.inner.metrics.commit(rows);
            self.inner.shard_metrics.single_shard_commit();
            shard.note_commit();
            self.inner.notifier.publish(stamp);
            return Ok(CommitReceipt {
                stamp,
                shards: vec![index],
                deltas: deltas.clone(),
                gtx: None,
            });
        }

        // Cross-shard: two-phase commit, participants in index order.
        let mut participants = Vec::with_capacity(per_shard.len());
        for (&index, tables) in &per_shard {
            let shard_deltas: Vec<(String, Delta)> =
                tables.iter().map(|(t, d)| (t.clone(), d.clone())).collect();
            let keys = keys_of(snapshot, &shard_deltas)?;
            participants.push(Participant {
                index,
                shard: &topo.shards[index],
                snap_seq: snap_seqs[&index],
                deltas: shard_deltas,
                keys,
            });
        }
        let n = participants.len() as u64;
        let twopc_span = Span::start();
        let twopc_tspan = esm_obs::trace::span_tagged("twopc", format!("participants:{n}"));
        let result = self.inner.coordinator.commit_cross(
            &participants,
            failpoint,
            Some(&self.inner.telemetry),
            || self.inner.stamp.fetch_add(1, Ordering::SeqCst),
        );
        drop(twopc_tspan);
        self.inner.telemetry.record_slow(
            "commit:cross-shard",
            twopc_span.elapsed_ns(),
            &[(Phase::CommitLockHold, twopc_span.elapsed_ns())],
        );
        match result {
            Ok((gtx, stamp)) => {
                self.inner.metrics.commit(rows);
                self.inner.shard_metrics.cross_shard_commit(n);
                for p in &participants {
                    p.shard.note_commit();
                }
                self.inner.notifier.publish(stamp);
                Ok(CommitReceipt {
                    stamp,
                    shards: per_shard.keys().copied().collect(),
                    deltas: deltas.clone(),
                    gtx: Some(gtx),
                })
            }
            Err(e) => {
                if matches!(e, EngineError::Conflict { .. }) {
                    self.inner.metrics.conflict();
                }
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Views (the EntangledView facade).
    // ------------------------------------------------------------------

    /// Compile and register a named entangled view over `table` — same
    /// contract as [`crate::EngineServer::define_view`], except the base
    /// table spans shards and clients stay routing-oblivious. Columns
    /// the view's select stages constrain get secondary indexes on every
    /// shard's piece.
    pub fn define_view(
        &self,
        name: impl Into<String>,
        table: impl Into<String>,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        let name = name.into();
        let table = table.into();
        if self
            .inner
            .views
            .read()
            .expect("views lock poisoned")
            .contains_key(&name)
        {
            return Err(EngineError::ViewExists(name));
        }
        let (lens, schema, bounds) = {
            let snapshot = self.table(&table)?;
            let lens = def.compile_delta(&snapshot)?;
            let schema = lens
                .get(&Table::new(snapshot.schema().clone()))
                .schema()
                .clone();
            // The pruning hint: the view's base-schema selects constrain
            // the first key column (whole-row-keyed tables key on their
            // first column).
            let bounds = match snapshot
                .schema()
                .key()
                .first()
                .map(String::as_str)
                .or_else(|| snapshot.schema().column_names().first().copied())
            {
                Some(key_col) => def.key_bounds(key_col),
                None => (Bound::Unbounded, Bound::Unbounded),
            };
            (lens, schema, bounds)
        };
        {
            let topo = self.topology();
            for col in def.index_candidates() {
                for shard in &topo.shards {
                    let mut state = shard.write();
                    state.db.table_mut(&table)?.create_index(&col)?;
                }
            }
        }
        let mut views = self.inner.views.write().expect("views lock poisoned");
        if views.contains_key(&name) {
            return Err(EngineError::ViewExists(name));
        }
        views.insert(
            name.clone(),
            ViewReg {
                table,
                lens,
                bounds,
                schema,
                mat: Mutex::new(None),
            },
        );
        drop(views);
        self.view(&name)
    }

    /// A client handle onto a registered view.
    pub fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        let views = self.inner.views.read().expect("views lock poisoned");
        if !views.contains_key(name) {
            return Err(EngineError::NoSuchView(name.to_string()));
        }
        Ok(EntangledView::attach(Arc::new(self.clone()), name))
    }

    /// The commit signal shared by every shard: each settled commit
    /// publishes its global stamp here. Push pumps park on it instead of
    /// polling [`Self::metrics`].
    pub fn commit_notifier(&self) -> Arc<CommitNotifier> {
        Arc::clone(&self.inner.notifier)
    }

    /// The last *issued* global commit stamp (the stamp counter starts
    /// at 1, so an untouched engine reports 0).
    fn last_stamp(&self) -> u64 {
        self.inner.stamp.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// The subscription cursor a fresh subscriber of `name` should start
    /// from: the current global commit stamp. Anything committed after
    /// this call surfaces through [`Self::view_deltas_since`].
    pub fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        self.with_view(name, |_| Ok(self.last_stamp()))
    }

    /// Everything settled past `cursor` for view `name`.
    ///
    /// The sharded engine's cursor is the global commit *stamp*, which
    /// is coarser than a per-shard WAL sequence: when anything has
    /// committed past the cursor the whole current window is returned as
    /// a resync (reflecting at least the stamp read before the window).
    /// Subscribers stay correct — they just pay resync granularity
    /// rather than O(delta) — and an idle view still short-circuits to
    /// an empty batch.
    pub fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        // Read the stamp *before* the window so the window reflects at
        // least `cur` and advancing the subscriber to it loses nothing.
        let cur = self.last_stamp();
        if cursor == cur {
            // Nothing stamped past the cursor; still validate the name.
            return self.with_view(name, |_| Ok(ViewDeltas::empty(cursor)));
        }
        // A cursor that isn't exactly the current stamp — behind it,
        // ahead of it (a stale or corrupt resume), or the explicit
        // u64::MAX force-resync sentinel — gets the full window.
        let window = self.read_view(name)?;
        Ok(ViewDeltas {
            from_seq: cursor,
            to_seq: cur,
            delta: Delta::empty(),
            resync: Some(window),
        })
    }

    /// Registered view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.inner
            .views
            .read()
            .expect("views lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    fn with_view<R>(
        &self,
        name: &str,
        f: impl FnOnce(&ViewReg) -> Result<R, EngineError>,
    ) -> Result<R, EngineError> {
        let views = self.inner.views.read().expect("views lock poisoned");
        let reg = views
            .get(name)
            .ok_or_else(|| EngineError::NoSuchView(name.to_string()))?;
        f(reg)
    }

    /// The contiguous shard run the view's key bounds can touch under
    /// the current router.
    fn view_shard_run(&self, topo: &Topology, reg: &ViewReg) -> Vec<usize> {
        match topo
            .router
            .shards_in_value_range(&reg.bounds.0, &reg.bounds.1)
        {
            Some((a, b)) => (a..=b).collect(),
            None => Vec::new(),
        }
    }

    /// Read a view against a consistent cross-shard state of its base
    /// table.
    ///
    /// Served from per-shard materialized windows: only the shards the
    /// view's key bounds can touch are consulted (the rest are pruned
    /// without cloning anything), and each consulted shard contributes
    /// the committed WAL records since its window's cursor, translated
    /// through the lens's delta propagator — O(changes) per read, never
    /// a whole-database assembly. Full per-shard lens `get`s happen only
    /// on the first read, after a topology change (split/merge), or on a
    /// propagation escape hatch.
    pub fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        self.inner.metrics.view_read();
        self.with_view(name, |reg| {
            let mut mat_slot = reg.mat.lock().expect("view windows lock poisoned");
            let topo = self.topology();
            let run = self.view_shard_run(&topo, reg);
            let pruned = topo.shards.len() - run.len();
            if pruned > 0 {
                self.inner.metrics.view_pruned(pruned as u64);
            }

            // All in-run shard read locks are held together (in index
            // order), so a cross-shard 2PC is never observed
            // half-applied; out-of-run shards cannot contribute view
            // rows, so their in-flight halves are invisible by
            // construction.
            let guards: Vec<_> = run.iter().map(|&i| topo.shards[i].read()).collect();

            let stale = match mat_slot.as_ref() {
                Some(mat) => mat.epoch != topo.epoch,
                None => true,
            };
            if stale {
                // (Re)build every window from the live shard pieces.
                let _rebuild = self.inner.telemetry.timer(Phase::ViewRebuild);
                let mut windows = Vec::with_capacity(guards.len());
                for guard in &guards {
                    windows.push(Window {
                        table: reg.lens.get(guard.db.table(&reg.table)?),
                        applied_seq: guard.wal.last_seq(),
                    });
                }
                *mat_slot = Some(ShardedMat {
                    epoch: topo.epoch,
                    windows,
                });
                self.inner.metrics.view_rebuild();
            } else {
                let mat = mat_slot.as_mut().expect("checked above");
                let mut clean = true;
                for (window, guard) in mat.windows.iter_mut().zip(&guards) {
                    clean &= self.drain_shard_window(reg, window, guard)?;
                }
                drop(guards);
                // A materialized read means *no* window re-ran its lens
                // get — same accounting as the unsharded engine.
                if clean {
                    self.inner.metrics.view_materialized();
                }
            }

            // Concatenate the windows (disjoint keys: the lens retains
            // the base key, and shards own disjoint key ranges).
            let mat = mat_slot.as_ref().expect("materialized above");
            let mut parts = mat.windows.iter();
            let mut out = match parts.next() {
                Some(w) => w.table.clone(),
                None => Table::new(reg.schema.clone()),
            };
            for w in parts {
                for row in w.table.rows() {
                    out.upsert(row.clone())?;
                }
            }
            Ok(out)
        })
    }

    /// Fold one shard's committed records since the window cursor into
    /// the window (the shared [`crate::view::drain_into_window`]
    /// algorithm). 2PC chains apply only at their commit resolution —
    /// the same transaction structure as WAL replay. If the drained run
    /// ends unsettled (a coordinator mid-protocol, impossible under the
    /// participant-lock discipline but cheap to tolerate), the window
    /// and cursor stay untouched: the read serves the last settled
    /// state, and the next read drains the resolved run. Returns
    /// whether the window was maintained without the rebuild escape
    /// hatch.
    fn drain_shard_window(
        &self,
        reg: &ViewReg,
        window: &mut Window,
        shard: &shard::ShardState,
    ) -> Result<bool, EngineError> {
        let tel = &self.inner.telemetry;
        if window.applied_seq < shard.wal.start_seq() {
            // A truncation outran this window (it materialized while the
            // truncation's floor scan ran): the records it needs are
            // gone, so rebuild from the live shard piece instead of
            // silently serving a stale window.
            let _rebuild = tel.timer(Phase::ViewRebuild);
            window.table = reg.lens.get(shard.db.table(&reg.table)?);
            window.applied_seq = shard.wal.last_seq();
            self.inner.metrics.view_rebuild();
            return Ok(false);
        }
        let drain_span = Span::start();
        let records = shard.wal.records_after(window.applied_seq);
        if records.is_empty() {
            tel.record(Phase::ViewDrain, drain_span.elapsed_ns());
            return Ok(true);
        }
        let deltas = committed_table_deltas(&reg.table, records);
        tel.record(Phase::ViewDrain, drain_span.elapsed_ns());
        let Some(deltas) = deltas else {
            return Ok(true); // unsettled tail: serve the last settled state
        };
        // `deltas_applied` counts only changes that actually survive
        // into the window (a rebuild discards the whole run).
        let fold_span = Span::start();
        let folded =
            crate::view::drain_into_window(&reg.lens, deltas.iter().copied(), &mut window.table);
        tel.record(Phase::ViewDeltaFold, fold_span.elapsed_ns());
        let clean = match folded {
            Some(drained) => {
                self.inner.metrics.view_deltas(drained);
                true
            }
            None => {
                // Escape hatch: re-run the lens get on this shard's
                // live piece (consistent with the WAL position under
                // the held read lock).
                let _rebuild = tel.timer(Phase::ViewRebuild);
                window.table = reg.lens.get(shard.db.table(&reg.table)?);
                self.inner.metrics.view_rebuild();
                false
            }
        };
        window.applied_seq = shard.wal.last_seq();
        Ok(clean)
    }

    /// The participant set a view write snapshots: the shards the view's
    /// key bounds can touch, or `None` (all shards) when the bounds
    /// prune nothing — or everything (an edit can still insert rows
    /// anywhere, and an empty snapshot could not even name the base
    /// table).
    fn view_write_participants(&self, topo: &Topology, reg: &ViewReg) -> Option<BTreeSet<usize>> {
        let run = self.view_shard_run(topo, reg);
        if run.is_empty() || run.len() == topo.shards.len() {
            None
        } else {
            Some(run.into_iter().collect())
        }
    }

    /// Write an edited view back (the lens `put`). A `put` replaces the
    /// view's whole visible window; the resulting base delta routes per
    /// key and commits like any transaction (2PC when it spans shards),
    /// retrying internally until it lands — concurrent putters are
    /// last-writer-wins, like the unsharded engine. Returns the
    /// base-table delta.
    ///
    /// Snapshots are pruned to the shards the view's key bounds can
    /// touch; a write that strays outside them (a client inserting an
    /// out-of-window row) falls back to a whole-database snapshot and
    /// retries, so pruning is an optimization, never a behaviour change.
    pub fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        self.with_view(name, |reg| {
            let mut pruned = true;
            loop {
                let topo = self.topology();
                let participants = if pruned {
                    self.view_write_participants(&topo, reg)
                } else {
                    None
                };
                let (snapshot, snap_seqs) =
                    self.snapshot_with_seqs(&topo, participants.as_ref())?;
                let base = snapshot.table(&reg.table)?;
                let put_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    reg.lens.put(base.clone(), view.clone())
                }));
                let new_base = match put_result {
                    Ok(t) => t,
                    Err(_) => {
                        return Err(EngineError::Store(esm_store::StoreError::BadQuery(
                            format!(
                                "view write rejected: the edited table does not fit view {name}"
                            ),
                        )))
                    }
                };
                let delta = Delta::between(base, &new_base)?;
                if delta.is_empty() {
                    return Ok(delta);
                }
                let deltas = BTreeMap::from([(reg.table.clone(), delta.clone())]);
                match self.commit_deltas(&topo, &snapshot, &snap_seqs, &deltas, FailPoint::None) {
                    Ok(_) => return Ok(delta),
                    // Whole-window put semantics: a racing commit just
                    // means our window is stale; re-put it (progress is
                    // guaranteed — every conflict is someone else's
                    // commit).
                    Err(EngineError::Conflict { .. }) => continue,
                    // The put strayed outside the pruned shards; widen.
                    Err(EngineError::ShardTopology(_)) if participants.is_some() => {
                        pruned = false;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }

    /// Transactionally edit a view (optimistic, first-committer-wins
    /// with up to `attempts` retries) — the sharded
    /// [`crate::EngineServer::edit_view_optimistic`]. Snapshots are
    /// pruned like [`ShardedEngineServer::write_view`]'s, with the same
    /// widen-on-stray fallback.
    pub fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        self.with_view(name, |reg| {
            let mut pruned = true;
            let mut attempt = 0;
            while attempt < attempts.max(1) {
                let topo = self.topology();
                let participants = if pruned {
                    self.view_write_participants(&topo, reg)
                } else {
                    None
                };
                let (snapshot, snap_seqs) =
                    self.snapshot_with_seqs(&topo, participants.as_ref())?;
                let base = snapshot.table(&reg.table)?;
                let mut view = reg.lens.get(base);
                edit(&mut view)?;
                let new_base = reg.lens.put(base.clone(), view);
                let delta = Delta::between(base, &new_base)?;
                if delta.is_empty() {
                    return Ok(delta);
                }
                let deltas = BTreeMap::from([(reg.table.clone(), delta.clone())]);
                match self.commit_deltas(&topo, &snapshot, &snap_seqs, &deltas, FailPoint::None) {
                    Ok(_) => return Ok(delta),
                    Err(EngineError::Conflict { .. }) => {
                        attempt += 1;
                        if attempt < attempts.max(1) {
                            self.inner.metrics.retry();
                        }
                    }
                    // A stray write widens the snapshot without burning
                    // an optimistic attempt.
                    Err(EngineError::ShardTopology(_)) if participants.is_some() => {
                        pruned = false;
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(EngineError::RetriesExhausted {
                view: name.to_string(),
                attempts,
            })
        })
    }
}

impl std::fmt::Debug for ShardedEngineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topo = self.topology();
        write!(
            f,
            "ShardedEngineServer {{ shards: {}, splits: {:?} }}",
            topo.shards.len(),
            topo.router.splits()
        )
    }
}

/// The key sets a per-shard delta list touches, per table.
fn keys_of(
    snapshot: &Database,
    deltas: &[(String, Delta)],
) -> Result<BTreeMap<String, BTreeSet<Row>>, EngineError> {
    let mut keys: BTreeMap<String, BTreeSet<Row>> = BTreeMap::new();
    for (name, delta) in deltas {
        let table = snapshot.table(name)?;
        let entry = keys.entry(name.clone()).or_default();
        for row in delta.inserted.iter().chain(delta.deleted.iter()) {
            entry.insert(table.key_of(row));
        }
    }
    Ok(keys)
}

/// Cut the key space at data quantiles: up to `shards` ranges holding
/// roughly equal row counts of the seed data.
fn quantile_router(db: &Database, shards: usize) -> ShardRouter {
    if shards <= 1 {
        return ShardRouter::single();
    }
    let mut keys: BTreeSet<Row> = BTreeSet::new();
    for name in db.table_names() {
        let table = db.table(name).expect("name came from the database");
        for row in table.rows() {
            keys.insert(table.key_of(row));
        }
    }
    let keys: Vec<&Row> = keys.iter().collect();
    let mut splits: Vec<Row> = Vec::new();
    for i in 1..shards {
        let idx = i * keys.len() / shards;
        if idx == 0 || idx >= keys.len() {
            continue;
        }
        let candidate = keys[idx].clone();
        if splits.last() != Some(&candidate) {
            splits.push(candidate);
        }
    }
    ShardRouter::from_splits(splits).expect("quantiles of a sorted set increase strictly")
}

/// Parse the numeric suffix of a generated gtx id (`g<n>`); foreign ids
/// count as 0 (the seed only needs to dominate ids *we* generated).
fn parse_gtx(gtx: &str) -> u64 {
    gtx.strip_prefix('g')
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Topology manifest.
// ---------------------------------------------------------------------

/// Serialize and atomically write the topology manifest.
pub(crate) fn write_topology(
    dir: &Path,
    next_id: u64,
    router: &ShardRouter,
    ids: &[u64],
) -> Result<(), EngineError> {
    debug_assert_eq!(ids.len(), router.shard_count());
    let mut text = format!("!topology\nnext_id {next_id}\n");
    for (i, id) in ids.iter().enumerate() {
        match router.splits().get(i) {
            Some(split) => {
                text.push_str(&format!(
                    "shard {id} upto {}\n",
                    esm_store::codec::encode_row(split)
                ));
            }
            None => text.push_str(&format!("shard {id} rest\n")),
        }
    }
    text.push_str("!end\n");
    write_atomic_text(dir, TOPOLOGY_FILE, &text)?;
    Ok(())
}

/// Read the topology manifest back: `(next_id, router, shard ids)`.
pub(crate) fn read_topology(dir: &Path) -> Result<(u64, ShardRouter, Vec<u64>), EngineError> {
    let path = dir.join(TOPOLOGY_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        EngineError::Io(format!(
            "{} is not a sharded engine directory: {e}",
            dir.display()
        ))
    })?;
    let corrupt = |msg: &str| EngineError::WalCorrupt(format!("topology manifest: {msg}"));
    let mut lines = text.lines();
    if lines.next() != Some("!topology") {
        return Err(corrupt("missing !topology header"));
    }
    let next_id: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("next_id "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt("bad next_id line"))?;
    let mut ids = Vec::new();
    let mut splits = Vec::new();
    let mut saw_rest = false;
    let mut saw_end = false;
    for line in lines {
        if line == "!end" {
            saw_end = true;
            break;
        }
        let rest = line
            .strip_prefix("shard ")
            .ok_or_else(|| corrupt("expected a shard line"))?;
        let (id, bound) = rest
            .split_once(' ')
            .ok_or_else(|| corrupt("truncated shard line"))?;
        let id: u64 = id.parse().map_err(|_| corrupt("bad shard id"))?;
        if saw_rest {
            return Err(corrupt("shard after the unbounded final range"));
        }
        if bound == "rest" {
            saw_rest = true;
        } else {
            let split = bound
                .strip_prefix("upto ")
                .ok_or_else(|| corrupt("bad shard bound"))?;
            splits.push(
                esm_store::codec::decode_row(split)
                    .map_err(|e| corrupt(&format!("bad split row: {e}")))?,
            );
        }
        ids.push(id);
    }
    if !saw_end {
        return Err(corrupt("missing !end trailer (torn write?)"));
    }
    if !saw_rest || ids.is_empty() {
        return Err(corrupt("no unbounded final range"));
    }
    let router = ShardRouter::from_splits(splits)?;
    if router.shard_count() != ids.len() {
        return Err(corrupt("split count does not match shard count"));
    }
    Ok((next_id, router, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Operand, Predicate, Schema, ValueType};

    fn seed_db(n: i64) -> Database {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("owner", ValueType::Str),
                ("balance", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let rows: Vec<Row> = (0..n).map(|i| row![i, format!("o{i}"), i * 10]).collect();
        let mut db = Database::new();
        db.create_table("accounts", Table::from_rows(schema, rows).unwrap())
            .unwrap();
        db
    }

    fn sharded(n_rows: i64, shards: usize) -> ShardedEngineServer {
        ShardedEngineServer::with_router(
            seed_db(n_rows),
            ShardRouter::uniform_int(shards, 0, n_rows.max(shards as i64)).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn partitioning_assembles_back_to_the_whole() {
        let db = seed_db(40);
        let engine = sharded(40, 4);
        assert_eq!(engine.shard_count(), 4);
        assert_eq!(engine.snapshot(), db);
        // Every shard holds only its range.
        let topo = engine.topology();
        for (i, shard) in topo.shards.iter().enumerate() {
            let state = shard.read();
            let table = state.db.table("accounts").unwrap();
            assert_eq!(table.len(), 10, "shard {i}");
            for row in table.rows() {
                assert_eq!(topo.router.shard_of(&table.key_of(row)), i);
            }
        }
    }

    #[test]
    fn quantile_router_balances_seed_data() {
        let engine = ShardedEngineServer::new(seed_db(100), 4).unwrap();
        assert_eq!(engine.shard_count(), 4);
        let topo = engine.topology();
        for shard in &topo.shards {
            let len = shard.read().db.table("accounts").unwrap().len();
            assert_eq!(len, 25);
        }
        drop(topo);
        // Degenerate cases collapse gracefully.
        assert_eq!(
            ShardedEngineServer::new(seed_db(1), 4)
                .unwrap()
                .shard_count(),
            1, // one row → no usable quantiles → one shard
        );
        assert_eq!(
            ShardedEngineServer::new(seed_db(3), 1)
                .unwrap()
                .shard_count(),
            1
        );
    }

    #[test]
    fn single_shard_transactions_take_the_fast_path() {
        let engine = sharded(40, 4);
        let receipt = engine
            .transact_keys(&[row![5]], 4, |db| {
                let t = db.table_mut("accounts")?;
                t.upsert(row![5, "updated", 999])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(receipt.shards, vec![0]);
        assert!(receipt.gtx.is_none());
        let m = engine.metrics();
        assert_eq!(m.shard.single_shard_commits, 1);
        assert_eq!(m.shard.cross_shard_commits, 0);
        assert_eq!(m.commits, 1);
        assert!(engine
            .table("accounts")
            .unwrap()
            .contains(&row![5, "updated", 999]));
        // Only shard 0's WAL moved.
        let wals = engine.shard_wals();
        assert_eq!(wals[0].len(), 1);
        assert!(wals[1].is_empty() && wals[2].is_empty() && wals[3].is_empty());
        assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
    }

    #[test]
    fn cross_shard_transactions_run_two_phase_commit() {
        let engine = sharded(40, 4);
        // Transfer 7 from id 5 (shard 0) to id 35 (shard 3).
        let receipt = engine
            .transact_keys(&[row![5], row![35]], 4, |db| {
                let t = db.table_mut("accounts")?;
                let from = t.get_by_key(&row![5]).unwrap()[2].as_int().unwrap();
                let to = t.get_by_key(&row![35]).unwrap()[2].as_int().unwrap();
                t.upsert(row![5, "o5", from - 7])?;
                t.upsert(row![35, "o35", to + 7])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(receipt.shards, vec![0, 3]);
        assert!(receipt.gtx.is_some());
        let m = engine.metrics();
        assert_eq!(m.shard.cross_shard_commits, 1);
        assert_eq!(m.shard.prepares, 2);
        let t = engine.table("accounts").unwrap();
        assert_eq!(
            t.get_by_key(&row![5]).unwrap()[2],
            esm_store::Value::Int(43)
        );
        assert_eq!(
            t.get_by_key(&row![35]).unwrap()[2],
            esm_store::Value::Int(357)
        );
        // Both shard logs hold the 2PC records and replay to their live
        // pieces.
        assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
    }

    #[test]
    fn undeclared_keys_are_rejected() {
        let engine = sharded(40, 4);
        let err = engine
            .transact_keys(&[row![5]], 1, |db| {
                db.table_mut("accounts")?.upsert(row![39, "stray", 0])?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::ShardTopology(msg) if msg.contains("declaring")));
        assert_eq!(engine.metrics().commits, 0);
    }

    #[test]
    fn conflicts_retry_and_eventually_exhaust() {
        let engine = sharded(10, 2);
        // Two racing bumps on the same key: with enough attempts both
        // land (serialized by retries).
        let bump = |attempts| {
            engine.transact_keys(&[row![3]], attempts, |db| {
                let t = db.table_mut("accounts")?;
                let cur = t.get_by_key(&row![3]).unwrap()[2].as_int().unwrap();
                t.upsert(row![3, "o3", cur + 1])?;
                Ok(())
            })
        };
        bump(1).unwrap();
        bump(1).unwrap();
        assert_eq!(
            engine
                .table("accounts")
                .unwrap()
                .get_by_key(&row![3])
                .unwrap()[2],
            esm_store::Value::Int(32)
        );
    }

    #[test]
    fn views_are_routing_oblivious() {
        let engine = sharded(40, 4);
        let rich = engine
            .define_view(
                "rich",
                "accounts",
                &ViewDef::base().select(Predicate::ge(Operand::col("balance"), Operand::val(200))),
            )
            .unwrap();
        // The view window spans shards 2 and 3 (balances 200..390).
        assert_eq!(rich.get().unwrap().len(), 20);
        // An edit through the view that touches two shards commits by
        // 2PC under the hood.
        rich.edit(|v| {
            v.upsert(row![21, "o21", 777])?; // shard 2
            v.upsert(row![39, "o39", 888])?; // shard 3
            Ok(())
        })
        .unwrap();
        assert_eq!(engine.metrics().shard.cross_shard_commits, 1);
        let t = engine.table("accounts").unwrap();
        assert!(t.contains(&row![21, "o21", 777]));
        assert!(t.contains(&row![39, "o39", 888]));
        // A put of the whole window routes too.
        let mut window = rich.get().unwrap();
        window.delete_by_key(&row![39]);
        let delta = rich.put(window).unwrap();
        assert_eq!(delta.deleted, vec![row![39, "o39", 888]]);
        // The host is reachable uniformly through the Engine trait.
        assert_eq!(rich.engine().table_names().unwrap(), vec!["accounts"]);
        assert!(rich.engine().metrics().unwrap().shard.cross_shard_commits >= 1);
        assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
        // Select-view registration auto-indexed each shard's piece.
        let topo = engine.topology();
        assert_eq!(
            topo.shards[0]
                .read()
                .db
                .table("accounts")
                .unwrap()
                .indexed_columns(),
            vec!["balance"]
        );
    }

    #[test]
    fn key_bounded_views_prune_shards_and_stay_materialized() {
        let engine = sharded(40, 4); // splits at 10 / 20 / 30
        let low = engine
            .define_view(
                "low",
                "accounts",
                &ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(10))),
            )
            .unwrap();
        // First read materializes one window — for the single shard the
        // key bound can touch; the other three are pruned uncloned.
        assert_eq!(low.get().unwrap().len(), 10);
        let m = engine.metrics();
        assert_eq!(m.view.rebuilds, 1);
        assert_eq!(m.view.shards_pruned, 3);

        // Commits inside the window maintain it incrementally; commits
        // on pruned shards never even reach the propagator.
        engine
            .transact_keys(&[row![5]], 4, |db| {
                db.table_mut("accounts")?.upsert(row![5, "in", 1])?;
                Ok(())
            })
            .unwrap();
        engine
            .transact_keys(&[row![35]], 4, |db| {
                db.table_mut("accounts")?.upsert(row![35, "out", 1])?;
                Ok(())
            })
            .unwrap();
        let window = low.get().unwrap();
        assert!(window.contains(&row![5, "in", 1]));
        assert_eq!(window.len(), 10);
        let m = engine.metrics();
        assert_eq!(m.view.rebuilds, 1, "steady-state reads never rebuild");
        assert_eq!(m.view.materialized_reads, 1);
        assert_eq!(
            m.view.deltas_applied, 1,
            "only the in-window commit drained"
        );

        // Writes through the pruned view snapshot one shard end to end.
        low.edit(|v| Ok(v.upsert(row![6, "via-view", 2]).map(|_| ())?))
            .unwrap();
        assert_eq!(engine.metrics().shard.single_shard_commits, 3);

        // A split invalidates the windows (new epoch); the next read
        // rebuilds once and the window stays exact.
        engine.split_shard(row![5]).unwrap();
        let window = low.get().unwrap();
        assert_eq!(window.len(), 10);
        assert!(window.contains(&row![6, "via-view", 2]));
        assert_eq!(engine.metrics().view.rebuilds, 2);

        // An insert through the view that strays outside the key bounds
        // widens the snapshot and still commits (pruning is never a
        // behaviour change).
        low.edit(|v| Ok(v.upsert(row![25, "stray", 9]).map(|_| ())?))
            .unwrap();
        assert!(engine
            .table("accounts")
            .unwrap()
            .contains(&row![25, "stray", 9]));
    }

    #[test]
    fn topology_manifest_round_trips() {
        let dir = std::env::temp_dir().join(format!("esm-topology-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let router = ShardRouter::from_splits(vec![row![10], row!["m\tid"]]).unwrap();
        write_topology(&dir, 7, &router, &[0, 3, 2]).unwrap();
        let (next_id, read_router, ids) = read_topology(&dir).unwrap();
        assert_eq!(next_id, 7);
        assert_eq!(read_router, router);
        assert_eq!(ids, vec![0, 3, 2]);
        // Torn manifests are rejected loudly.
        std::fs::write(
            dir.join(TOPOLOGY_FILE),
            "!topology\nnext_id 1\nshard 0 rest\n",
        )
        .unwrap();
        assert!(matches!(
            read_topology(&dir),
            Err(EngineError::WalCorrupt(msg)) if msg.contains("!end")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reserved_table_names_are_rejected_up_front() {
        let mut db = Database::new();
        let schema = Schema::build(&[("id", ValueType::Int)], &["id"]).unwrap();
        db.create_table("!sneaky", Table::new(schema)).unwrap();
        assert!(matches!(
            ShardedEngineServer::new(db, 2),
            Err(EngineError::ReservedTableName(_))
        ));
    }
}
