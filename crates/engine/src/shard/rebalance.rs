//! Online shard rebalancing: split a hot shard at a key, merge adjacent
//! cold ones — while the rest of the engine keeps committing.
//!
//! Both operations take the topology **write** lock as a brief write
//! fence (transactions hold it for read across an attempt, so in-flight
//! commits drain first and new ones queue), move rows *through the
//! WAL* — the donor logs a deletion delta, the receiver's data arrives
//! as its genesis checkpoint (split) or a logged insertion delta
//! (merge) — and finish by atomically rewriting the topology manifest.
//! Every shard's replay law (`wal.replay(baseline) == live piece`)
//! therefore survives rebalancing.
//!
//! ## Crash safety (durable engines)
//!
//! The steps are ordered so that a crash anywhere leaves a recoverable
//! directory, with [`crate::shard::ShardedEngineServer::recover_with`]
//! finishing the job:
//!
//! * **Split** — ① create the new shard directory (genesis = the moved
//!   rows) → ② rewrite the topology → ③ log the deletion on the donor.
//!   Crash after ① : the topology never published the directory;
//!   recovery sweeps it. Crash after ②: the donor still holds the moved
//!   rows, but they are outside its range now; recovery prunes them
//!   (the new shard is the owner and has the data).
//! * **Merge** — ① log the insertion on the surviving shard → ② rewrite
//!   the topology (dropping the donor) → ③ delete the donor's
//!   directory. Crash after ①: the survivor holds rows outside its
//!   still-unchanged range; recovery prunes them (the donor still owns
//!   them). Crash after ②: the donor's directory is an orphan; recovery
//!   sweeps it.
//!
//! Rows are therefore never lost and never end up owned twice.

use std::sync::atomic::Ordering;

use esm_store::{Database, Delta, Row, Table};

use crate::error::EngineError;
use crate::shard::shard::{GroupEnd, Shard};
use crate::shard::{shard_config, write_topology, ShardedEngineServer};

impl ShardedEngineServer {
    /// Split the shard owning `at` into two at key `at`: the shard keeps
    /// `[lo, at)`, a fresh shard takes `[at, hi)` (receiving the rows in
    /// that range). Returns the new shard's topology index. The affected
    /// key range is write-fenced for the duration; other shards keep
    /// committing the moment the fence lifts.
    pub fn split_shard(&self, at: Row) -> Result<usize, EngineError> {
        let mut topo = self.inner.topology.write().expect("topology lock poisoned");
        let source_index = topo.router.shard_of(&at);
        let source = topo.shards[source_index].clone();
        let mut state = source.write();

        // The moved piece: every table's rows with key >= at (all of the
        // donor's keys are < its upper bound, so this is exactly
        // [at, hi)), with secondary indexes carried over.
        let mut moved_piece = Database::new();
        let mut deletions: Vec<(String, Delta)> = Vec::new();
        let mut moved_rows = 0u64;
        for name in state.db.table_names().into_iter().map(String::from) {
            let table = state.db.table(&name)?;
            let moved: Vec<Row> = table.rows_in_key_range(Some(&at), None).cloned().collect();
            let mut piece = Table::new(table.schema().clone());
            for row in &moved {
                piece.insert(row.clone())?;
            }
            for col in table.indexed_columns().into_iter().map(String::from) {
                piece.create_index(&col)?;
            }
            moved_piece.replace_table(name.clone(), piece);
            if !moved.is_empty() {
                moved_rows += moved.len() as u64;
                deletions.push((
                    name,
                    Delta {
                        inserted: vec![],
                        deleted: moved,
                    },
                ));
            }
        }

        // ① the new shard exists (durably, if we persist) …
        let new_id = self.inner.next_shard_id.fetch_add(1, Ordering::SeqCst);
        let new_shard = match &self.inner.durable_base {
            Some(base) => Shard::create_durable(new_id, moved_piece, shard_config(base, new_id))?,
            None => Shard::new_in_memory(new_id, moved_piece),
        };
        if let Some(d) = new_shard.write().durable.as_mut() {
            d.set_telemetry(Some(std::sync::Arc::clone(&self.inner.telemetry)));
        }

        // … ② the topology names it as the owner of [at, hi) …
        let mut router = topo.router.clone();
        let new_index = router.split_at(at)?;
        debug_assert_eq!(new_index, source_index + 1);
        if let Some(base) = &self.inner.durable_base {
            let mut ids: Vec<u64> = topo.shards.iter().map(Shard::id).collect();
            ids.insert(new_index, new_id);
            write_topology(
                &base.dir,
                self.inner.next_shard_id.load(Ordering::SeqCst),
                &router,
                &ids,
            )?;
        }

        // … ③ and the donor logs the rows out of its range.
        if !deletions.is_empty() {
            state.append_group(&deletions, GroupEnd::Commit, true)?;
        }
        state.sync()?;
        drop(state);

        topo.router = router;
        topo.shards.insert(new_index, new_shard);
        // Materialized view windows hold per-shard WAL cursors; a layout
        // change invalidates them (they rebuild on next read).
        topo.epoch += 1;
        self.inner.shard_metrics.split(moved_rows);
        Ok(new_index)
    }

    /// Merge shard `left + 1` into shard `left` (adjacent key ranges
    /// fuse; the donor's rows move into the survivor through its WAL and
    /// the donor is retired). The two ranges are write-fenced for the
    /// duration.
    pub fn merge_shards(&self, left: usize) -> Result<(), EngineError> {
        let mut topo = self.inner.topology.write().expect("topology lock poisoned");
        if left + 1 >= topo.shards.len() {
            return Err(EngineError::ShardTopology(format!(
                "cannot merge shard {} into {left}: topology has {}",
                left + 1,
                topo.shards.len()
            )));
        }
        let survivor = topo.shards[left].clone();
        let donor = topo.shards[left + 1].clone();
        let mut survivor_state = survivor.write();
        let donor_state = donor.write();

        // ① the survivor logs (and applies) the donor's rows …
        let mut insertions: Vec<(String, Delta)> = Vec::new();
        let mut moved_rows = 0u64;
        for name in donor_state.db.table_names().into_iter().map(String::from) {
            let rows: Vec<Row> = donor_state.db.table(&name)?.rows().cloned().collect();
            if !rows.is_empty() {
                moved_rows += rows.len() as u64;
                insertions.push((
                    name,
                    Delta {
                        inserted: rows,
                        deleted: vec![],
                    },
                ));
            }
        }
        if !insertions.is_empty() {
            survivor_state.append_group(&insertions, GroupEnd::Commit, true)?;
        }
        survivor_state.sync()?;

        // … ② the topology forgets the donor …
        let mut router = topo.router.clone();
        router.merge_into(left)?;
        if let Some(base) = &self.inner.durable_base {
            let ids: Vec<u64> = topo
                .shards
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != left + 1)
                .map(|(_, s)| s.id())
                .collect();
            write_topology(
                &base.dir,
                self.inner.next_shard_id.load(Ordering::SeqCst),
                &router,
                &ids,
            )?;
        }

        // … ③ and the donor's directory is retired.
        if let Some(base) = &self.inner.durable_base {
            std::fs::remove_dir_all(shard_config(base, donor.id()).dir)?;
        }
        drop(donor_state);
        drop(survivor_state);

        topo.router = router;
        topo.shards.remove(left + 1);
        topo.epoch += 1;
        self.inner.shard_metrics.merge(moved_rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardRouter;
    use esm_store::{row, Schema, ValueType};

    fn seed_db(n: i64) -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let rows: Vec<Row> = (0..n).map(|i| row![i, format!("r{i}")]).collect();
        let mut db = Database::new();
        db.create_table("kv", Table::from_rows(schema, rows).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn split_moves_the_upper_range_and_keeps_laws() {
        let engine = ShardedEngineServer::with_router(
            seed_db(40),
            ShardRouter::uniform_int(2, 0, 40).unwrap(),
        )
        .unwrap();
        let before = engine.snapshot();
        let new_index = engine.split_shard(row![30]).unwrap();
        assert_eq!(new_index, 2);
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.snapshot(), before, "a split changes no data");
        {
            let topo = engine.topology();
            assert_eq!(topo.shards[1].read().db.table("kv").unwrap().len(), 10);
            assert_eq!(topo.shards[2].read().db.table("kv").unwrap().len(), 10);
            // Per-shard replay laws survive the move.
            for shard in &topo.shards {
                assert_eq!(shard.recovered_database().unwrap(), shard.read().db);
            }
        }
        assert_eq!(engine.metrics().shard.splits, 1);
        assert_eq!(engine.metrics().shard.rows_migrated, 10);
        // Traffic routes to the new shard.
        let receipt = engine
            .transact_keys(&[row![35]], 1, |db| {
                db.table_mut("kv")?.upsert(row![35, "after"])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(receipt.shards, vec![2]);
    }

    #[test]
    fn merge_fuses_adjacent_ranges() {
        let engine = ShardedEngineServer::with_router(
            seed_db(40),
            ShardRouter::uniform_int(4, 0, 40).unwrap(),
        )
        .unwrap();
        let before = engine.snapshot();
        engine.merge_shards(1).unwrap();
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.snapshot(), before, "a merge changes no data");
        {
            let topo = engine.topology();
            assert_eq!(topo.shards[1].read().db.table("kv").unwrap().len(), 20);
            for shard in &topo.shards {
                assert_eq!(shard.recovered_database().unwrap(), shard.read().db);
            }
        }
        assert_eq!(engine.metrics().shard.merges, 1);
        assert!(engine.merge_shards(2).is_err(), "no right neighbour");
    }

    #[test]
    fn split_then_merge_round_trips() {
        let engine = ShardedEngineServer::with_router(
            seed_db(20),
            ShardRouter::uniform_int(2, 0, 20).unwrap(),
        )
        .unwrap();
        let before = engine.snapshot();
        let idx = engine.split_shard(row![15]).unwrap();
        engine.merge_shards(idx - 1).unwrap();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(engine.snapshot(), before);
        assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
    }
}
