//! [`Engine`]: the one public surface every engine implementation
//! serves.
//!
//! The paper's entangled state monads are *client handles* onto shared
//! hidden state; nothing about the handle says where that state lives.
//! This module makes the engine side of that contract a trait: an
//! [`Engine`] owns base tables and named bidirectional views, commits
//! transactions with first-committer-wins, and answers reads from
//! maintained materialized windows. Three implementations share it:
//!
//! * [`crate::EngineServer`] — one lock-striped in-process engine;
//! * [`crate::shard::ShardedEngineServer`] — key-range shards with
//!   cross-shard two-phase commit;
//! * `RemoteEngine` (the `esm-net` crate) — the same surface spoken
//!   over a length-prefixed socket protocol, so an
//!   [`crate::EntangledView`] is **host-location-oblivious**: the same
//!   client code (and the same conformance suite, see
//!   [`crate::testkit`]) runs in-process and across a wire.
//!
//! The trait is object safe: clients hold `Arc<dyn Engine>` and never
//! know which implementation answers. Closure-taking methods accept
//! `&dyn Fn` for that reason; the concrete engines also keep their
//! generic inherent methods, which these trait methods forward to.

use std::collections::BTreeMap;
use std::sync::Arc;

use esm_relational::ViewDef;
use esm_store::{Database, Delta, Table};

use crate::error::EngineError;
use crate::metrics::MetricsSnapshot;
use crate::sub::{CommitNotifier, ViewDeltas};
use crate::view::EntangledView;

/// A shared, dynamically dispatched engine handle — what an
/// [`EntangledView`] and a [`crate::Session`] hold.
pub type ArcEngine = Arc<dyn Engine>;

/// What a committed transaction did: its position in the engine-wide
/// serialization order, the shards it touched, and the per-table deltas.
#[derive(Debug, Clone)]
pub struct CommitReceipt {
    /// Commit stamp: taken while every participant lock was held, so
    /// sorting receipts by stamp is a valid serialization order of the
    /// workload (the model-based suite re-executes it single-threaded).
    /// On an unsharded engine this is the WAL sequence number of the
    /// transaction's terminator record.
    pub stamp: u64,
    /// Topology indexes of the shards the transaction wrote (empty on an
    /// unsharded engine).
    pub shards: Vec<usize>,
    /// The committed per-table deltas (merged across shards).
    pub deltas: BTreeMap<String, Delta>,
    /// The global transaction id, for cross-shard commits.
    pub gtx: Option<String>,
}

/// Validate and apply one table's client-computed delta in place: every
/// row must fit the schema's arity (wire-decoded deltas arrive
/// unvalidated), every deleted row must still be present exactly as the
/// client saw it (its pre-image), and every inserted key must be free
/// once the pre-images are gone. [`Delta::between`] renders a
/// modification as delete(old) + insert(new), so this is
/// first-committer-wins at row granularity against the client's
/// snapshot.
pub fn apply_table_delta_checked(
    table: &mut Table,
    name: &str,
    delta: &Delta,
) -> Result<(), EngineError> {
    let arity = table.schema().columns().len();
    for row in delta.deleted.iter().chain(delta.inserted.iter()) {
        if row.len() != arity {
            return Err(EngineError::Store(esm_store::StoreError::Arity {
                expected: arity,
                got: row.len(),
            }));
        }
    }
    for row in &delta.deleted {
        let key = table.key_of(row);
        if table.get_by_key(&key) != Some(row) {
            return Err(EngineError::Conflict {
                table: name.to_string(),
                detail: format!("pre-image of key {key:?} changed since the client's snapshot"),
            });
        }
    }
    for row in &delta.deleted {
        let key = table.key_of(row);
        table.delete_by_key(&key);
    }
    for row in &delta.inserted {
        let key = table.key_of(row);
        if table.get_by_key(&key).is_some() {
            return Err(EngineError::Conflict {
                table: name.to_string(),
                detail: format!("key {key:?} was created concurrently"),
            });
        }
        table.upsert(row.clone())?;
    }
    Ok(())
}

/// [`apply_table_delta_checked`] over a whole database — the body the
/// default [`Engine::commit_checked`] runs inside `transact`.
pub fn apply_deltas_checked(
    db: &mut Database,
    deltas: &[(String, Delta)],
) -> Result<(), EngineError> {
    for (name, delta) in deltas {
        apply_table_delta_checked(db.table_mut(name)?, name, delta)?;
    }
    Ok(())
}

/// A concurrent, transactional, bidirectional database engine.
///
/// One trait, three hosts (in-process, sharded, remote): every method a
/// client needs to run the paper's entangled sessions against shared
/// state lives here, and nothing engine-shape-specific does. Sharded
/// topology control (`split_shard`, `merge_shards`), durability tuning
/// and recovery stay inherent methods of the concrete types — they are
/// operator surface, not client surface.
pub trait Engine: Send + Sync + std::fmt::Debug {
    /// This engine as a shared dynamic handle. Implementations are cheap
    /// clone-able facades, so this is one `Arc::new(self.clone())`.
    fn as_engine(&self) -> ArcEngine;

    /// Registered table names, sorted.
    ///
    /// Fallible (like every getter below): in-process engines always
    /// succeed, but the remote engine surfaces transport failures as
    /// [`EngineError`] instead of panicking inside the client.
    fn table_names(&self) -> Result<Vec<String>, EngineError>;

    /// A snapshot of one base table.
    fn table(&self, name: &str) -> Result<Table, EngineError>;

    /// A snapshot of the whole database (consistency per implementation:
    /// the sharded engine holds all shard read locks together; the
    /// unsharded engine is atomic per stripe).
    fn snapshot(&self) -> Result<Database, EngineError>;

    /// Compile and register a named entangled view over `table`,
    /// returning a client handle. The view is validated against the
    /// current table state, select-constrained columns get secondary
    /// indexes, and the window is materialized for delta maintenance.
    fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError>;

    /// A client handle onto an already-registered view.
    fn view(&self, name: &str) -> Result<EntangledView, EngineError>;

    /// Registered view names, sorted.
    fn view_names(&self) -> Result<Vec<String>, EngineError>;

    /// Read a view against the current base state, served from its
    /// maintained materialized window — O(changes since the last read).
    fn read_view(&self, name: &str) -> Result<Table, EngineError>;

    /// Write an edited view back (lens `put`, replaces the whole visible
    /// window; last-writer-wins between racing putters). Returns the
    /// base-table delta the write committed.
    fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError>;

    /// Transactionally edit a view: read, apply `edit`, write back,
    /// revalidating first-committer-wins, retrying up to `attempts`
    /// times. Returns the committed base-table delta.
    fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: &dyn Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError>;

    /// Run `body` in a snapshot transaction over the whole database,
    /// retrying first-committer-wins conflicts up to `max_attempts`
    /// times. Multi-table writes commit atomically (chained WAL records
    /// in-process; two-phase commit across shards).
    fn transact(
        &self,
        max_attempts: u32,
        body: &dyn Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError>;

    /// Commit client-computed per-table deltas in one atomic
    /// transaction, validating each row against its pre-image
    /// ([`apply_table_delta_checked`]) — the wire protocol's commit
    /// primitive, where the client's snapshot cannot travel back with
    /// the request. The default runs one `transact` attempt (a conflict
    /// means the client must re-snapshot, so server-side retries are
    /// useless); implementations may override with a delta-direct path
    /// that avoids whole-database snapshots.
    fn commit_checked(&self, deltas: &[(String, Delta)]) -> Result<CommitReceipt, EngineError> {
        self.transact(1, &|db: &mut Database| apply_deltas_checked(db, deltas))
    }

    /// Current engine counters.
    fn metrics(&self) -> Result<MetricsSnapshot, EngineError>;

    /// A point-in-time copy of the engine's phase-latency histograms
    /// and slow-op ring ([`esm_obs::TelemetrySnapshot`]). In-process
    /// engines snapshot their live registry; the remote engine fetches
    /// the server's snapshot over the wire (`STATS`).
    fn telemetry(&self) -> Result<esm_obs::TelemetrySnapshot, EngineError>;

    /// A copy of the engine's trace rings ([`esm_obs::TraceReport`]):
    /// the causal span trees head-sampled or tail-captured by the
    /// registry. In-process engines report their live registry; the
    /// remote engine fetches the server's report over the wire
    /// (`TRACE`).
    fn traces(&self) -> Result<esm_obs::TraceReport, EngineError>;

    /// The live telemetry registry locally backing this engine, when
    /// one exists — what a [`crate::Session`] mints trace roots from
    /// (head sampling). The remote engine returns its own client-local
    /// registry: client-side spans and the sampling decision live
    /// there, and the wire carries the context to the server.
    fn telemetry_handle(&self) -> Option<Arc<esm_obs::Telemetry>> {
        None
    }

    /// Write a durable checkpoint covering every committed record and
    /// compact fully-covered segments. Returns the lowest covered
    /// sequence number across the engine's logs, or `None` for
    /// in-memory engines.
    fn checkpoint(&self) -> Result<Option<u64>, EngineError>;

    /// Force-fsync any group-commit batch the durable log is holding.
    /// No-op for in-memory engines.
    fn sync_wal(&self) -> Result<(), EngineError>;

    // ------------------------------------------------------------------
    // Subscriptions (see [`crate::sub`]).
    // ------------------------------------------------------------------

    /// The commit signal a push pump parks on, when this engine can
    /// provide one. `None` (the default) means commits cannot be waited
    /// on — a server can still fan out after requests it handled itself.
    fn commit_notifier(&self) -> Option<Arc<CommitNotifier>> {
        None
    }

    /// A fresh subscription cursor for view `name`: drains from here
    /// miss nothing committed after this call. The default — for
    /// engines without incremental drain support — validates the view
    /// and pins the cursor at 0, which makes every later drain a
    /// full-window resync.
    fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        self.read_view(name).map(|_| 0)
    }

    /// Everything settled past `cursor` for view `name`, as one
    /// coalesced [`ViewDeltas`] batch — the subscription fan-out
    /// primitive. Engines with a WAL drain this O(delta); the default
    /// conservatively re-serves the whole window as a resync batch
    /// (correct for any engine, never incremental).
    fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        let window = self.read_view(name)?;
        Ok(ViewDeltas {
            from_seq: cursor,
            to_seq: cursor,
            delta: Delta::empty(),
            resync: Some(window),
        })
    }

    // ------------------------------------------------------------------
    // Replication (see [`crate::repl`]).
    // ------------------------------------------------------------------

    /// A WAL-shipping source over this engine's durable log, when it can
    /// act as a replication primary. `None` (the default) means this
    /// engine cannot be replicated from — in-memory engines, replicas,
    /// and the unsharded server. The net layer routes the `REPL_*` verbs
    /// through this.
    fn repl_source(&self) -> Option<Arc<dyn crate::repl::WalSource>> {
        None
    }
}

impl Engine for crate::EngineServer {
    fn as_engine(&self) -> ArcEngine {
        Arc::new(self.clone())
    }

    fn table_names(&self) -> Result<Vec<String>, EngineError> {
        Ok(crate::EngineServer::table_names(self))
    }

    fn table(&self, name: &str) -> Result<Table, EngineError> {
        crate::EngineServer::table(self, name)
    }

    fn snapshot(&self) -> Result<Database, EngineError> {
        Ok(crate::EngineServer::snapshot(self))
    }

    fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        crate::EngineServer::define_view(self, name, table, def)
    }

    fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        crate::EngineServer::view(self, name)
    }

    fn view_names(&self) -> Result<Vec<String>, EngineError> {
        Ok(crate::EngineServer::view_names(self))
    }

    fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        crate::EngineServer::read_view(self, name)
    }

    fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        crate::EngineServer::write_view(self, name, view)
    }

    fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: &dyn Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        crate::EngineServer::edit_view_optimistic(self, name, attempts, edit)
    }

    fn transact(
        &self,
        max_attempts: u32,
        body: &dyn Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        crate::EngineServer::transact(self, max_attempts, body)
    }

    fn commit_checked(&self, deltas: &[(String, Delta)]) -> Result<CommitReceipt, EngineError> {
        crate::EngineServer::commit_deltas_checked(self, deltas)
    }

    fn metrics(&self) -> Result<MetricsSnapshot, EngineError> {
        Ok(crate::EngineServer::metrics(self))
    }

    fn telemetry(&self) -> Result<esm_obs::TelemetrySnapshot, EngineError> {
        Ok(crate::EngineServer::telemetry(self))
    }

    fn traces(&self) -> Result<esm_obs::TraceReport, EngineError> {
        Ok(crate::EngineServer::telemetry_registry(self).traces_report())
    }

    fn telemetry_handle(&self) -> Option<Arc<esm_obs::Telemetry>> {
        Some(Arc::clone(crate::EngineServer::telemetry_registry(self)))
    }

    fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        crate::EngineServer::checkpoint(self)
    }

    fn sync_wal(&self) -> Result<(), EngineError> {
        crate::EngineServer::sync_wal(self)
    }

    fn commit_notifier(&self) -> Option<Arc<CommitNotifier>> {
        Some(crate::EngineServer::commit_notifier(self))
    }

    fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        crate::EngineServer::view_cursor(self, name)
    }

    fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        crate::EngineServer::view_deltas_since(self, name, cursor)
    }
}

impl Engine for crate::shard::ShardedEngineServer {
    fn as_engine(&self) -> ArcEngine {
        Arc::new(self.clone())
    }

    fn table_names(&self) -> Result<Vec<String>, EngineError> {
        Ok(crate::shard::ShardedEngineServer::table_names(self))
    }

    fn table(&self, name: &str) -> Result<Table, EngineError> {
        crate::shard::ShardedEngineServer::table(self, name)
    }

    fn snapshot(&self) -> Result<Database, EngineError> {
        Ok(crate::shard::ShardedEngineServer::snapshot(self))
    }

    fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        crate::shard::ShardedEngineServer::define_view(self, name, table, def)
    }

    fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        crate::shard::ShardedEngineServer::view(self, name)
    }

    fn view_names(&self) -> Result<Vec<String>, EngineError> {
        Ok(crate::shard::ShardedEngineServer::view_names(self))
    }

    fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        crate::shard::ShardedEngineServer::read_view(self, name)
    }

    fn write_view(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        crate::shard::ShardedEngineServer::write_view(self, name, view)
    }

    fn edit_view_optimistic(
        &self,
        name: &str,
        attempts: u32,
        edit: &dyn Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        crate::shard::ShardedEngineServer::edit_view_optimistic(self, name, attempts, edit)
    }

    fn transact(
        &self,
        max_attempts: u32,
        body: &dyn Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        crate::shard::ShardedEngineServer::transact(self, max_attempts, body)
    }

    fn commit_checked(&self, deltas: &[(String, Delta)]) -> Result<CommitReceipt, EngineError> {
        // Declare the touched keys so only their shards are snapshotted
        // and locked (the single-shard fast path end to end for most
        // remote commits); validation still runs row-for-row against
        // the pre-images inside the engine's own transaction.
        crate::shard::ShardedEngineServer::commit_deltas_checked(self, deltas)
    }

    fn metrics(&self) -> Result<MetricsSnapshot, EngineError> {
        Ok(crate::shard::ShardedEngineServer::metrics(self))
    }

    fn telemetry(&self) -> Result<esm_obs::TelemetrySnapshot, EngineError> {
        Ok(crate::shard::ShardedEngineServer::telemetry(self))
    }

    fn traces(&self) -> Result<esm_obs::TraceReport, EngineError> {
        Ok(crate::shard::ShardedEngineServer::telemetry_registry(self).traces_report())
    }

    fn telemetry_handle(&self) -> Option<Arc<esm_obs::Telemetry>> {
        Some(Arc::clone(
            crate::shard::ShardedEngineServer::telemetry_registry(self),
        ))
    }

    fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        // The trait reports one covering floor: the lowest covered seq
        // across the per-shard logs (each shard checkpoints its own).
        Ok(crate::shard::ShardedEngineServer::checkpoint(self)?
            .and_then(|seqs| seqs.into_iter().min()))
    }

    fn sync_wal(&self) -> Result<(), EngineError> {
        crate::shard::ShardedEngineServer::sync_wal(self)
    }

    fn commit_notifier(&self) -> Option<Arc<CommitNotifier>> {
        Some(crate::shard::ShardedEngineServer::commit_notifier(self))
    }

    fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        crate::shard::ShardedEngineServer::view_cursor(self, name)
    }

    fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        crate::shard::ShardedEngineServer::view_deltas_since(self, name, cursor)
    }

    fn repl_source(&self) -> Option<Arc<dyn crate::repl::WalSource>> {
        crate::repl::PrimaryWalSource::over(self)
            .map(|s| Arc::new(s) as Arc<dyn crate::repl::WalSource>)
    }
}
