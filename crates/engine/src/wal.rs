//! The write-ahead log: an append-only sequence of committed operations.
//!
//! Every committed transaction appends one [`WalRecord`] per table it
//! changed. The log is the engine's source of truth for recovery: applying
//! the records, in order, to a baseline database (the schemas plus the
//! state the log started from) reproduces the live state exactly
//! ([`Wal::replay`]), which the integration suite asserts as a law.
//!
//! This module is the *in-memory* log; [`crate::durable`] persists the
//! same records to append-only segment files with group commit and
//! checkpointing.
//!
//! ## Record kinds ([`WalOp`])
//!
//! * [`WalOp::Delta`] — one committed delta against one table. The
//!   `chained` flag links multi-record transactions: a transaction that
//!   changed `k > 1` tables appends `k - 1` *chained* records followed by
//!   one unchained terminator, and the whole chain is the durability unit
//!   (recovery applies a chain all-or-nothing; an unterminated trailing
//!   chain is an interrupted transaction and is discarded).
//! * [`WalOp::Prepare`] — two-phase-commit marker: the immediately
//!   preceding chain of delta records belongs to global transaction
//!   `gtx` and is *in doubt* — held, not applied — until resolved.
//! * [`WalOp::Resolve`] — the 2PC outcome for `gtx`: apply the prepared
//!   chain (`committed = true`) or drop it. A prepare with no resolve by
//!   the end of the log is presumed aborted (the sharded recovery decides
//!   the real outcome by scanning *all* shard logs — see
//!   [`crate::shard`]).
//!
//! ## Text format
//!
//! [`Wal::encode`] renders a line-oriented text form:
//!
//! ```text
//! #<seq> <table> +<inserted> -<deleted>      delta record header
//! #<seq>* <table> +<inserted> -<deleted>     chained delta (more follow)
//! + <cell>\t<cell>...                        inserted rows
//! - <cell>\t<cell>...                        deleted rows
//! #<seq> !prepare <records> <gtx>            2PC prepare marker
//! #<seq> !resolve commit|abort <gtx>         2PC resolution marker
//! ```
//!
//! Cells use the shared [`esm_store::codec`] (type tags `b:`/`i:`/`s:`,
//! strings escape `\\`, tab, newline and carriage return), so decoding
//! needs no schema. Table names starting with `!` are **reserved** for
//! markers; the engine refuses to serve databases containing them (see
//! [`reserved_table_name`]). [`Wal::decode`] round-trips exactly and
//! rejects malformed input with
//! [`EngineError::WalCorrupt`](crate::EngineError::WalCorrupt); records
//! whose sequence numbers do not strictly increase are rejected with the
//! typed [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq)
//! instead of being silently re-applied.

use std::collections::BTreeMap;

use esm_store::codec::{decode_row, encode_row, escape, unescape};
use esm_store::{Database, Delta, Row};

use crate::error::EngineError;

/// Is `name` reserved for WAL markers (and therefore unusable as a table
/// name)? Names starting with `!` would be ambiguous with the marker
/// headers in the text format.
pub fn reserved_table_name(name: &str) -> bool {
    name.starts_with('!')
}

/// Reject databases whose table names collide with the marker namespace.
pub(crate) fn check_table_names(db: &Database) -> Result<(), EngineError> {
    for name in db.table_names() {
        if reserved_table_name(name) {
            return Err(EngineError::ReservedTableName(name.to_string()));
        }
    }
    Ok(())
}

/// What one WAL record does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// One committed delta against one table.
    Delta {
        /// The table the delta applies to.
        table: String,
        /// The committed change.
        delta: Delta,
        /// More records of the same transaction follow (the chain is
        /// applied all-or-nothing on recovery).
        chained: bool,
    },
    /// 2PC prepare: the preceding chain of `records` delta records
    /// belongs to global transaction `gtx`, in doubt until resolved.
    Prepare {
        /// The global transaction id.
        gtx: String,
        /// How many delta records the prepared chain holds (a
        /// consistency check for recovery).
        records: u64,
    },
    /// 2PC outcome for `gtx`.
    Resolve {
        /// The global transaction id.
        gtx: String,
        /// Apply the prepared chain (`true`) or drop it (`false`).
        committed: bool,
    },
}

/// One entry of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number (1-based, strictly increasing).
    pub seq: u64,
    /// What the record does.
    pub op: WalOp,
}

impl WalRecord {
    /// An unchained delta record (a complete single-record transaction).
    pub fn delta(seq: u64, table: impl Into<String>, delta: Delta) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Delta {
                table: table.into(),
                delta,
                chained: false,
            },
        }
    }

    /// A chained delta record (more records of the same transaction
    /// follow).
    pub fn chained(seq: u64, table: impl Into<String>, delta: Delta) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Delta {
                table: table.into(),
                delta,
                chained: true,
            },
        }
    }

    /// A 2PC prepare marker.
    pub fn prepare(seq: u64, gtx: impl Into<String>, records: u64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Prepare {
                gtx: gtx.into(),
                records,
            },
        }
    }

    /// A 2PC resolution marker.
    pub fn resolve(seq: u64, gtx: impl Into<String>, committed: bool) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Resolve {
                gtx: gtx.into(),
                committed,
            },
        }
    }

    /// The `(table, delta)` of a delta record (chained or not); `None`
    /// for markers. First-committer-wins validation scans with this:
    /// markers never conflict.
    pub fn delta_op(&self) -> Option<(&str, &Delta)> {
        match &self.op {
            WalOp::Delta { table, delta, .. } => Some((table, delta)),
            _ => None,
        }
    }

    /// Render this record in the WAL text format (used by both
    /// [`Wal::encode`] and the durable segment writer, so the segment
    /// payload bytes and the in-memory encoding never diverge; segments
    /// additionally wrap each record in a CRC frame — see
    /// [`crate::segment`]).
    pub fn encode(&self) -> String {
        match &self.op {
            WalOp::Delta {
                table,
                delta,
                chained,
            } => {
                let mut out = format!(
                    "#{}{} {} +{} -{}\n",
                    self.seq,
                    if *chained { "*" } else { "" },
                    escape(table),
                    delta.inserted.len(),
                    delta.deleted.len()
                );
                for row in &delta.inserted {
                    out.push_str(&format!("+ {}\n", encode_row(row)));
                }
                for row in &delta.deleted {
                    out.push_str(&format!("- {}\n", encode_row(row)));
                }
                out
            }
            WalOp::Prepare { gtx, records } => {
                format!("#{} !prepare {} {}\n", self.seq, records, escape(gtx))
            }
            WalOp::Resolve { gtx, committed } => format!(
                "#{} !resolve {} {}\n",
                self.seq,
                if *committed { "commit" } else { "abort" },
                escape(gtx)
            ),
        }
    }
}

/// A decoded record header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum HeaderLine {
    /// `#<seq>[*] <table> +<n> -<m>` — `n` inserted and `m` deleted row
    /// lines follow.
    Delta {
        seq: u64,
        table: String,
        inserted: usize,
        deleted: usize,
        chained: bool,
    },
    /// A marker record (no body lines follow).
    Marker(WalRecord),
}

/// An append-only log of committed operations.
///
/// A log may start *after* genesis: a recovered engine's in-memory log
/// begins at the sequence number its checkpoint covered
/// ([`Wal::starting_at`]), so freshly assigned numbers continue the
/// durable history instead of restarting from 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    records: Vec<WalRecord>,
    /// The sequence number this log starts after (0 = genesis): every
    /// record satisfies `seq > start`.
    start: u64,
}

impl Wal {
    /// An empty log starting at genesis.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// An empty log whose first append will get `seq + 1` — the shape of
    /// a recovered engine's log, which continues after its checkpoint.
    pub fn starting_at(seq: u64) -> Wal {
        Wal {
            records: Vec::new(),
            start: seq,
        }
    }

    /// Build a log from records. The records are *not* validated here;
    /// [`Wal::replay`] enforces strict seq monotonicity when the log is
    /// actually applied, so a log stitched together from overlapping
    /// segments fails loudly instead of double-applying deltas.
    pub fn from_records(records: Vec<WalRecord>) -> Wal {
        Wal { records, start: 0 }
    }

    /// Append a committed delta (a complete single-record transaction),
    /// returning its sequence number. Panics on a reserved table name
    /// (names starting with `!` — engine constructors reject these up
    /// front, see [`reserved_table_name`]).
    pub fn append(&mut self, table: impl Into<String>, delta: Delta) -> u64 {
        let table = table.into();
        assert!(
            !reserved_table_name(&table),
            "table names starting with '!' are reserved for WAL markers"
        );
        let seq = self.next_seq();
        self.records.push(WalRecord::delta(seq, table, delta));
        seq
    }

    /// Append a pre-sequenced record, rejecting any seq that does not
    /// strictly increase the log with
    /// [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq),
    /// and reserved table names with
    /// [`EngineError::ReservedTableName`](crate::EngineError::ReservedTableName).
    pub fn push(&mut self, record: WalRecord) -> Result<u64, EngineError> {
        let last = self.last_seq();
        if record.seq <= last {
            return Err(EngineError::DuplicateSeq {
                seq: record.seq,
                last,
            });
        }
        if let WalOp::Delta { table, .. } = &record.op {
            if reserved_table_name(table) {
                return Err(EngineError::ReservedTableName(table.clone()));
            }
        }
        let seq = record.seq;
        self.records.push(record);
        Ok(seq)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.last_seq() + 1
    }

    /// The highest committed sequence number (the start offset when
    /// empty; 0 for an empty genesis log).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(self.start)
    }

    /// The sequence number this log starts after (0 = genesis).
    pub fn start_seq(&self) -> u64 {
        self.start
    }

    /// All records, in commit order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Records committed after `seq`, in commit order.
    pub fn records_after(&self, seq: u64) -> &[WalRecord] {
        let start = self.records.partition_point(|r| r.seq <= seq);
        &self.records[start..]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The largest sequence number `<= upto` that lies on a **settled
    /// transaction boundary**: every chained record at or below it has
    /// its terminator at or below it, and every `!prepare` at or below
    /// it has its `!resolve` at or below it. Records up to that point
    /// can be dropped from the log (after folding them into the replay
    /// baseline) without ever splitting a transaction or discarding the
    /// only evidence of a 2PC outcome. Returns [`Wal::start_seq`] when
    /// nothing at all is settled within `upto`.
    pub fn settled_prefix_end(&self, upto: u64) -> u64 {
        let mut boundary = self.start;
        let mut open_chain = 0usize;
        let mut open_prepares = 0usize;
        let mut prepared: BTreeMap<&str, ()> = BTreeMap::new();
        for rec in &self.records {
            if rec.seq > upto {
                break;
            }
            match &rec.op {
                WalOp::Delta { chained, .. } => {
                    open_chain += 1;
                    if !chained {
                        open_chain = 0;
                    }
                }
                WalOp::Prepare { gtx, .. } => {
                    open_chain = 0;
                    if prepared.insert(gtx, ()).is_none() {
                        open_prepares += 1;
                    }
                }
                WalOp::Resolve { gtx, .. } => {
                    if prepared.remove(gtx.as_str()).is_some() {
                        open_prepares -= 1;
                    }
                }
            }
            if open_chain == 0 && open_prepares == 0 {
                boundary = rec.seq;
            }
        }
        boundary
    }

    /// Drop (and return) every record with `seq <= through`, advancing
    /// the log's start offset to `through`. The caller owns folding the
    /// returned prefix into whatever baseline it replays from —
    /// truncation alone would silently break the replay law. `through`
    /// must lie on a settled transaction boundary (see
    /// [`Wal::settled_prefix_end`]); a cut through an open chain or an
    /// unresolved prepare is refused as corruption.
    pub fn truncate_through(&mut self, through: u64) -> Result<Vec<WalRecord>, EngineError> {
        if through <= self.start {
            return Ok(Vec::new());
        }
        if self.settled_prefix_end(through) != through {
            return Err(EngineError::WalCorrupt(format!(
                "cannot truncate through seq {through}: it splits an unsettled transaction"
            )));
        }
        let cut = self.records.partition_point(|r| r.seq <= through);
        let dropped: Vec<WalRecord> = self.records.drain(..cut).collect();
        self.start = through;
        Ok(dropped)
    }

    /// Apply every record, in order, to `baseline` and return the
    /// resulting database. `baseline` must contain every table the log
    /// references (with the schemas the engine started from), and must
    /// reflect the state at this log's start offset.
    ///
    /// Replay honours the transaction structure: chained delta records
    /// buffer until their terminator and apply together; prepared chains
    /// apply at their `!resolve commit` (or drop at `!resolve abort`); a
    /// prepare with no resolution by the end of the log is presumed
    /// aborted (the coordinator never acknowledged it). An *unterminated*
    /// trailing chain is a transaction the engine could never have
    /// acknowledged either, so replay fails with
    /// [`EngineError::WalCorrupt`](crate::EngineError::WalCorrupt) —
    /// durable recovery truncates such tails before replaying.
    ///
    /// Sequence numbers must strictly increase record to record; a
    /// duplicate or stale record aborts the replay with
    /// [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq)
    /// rather than silently re-applying a delta (re-applying an
    /// insert+delete pair would corrupt the recovered state).
    pub fn replay(&self, baseline: &Database) -> Result<Database, EngineError> {
        let mut db = baseline.clone();
        let mut last = self.start;
        let mut pending: Vec<(&str, &Delta)> = Vec::new();
        let mut prepared: BTreeMap<&str, Vec<(&str, &Delta)>> = BTreeMap::new();
        for rec in &self.records {
            if rec.seq <= last {
                return Err(EngineError::DuplicateSeq { seq: rec.seq, last });
            }
            last = rec.seq;
            match &rec.op {
                WalOp::Delta {
                    table,
                    delta,
                    chained,
                } => {
                    pending.push((table, delta));
                    if !chained {
                        for (table, delta) in pending.drain(..) {
                            apply_delta(&mut db, table, delta)?;
                        }
                    }
                }
                WalOp::Prepare { gtx, records } => {
                    if pending.len() as u64 != *records {
                        return Err(EngineError::WalCorrupt(format!(
                            "prepare marker for {gtx} claims {records} records, found {}",
                            pending.len()
                        )));
                    }
                    prepared.insert(gtx, std::mem::take(&mut pending));
                }
                WalOp::Resolve { gtx, committed } => {
                    // A resolve whose prepare predates this log's start
                    // (recovery already settled the chain into the
                    // baseline) is a legal no-op.
                    if let Some(group) = prepared.remove(gtx.as_str()) {
                        if *committed {
                            for (table, delta) in group {
                                apply_delta(&mut db, table, delta)?;
                            }
                        }
                    }
                }
            }
        }
        if !pending.is_empty() {
            return Err(EngineError::WalCorrupt(format!(
                "log ends in an unterminated transaction chain of {} records",
                pending.len()
            )));
        }
        Ok(db)
    }

    /// Serialise to the line-oriented text format.
    pub fn encode(&self) -> String {
        self.records.iter().map(WalRecord::encode).collect()
    }

    /// Parse the text format produced by [`Wal::encode`].
    pub fn decode(text: &str) -> Result<Wal, EngineError> {
        let mut wal = Wal::new();
        let mut lines = text.lines();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            // `records_after`'s binary search and `next_seq` rely on
            // strictly increasing sequence numbers; `push` rejects logs
            // that break the invariant rather than mis-answering later.
            match decode_header(line)? {
                HeaderLine::Delta {
                    seq,
                    table,
                    inserted,
                    deleted,
                    chained,
                } => {
                    let mut delta = Delta::empty();
                    for _ in 0..inserted {
                        delta.inserted.push(decode_row_line(lines.next(), '+')?);
                    }
                    for _ in 0..deleted {
                        delta.deleted.push(decode_row_line(lines.next(), '-')?);
                    }
                    wal.push(WalRecord {
                        seq,
                        op: WalOp::Delta {
                            table,
                            delta,
                            chained,
                        },
                    })?;
                }
                HeaderLine::Marker(rec) => {
                    wal.push(rec)?;
                }
            }
        }
        Ok(wal)
    }
}

/// The committed deltas for `table` in a run of WAL records, honouring
/// the transaction structure the same way [`Wal::replay`] does: chained
/// records buffer until their terminator, prepared chains apply at
/// their `!resolve commit` and drop at `!resolve abort`. Returns `None`
/// when the run ends with an unsettled chain or prepare — the caller
/// (materialized-view maintenance) then leaves its cursor untouched and
/// serves the last settled state rather than guessing.
pub(crate) fn committed_table_deltas<'a>(
    table: &str,
    records: &'a [WalRecord],
) -> Option<Vec<&'a Delta>> {
    let mut out: Vec<&'a Delta> = Vec::new();
    let mut chain: Vec<(&'a str, &'a Delta)> = Vec::new();
    let mut prepared: BTreeMap<&'a str, Vec<(&'a str, &'a Delta)>> = BTreeMap::new();
    for rec in records {
        match &rec.op {
            WalOp::Delta {
                table: rec_table,
                delta,
                chained,
            } => {
                chain.push((rec_table, delta));
                if !chained {
                    for (rec_table, delta) in chain.drain(..) {
                        if rec_table == table {
                            out.push(delta);
                        }
                    }
                }
            }
            WalOp::Prepare { gtx, .. } => {
                prepared.insert(gtx, std::mem::take(&mut chain));
            }
            WalOp::Resolve { gtx, committed } => {
                // A resolve for a chain prepared before this run (already
                // settled into the cursor's state) is a legal no-op.
                if let Some(group) = prepared.remove(gtx.as_str()) {
                    if *committed {
                        for (rec_table, delta) in group {
                            if rec_table == table {
                                out.push(delta);
                            }
                        }
                    }
                }
            }
        }
    }
    if chain.is_empty() && prepared.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Apply one delta to a database in place (replay's unit of work).
fn apply_delta(db: &mut Database, table: &str, delta: &Delta) -> Result<(), EngineError> {
    let next = delta.apply(db.table(table)?)?;
    db.replace_table(table.to_string(), next);
    Ok(())
}

/// Parse one record header line (see the module docs for the grammar).
pub(crate) fn decode_header(line: &str) -> Result<HeaderLine, EngineError> {
    let header = line
        .strip_prefix('#')
        .ok_or_else(|| EngineError::WalCorrupt(format!("expected record header: {line}")))?;
    let (seq_str, rest) = header
        .split_once(' ')
        .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
    let (seq_str, chained) = match seq_str.strip_suffix('*') {
        Some(s) => (s, true),
        None => (seq_str, false),
    };
    let seq: u64 = seq_str
        .parse()
        .map_err(|_| EngineError::WalCorrupt(format!("bad sequence number: {line}")))?;
    if let Some(marker) = rest.strip_prefix("!prepare ") {
        if chained {
            return Err(EngineError::WalCorrupt(format!(
                "markers cannot be chained: {line}"
            )));
        }
        let (records, gtx_esc) = marker
            .split_once(' ')
            .ok_or_else(|| EngineError::WalCorrupt(format!("truncated prepare marker: {line}")))?;
        let records: u64 = records
            .parse()
            .map_err(|_| EngineError::WalCorrupt(format!("bad prepare record count: {line}")))?;
        let gtx = unescape(gtx_esc).map_err(|e| EngineError::WalCorrupt(format!("{e}: {line}")))?;
        return Ok(HeaderLine::Marker(WalRecord::prepare(seq, gtx, records)));
    }
    if let Some(marker) = rest.strip_prefix("!resolve ") {
        if chained {
            return Err(EngineError::WalCorrupt(format!(
                "markers cannot be chained: {line}"
            )));
        }
        let (outcome, gtx_esc) = marker
            .split_once(' ')
            .ok_or_else(|| EngineError::WalCorrupt(format!("truncated resolve marker: {line}")))?;
        let committed = match outcome {
            "commit" => true,
            "abort" => false,
            other => {
                return Err(EngineError::WalCorrupt(format!(
                    "bad resolve outcome {other:?}: {line}"
                )))
            }
        };
        let gtx = unescape(gtx_esc).map_err(|e| EngineError::WalCorrupt(format!("{e}: {line}")))?;
        return Ok(HeaderLine::Marker(WalRecord::resolve(seq, gtx, committed)));
    }
    if rest.starts_with('!') {
        return Err(EngineError::WalCorrupt(format!(
            "unknown marker kind: {line}"
        )));
    }
    let mut parts = rest.rsplitn(3, ' ');
    let deleted = parse_count(parts.next(), '-', line)?;
    let inserted = parse_count(parts.next(), '+', line)?;
    let table_esc = parts
        .next()
        .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
    let table = unescape(table_esc).map_err(|e| EngineError::WalCorrupt(format!("{e}: {line}")))?;
    Ok(HeaderLine::Delta {
        seq,
        table,
        inserted,
        deleted,
        chained,
    })
}

fn parse_count(part: Option<&str>, sign: char, line: &str) -> Result<usize, EngineError> {
    part.and_then(|p| p.strip_prefix(sign))
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| EngineError::WalCorrupt(format!("bad {sign} count in header: {line}")))
}

/// Parse one `+ <row>` / `- <row>` body line.
pub(crate) fn decode_row_line(line: Option<&str>, sign: char) -> Result<Row, EngineError> {
    let line = line.ok_or_else(|| EngineError::WalCorrupt("truncated record body".into()))?;
    let body = line
        .strip_prefix(sign)
        .and_then(|l| l.strip_prefix(' '))
        .ok_or_else(|| EngineError::WalCorrupt(format!("expected `{sign} ` row line: {line}")))?;
    decode_row(body).map_err(|e| EngineError::WalCorrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, Table, ValueType};

    fn db() -> Database {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("ok", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let t =
            Table::from_rows(schema, vec![row![1, "ada", true], row![2, "alan", false]]).unwrap();
        let mut db = Database::new();
        db.create_table("people", t).unwrap();
        db
    }

    fn delta_of(db: &Database, edit: impl FnOnce(&mut Table)) -> Delta {
        let old = db.table("people").unwrap();
        let mut new = old.clone();
        edit(&mut new);
        Delta::between(old, &new).unwrap()
    }

    fn insert_delta(id: i64, name: &str) -> Delta {
        Delta {
            inserted: vec![row![id, name, true]],
            deleted: vec![],
        }
    }

    #[test]
    fn append_assigns_increasing_seqs() {
        let mut wal = Wal::new();
        assert_eq!(wal.last_seq(), 0);
        let d = Delta::empty();
        assert_eq!(wal.append("t", d.clone()), 1);
        assert_eq!(wal.append("t", d), 2);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.records_after(1).len(), 1);
        assert_eq!(wal.records_after(0).len(), 2);
    }

    #[test]
    fn logs_can_start_after_genesis() {
        let mut wal = Wal::starting_at(41);
        assert_eq!(wal.last_seq(), 41);
        assert_eq!(wal.start_seq(), 41);
        assert_eq!(wal.append("people", Delta::empty()), 42);
        // Replay over a baseline that reflects seq 41 applies only the
        // new records.
        assert_eq!(wal.replay(&db()).unwrap(), db());
    }

    #[test]
    fn push_rejects_duplicate_and_stale_seqs() {
        let mut wal = Wal::new();
        wal.push(WalRecord::delta(5, "t", Delta::empty())).unwrap();
        for stale in [5, 4, 1] {
            let err = wal
                .push(WalRecord::delta(stale, "t", Delta::empty()))
                .unwrap_err();
            assert_eq!(
                err,
                EngineError::DuplicateSeq {
                    seq: stale,
                    last: 5
                }
            );
        }
        assert_eq!(wal.len(), 1);
        // Gaps are fine: strictly increasing is the only requirement.
        wal.push(WalRecord::delta(9, "t", Delta::empty())).unwrap();
    }

    #[test]
    fn reserved_table_names_are_rejected() {
        assert!(reserved_table_name("!prepare"));
        assert!(!reserved_table_name("orders"));
        let mut wal = Wal::new();
        assert!(matches!(
            wal.push(WalRecord::delta(1, "!sneaky", Delta::empty())),
            Err(EngineError::ReservedTableName(_))
        ));
    }

    #[test]
    fn replay_rejects_duplicate_seqs_instead_of_reapplying() {
        // Regression: a log with a duplicated record used to replay it
        // twice; stitched-together segment logs must fail loudly.
        let base = db();
        let d = delta_of(&base, |t| {
            t.upsert(row![3, "grace", true]).unwrap();
        });
        let rec = WalRecord::delta(1, "people", d);
        let wal = Wal::from_records(vec![rec.clone(), rec]);
        let err = wal.replay(&base).unwrap_err();
        assert_eq!(err, EngineError::DuplicateSeq { seq: 1, last: 1 });
    }

    #[test]
    fn replay_reconstructs_state() {
        let base = db();
        let mut live = base.clone();
        let mut wal = Wal::new();

        let d1 = delta_of(&live, |t| {
            t.upsert(row![3, "grace", true]).unwrap();
        });
        live.replace_table("people", d1.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d1);

        let d2 = delta_of(&live, |t| {
            t.delete_by_key(&row![1]);
            t.upsert(row![2, "alan turing", true]).unwrap();
        });
        live.replace_table("people", d2.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d2);

        assert_eq!(wal.replay(&base).unwrap(), live);
    }

    #[test]
    fn chained_records_apply_with_their_terminator() {
        let base = db();
        let mut wal = Wal::new();
        wal.push(WalRecord::chained(1, "people", insert_delta(10, "a")))
            .unwrap();
        wal.push(WalRecord::delta(2, "people", insert_delta(11, "b")))
            .unwrap();
        let replayed = wal.replay(&base).unwrap();
        assert_eq!(replayed.table("people").unwrap().len(), 4);
    }

    #[test]
    fn unterminated_chains_fail_replay() {
        let mut wal = Wal::new();
        wal.push(WalRecord::chained(1, "people", insert_delta(10, "a")))
            .unwrap();
        assert!(matches!(
            wal.replay(&db()),
            Err(EngineError::WalCorrupt(msg)) if msg.contains("unterminated")
        ));
    }

    #[test]
    fn prepared_chains_follow_their_resolution() {
        let base = db();
        // Committed 2PC branch applies; aborted branch does not; a
        // dangling prepare is presumed aborted.
        let committed = Wal::from_records(vec![
            WalRecord::chained(1, "people", insert_delta(10, "a")),
            WalRecord::prepare(2, "g1", 1),
            WalRecord::resolve(3, "g1", true),
        ]);
        assert_eq!(
            committed
                .replay(&base)
                .unwrap()
                .table("people")
                .unwrap()
                .len(),
            3
        );
        let aborted = Wal::from_records(vec![
            WalRecord::chained(1, "people", insert_delta(10, "a")),
            WalRecord::prepare(2, "g1", 1),
            WalRecord::resolve(3, "g1", false),
        ]);
        assert_eq!(aborted.replay(&base).unwrap(), base);
        let dangling = Wal::from_records(vec![
            WalRecord::chained(1, "people", insert_delta(10, "a")),
            WalRecord::prepare(2, "g1", 1),
        ]);
        assert_eq!(dangling.replay(&base).unwrap(), base);
        // A resolve with no in-log prepare (settled before this log's
        // start) is a no-op.
        let healed = Wal::from_records(vec![WalRecord::resolve(1, "g0", true)]);
        assert_eq!(healed.replay(&base).unwrap(), base);
    }

    #[test]
    fn prepare_count_mismatch_is_corruption() {
        let wal = Wal::from_records(vec![
            WalRecord::chained(1, "people", insert_delta(10, "a")),
            WalRecord::prepare(2, "g1", 3),
        ]);
        assert!(matches!(
            wal.replay(&db()),
            Err(EngineError::WalCorrupt(msg)) if msg.contains("claims 3")
        ));
    }

    #[test]
    fn encode_decode_round_trips() {
        let base = db();
        let mut wal = Wal::new();
        wal.append(
            "peo\tple\n",
            delta_of(&base, |t| {
                t.upsert(row![7, "tab\there\nnewline\\slash\rcarriage\r", false])
                    .unwrap();
                t.delete_by_key(&row![1]);
            }),
        );
        wal.append("empty", Delta::empty());
        wal.push(WalRecord::chained(5, "people", insert_delta(10, "x")))
            .unwrap();
        wal.push(WalRecord::prepare(6, "g \t42\n", 1)).unwrap();
        wal.push(WalRecord::resolve(7, "g \t42\n", true)).unwrap();
        wal.push(WalRecord::resolve(8, "g2", false)).unwrap();
        let text = wal.encode();
        let back = Wal::decode(&text).unwrap();
        assert_eq!(back, wal);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Wal::decode("not a header"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#x t +0 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0\n+ z:9"),
            Err(EngineError::WalCorrupt(_))
        ));
        // Marker garbage: unknown kinds, bad outcomes, chained markers.
        assert!(matches!(
            Wal::decode("#1 !vanish now g1"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 !resolve maybe g1"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1* !prepare 1 g1"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 !prepare g1"),
            Err(EngineError::WalCorrupt(_))
        ));
        // Out-of-order or duplicate sequence numbers get the typed error.
        assert!(matches!(
            Wal::decode("#2 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::DuplicateSeq { seq: 1, last: 2 })
        ));
        assert!(matches!(
            Wal::decode("#1 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::DuplicateSeq { seq: 1, last: 1 })
        ));
    }

    #[test]
    fn replay_fails_on_unknown_table() {
        let mut wal = Wal::new();
        wal.append("ghost", Delta::empty());
        assert!(wal.replay(&Database::new()).is_err());
    }
}
