//! The write-ahead log: an append-only sequence of committed deltas.
//!
//! Every committed transaction appends one [`WalRecord`] per table it
//! changed. The log is the engine's source of truth for recovery: applying
//! the records, in order, to a baseline database (the schemas plus the
//! state the log started from) reproduces the live state exactly
//! ([`Wal::replay`]), which the integration suite asserts as a law.
//!
//! This module is the *in-memory* log; [`crate::durable`] persists the
//! same records to append-only segment files with group commit and
//! checkpointing.
//!
//! ## Text format
//!
//! [`Wal::encode`] renders a line-oriented text form, one record header
//! per committed delta followed by its row lines:
//!
//! ```text
//! #<seq> <table> +<inserted> -<deleted>
//! + <cell>\t<cell>...
//! - <cell>\t<cell>...
//! ```
//!
//! Cells use the shared [`esm_store::codec`] (type tags `b:`/`i:`/`s:`,
//! strings escape `\\`, tab, newline and carriage return), so decoding
//! needs no schema. [`Wal::decode`] round-trips exactly and rejects
//! malformed input with
//! [`EngineError::WalCorrupt`](crate::EngineError::WalCorrupt); records
//! whose sequence numbers do not strictly increase are rejected with the
//! typed [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq)
//! instead of being silently re-applied.

use esm_store::codec::{decode_row, encode_row, escape, unescape};
use esm_store::{Database, Delta, Row};

use crate::error::EngineError;

/// One committed delta against one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number (1-based, strictly increasing).
    pub seq: u64,
    /// The table the delta applies to.
    pub table: String,
    /// The committed change.
    pub delta: Delta,
}

impl WalRecord {
    /// Render this record in the WAL text format (used by both
    /// [`Wal::encode`] and the durable segment writer, so the on-disk
    /// bytes and the in-memory encoding never diverge).
    pub fn encode(&self) -> String {
        let mut out = format!(
            "#{} {} +{} -{}\n",
            self.seq,
            escape(&self.table),
            self.delta.inserted.len(),
            self.delta.deleted.len()
        );
        for row in &self.delta.inserted {
            out.push_str(&format!("+ {}\n", encode_row(row)));
        }
        for row in &self.delta.deleted {
            out.push_str(&format!("- {}\n", encode_row(row)));
        }
        out
    }
}

/// An append-only log of committed deltas.
///
/// A log may start *after* genesis: a recovered engine's in-memory log
/// begins at the sequence number its checkpoint covered
/// ([`Wal::starting_at`]), so freshly assigned numbers continue the
/// durable history instead of restarting from 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    records: Vec<WalRecord>,
    /// The sequence number this log starts after (0 = genesis): every
    /// record satisfies `seq > start`.
    start: u64,
}

impl Wal {
    /// An empty log starting at genesis.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// An empty log whose first append will get `seq + 1` — the shape of
    /// a recovered engine's log, which continues after its checkpoint.
    pub fn starting_at(seq: u64) -> Wal {
        Wal {
            records: Vec::new(),
            start: seq,
        }
    }

    /// Build a log from records. The records are *not* validated here;
    /// [`Wal::replay`] enforces strict seq monotonicity when the log is
    /// actually applied, so a log stitched together from overlapping
    /// segments fails loudly instead of double-applying deltas.
    pub fn from_records(records: Vec<WalRecord>) -> Wal {
        Wal { records, start: 0 }
    }

    /// Append a committed delta, returning its sequence number.
    pub fn append(&mut self, table: impl Into<String>, delta: Delta) -> u64 {
        let seq = self.next_seq();
        self.records.push(WalRecord {
            seq,
            table: table.into(),
            delta,
        });
        seq
    }

    /// Append a pre-sequenced record, rejecting any seq that does not
    /// strictly increase the log with
    /// [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq).
    pub fn push(&mut self, record: WalRecord) -> Result<u64, EngineError> {
        let last = self.last_seq();
        if record.seq <= last {
            return Err(EngineError::DuplicateSeq {
                seq: record.seq,
                last,
            });
        }
        let seq = record.seq;
        self.records.push(record);
        Ok(seq)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.last_seq() + 1
    }

    /// The highest committed sequence number (the start offset when
    /// empty; 0 for an empty genesis log).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(self.start)
    }

    /// The sequence number this log starts after (0 = genesis).
    pub fn start_seq(&self) -> u64 {
        self.start
    }

    /// All records, in commit order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Records committed after `seq`, in commit order.
    pub fn records_after(&self, seq: u64) -> &[WalRecord] {
        let start = self.records.partition_point(|r| r.seq <= seq);
        &self.records[start..]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Apply every record, in order, to `baseline` and return the
    /// resulting database. `baseline` must contain every table the log
    /// references (with the schemas the engine started from), and must
    /// reflect the state at this log's start offset.
    ///
    /// Sequence numbers must strictly increase record to record; a
    /// duplicate or stale record aborts the replay with
    /// [`EngineError::DuplicateSeq`](crate::EngineError::DuplicateSeq)
    /// rather than silently re-applying a delta (re-applying an
    /// insert+delete pair would corrupt the recovered state).
    pub fn replay(&self, baseline: &Database) -> Result<Database, EngineError> {
        let mut db = baseline.clone();
        let mut last = self.start;
        for rec in &self.records {
            if rec.seq <= last {
                return Err(EngineError::DuplicateSeq { seq: rec.seq, last });
            }
            last = rec.seq;
            let table = db.table(&rec.table)?;
            let next = rec.delta.apply(table)?;
            db.replace_table(rec.table.clone(), next);
        }
        Ok(db)
    }

    /// Serialise to the line-oriented text format.
    pub fn encode(&self) -> String {
        self.records.iter().map(WalRecord::encode).collect()
    }

    /// Parse the text format produced by [`Wal::encode`].
    pub fn decode(text: &str) -> Result<Wal, EngineError> {
        let mut wal = Wal::new();
        let mut lines = text.lines();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            let (seq, table, inserted, deleted) = decode_header(line)?;
            // `records_after`'s binary search and `next_seq` rely on
            // strictly increasing sequence numbers; reject logs that
            // break the invariant rather than mis-answering later.
            let mut delta = Delta::empty();
            for _ in 0..inserted {
                delta.inserted.push(decode_row_line(lines.next(), '+')?);
            }
            for _ in 0..deleted {
                delta.deleted.push(decode_row_line(lines.next(), '-')?);
            }
            wal.push(WalRecord { seq, table, delta })?;
        }
        Ok(wal)
    }
}

/// Parse one `#<seq> <table> +<n> -<m>` header line.
pub(crate) fn decode_header(line: &str) -> Result<(u64, String, usize, usize), EngineError> {
    let header = line
        .strip_prefix('#')
        .ok_or_else(|| EngineError::WalCorrupt(format!("expected record header: {line}")))?;
    let mut parts = header.rsplitn(3, ' ');
    let deleted = parse_count(parts.next(), '-', line)?;
    let inserted = parse_count(parts.next(), '+', line)?;
    let rest = parts
        .next()
        .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
    let (seq_str, table_esc) = rest
        .split_once(' ')
        .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
    let seq: u64 = seq_str
        .parse()
        .map_err(|_| EngineError::WalCorrupt(format!("bad sequence number: {line}")))?;
    let table = unescape(table_esc).map_err(|e| EngineError::WalCorrupt(format!("{e}: {line}")))?;
    Ok((seq, table, inserted, deleted))
}

fn parse_count(part: Option<&str>, sign: char, line: &str) -> Result<usize, EngineError> {
    part.and_then(|p| p.strip_prefix(sign))
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| EngineError::WalCorrupt(format!("bad {sign} count in header: {line}")))
}

/// Parse one `+ <row>` / `- <row>` body line.
pub(crate) fn decode_row_line(line: Option<&str>, sign: char) -> Result<Row, EngineError> {
    let line = line.ok_or_else(|| EngineError::WalCorrupt("truncated record body".into()))?;
    let body = line
        .strip_prefix(sign)
        .and_then(|l| l.strip_prefix(' '))
        .ok_or_else(|| EngineError::WalCorrupt(format!("expected `{sign} ` row line: {line}")))?;
    decode_row(body).map_err(|e| EngineError::WalCorrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, Table, ValueType};

    fn db() -> Database {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("ok", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let t =
            Table::from_rows(schema, vec![row![1, "ada", true], row![2, "alan", false]]).unwrap();
        let mut db = Database::new();
        db.create_table("people", t).unwrap();
        db
    }

    fn delta_of(db: &Database, edit: impl FnOnce(&mut Table)) -> Delta {
        let old = db.table("people").unwrap();
        let mut new = old.clone();
        edit(&mut new);
        Delta::between(old, &new).unwrap()
    }

    #[test]
    fn append_assigns_increasing_seqs() {
        let mut wal = Wal::new();
        assert_eq!(wal.last_seq(), 0);
        let d = Delta::empty();
        assert_eq!(wal.append("t", d.clone()), 1);
        assert_eq!(wal.append("t", d), 2);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.records_after(1).len(), 1);
        assert_eq!(wal.records_after(0).len(), 2);
    }

    #[test]
    fn logs_can_start_after_genesis() {
        let mut wal = Wal::starting_at(41);
        assert_eq!(wal.last_seq(), 41);
        assert_eq!(wal.start_seq(), 41);
        assert_eq!(wal.append("people", Delta::empty()), 42);
        // Replay over a baseline that reflects seq 41 applies only the
        // new records.
        assert_eq!(wal.replay(&db()).unwrap(), db());
    }

    #[test]
    fn push_rejects_duplicate_and_stale_seqs() {
        let mut wal = Wal::new();
        wal.push(WalRecord {
            seq: 5,
            table: "t".into(),
            delta: Delta::empty(),
        })
        .unwrap();
        for stale in [5, 4, 1] {
            let err = wal
                .push(WalRecord {
                    seq: stale,
                    table: "t".into(),
                    delta: Delta::empty(),
                })
                .unwrap_err();
            assert_eq!(
                err,
                EngineError::DuplicateSeq {
                    seq: stale,
                    last: 5
                }
            );
        }
        assert_eq!(wal.len(), 1);
        // Gaps are fine: strictly increasing is the only requirement.
        wal.push(WalRecord {
            seq: 9,
            table: "t".into(),
            delta: Delta::empty(),
        })
        .unwrap();
    }

    #[test]
    fn replay_rejects_duplicate_seqs_instead_of_reapplying() {
        // Regression: a log with a duplicated record used to replay it
        // twice; stitched-together segment logs must fail loudly.
        let base = db();
        let d = delta_of(&base, |t| {
            t.upsert(row![3, "grace", true]).unwrap();
        });
        let rec = WalRecord {
            seq: 1,
            table: "people".into(),
            delta: d,
        };
        let wal = Wal::from_records(vec![rec.clone(), rec]);
        let err = wal.replay(&base).unwrap_err();
        assert_eq!(err, EngineError::DuplicateSeq { seq: 1, last: 1 });
    }

    #[test]
    fn replay_reconstructs_state() {
        let base = db();
        let mut live = base.clone();
        let mut wal = Wal::new();

        let d1 = delta_of(&live, |t| {
            t.upsert(row![3, "grace", true]).unwrap();
        });
        live.replace_table("people", d1.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d1);

        let d2 = delta_of(&live, |t| {
            t.delete_by_key(&row![1]);
            t.upsert(row![2, "alan turing", true]).unwrap();
        });
        live.replace_table("people", d2.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d2);

        assert_eq!(wal.replay(&base).unwrap(), live);
    }

    #[test]
    fn encode_decode_round_trips() {
        let base = db();
        let mut wal = Wal::new();
        wal.append(
            "peo\tple\n",
            delta_of(&base, |t| {
                t.upsert(row![7, "tab\there\nnewline\\slash\rcarriage\r", false])
                    .unwrap();
                t.delete_by_key(&row![1]);
            }),
        );
        wal.append("empty", Delta::empty());
        let text = wal.encode();
        let back = Wal::decode(&text).unwrap();
        assert_eq!(back, wal);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Wal::decode("not a header"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#x t +0 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0\n+ z:9"),
            Err(EngineError::WalCorrupt(_))
        ));
        // Out-of-order or duplicate sequence numbers get the typed error.
        assert!(matches!(
            Wal::decode("#2 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::DuplicateSeq { seq: 1, last: 2 })
        ));
        assert!(matches!(
            Wal::decode("#1 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::DuplicateSeq { seq: 1, last: 1 })
        ));
    }

    #[test]
    fn replay_fails_on_unknown_table() {
        let mut wal = Wal::new();
        wal.append("ghost", Delta::empty());
        assert!(wal.replay(&Database::new()).is_err());
    }
}
