//! The write-ahead log: an append-only sequence of committed deltas.
//!
//! Every committed transaction appends one [`WalRecord`] per table it
//! changed. The log is the engine's source of truth for recovery: applying
//! the records, in order, to a baseline database (the schemas plus the
//! state the log started from) reproduces the live state exactly
//! ([`Wal::replay`]), which the integration suite asserts as a law.
//!
//! ## On-disk format
//!
//! [`Wal::encode`] renders a line-oriented text form, one record header
//! per committed delta followed by its row lines:
//!
//! ```text
//! #<seq> <table> +<inserted> -<deleted>
//! + <cell>\t<cell>...
//! - <cell>\t<cell>...
//! ```
//!
//! Cells are type-tagged (`b:`/`i:`/`s:`) so decoding needs no schema;
//! strings escape `\\`, tab and newline. [`Wal::decode`] round-trips
//! exactly and rejects malformed input with
//! [`EngineError::WalCorrupt`](crate::EngineError::WalCorrupt).

use esm_store::{Database, Delta, Row, Value};

use crate::error::EngineError;

/// One committed delta against one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number (1-based, strictly increasing).
    pub seq: u64,
    /// The table the delta applies to.
    pub table: String,
    /// The committed change.
    pub delta: Delta,
}

/// An append-only log of committed deltas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    records: Vec<WalRecord>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append a committed delta, returning its sequence number.
    pub fn append(&mut self, table: impl Into<String>, delta: Delta) -> u64 {
        let seq = self.next_seq();
        self.records.push(WalRecord {
            seq,
            table: table.into(),
            delta,
        });
        seq
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq + 1).unwrap_or(1)
    }

    /// The highest committed sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }

    /// All records, in commit order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Records committed after `seq`, in commit order.
    pub fn records_after(&self, seq: u64) -> &[WalRecord] {
        let start = self.records.partition_point(|r| r.seq <= seq);
        &self.records[start..]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Apply every record, in order, to `baseline` and return the
    /// resulting database. `baseline` must contain every table the log
    /// references (with the schemas the engine started from).
    pub fn replay(&self, baseline: &Database) -> Result<Database, EngineError> {
        let mut db = baseline.clone();
        for rec in &self.records {
            let table = db.table(&rec.table)?;
            let next = rec.delta.apply(table)?;
            db.replace_table(rec.table.clone(), next);
        }
        Ok(db)
    }

    /// Serialise to the line-oriented text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&format!(
                "#{} {} +{} -{}\n",
                rec.seq,
                escape(&rec.table),
                rec.delta.inserted.len(),
                rec.delta.deleted.len()
            ));
            for row in &rec.delta.inserted {
                out.push_str(&format!("+ {}\n", encode_row(row)));
            }
            for row in &rec.delta.deleted {
                out.push_str(&format!("- {}\n", encode_row(row)));
            }
        }
        out
    }

    /// Parse the text format produced by [`Wal::encode`].
    pub fn decode(text: &str) -> Result<Wal, EngineError> {
        let mut wal = Wal::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            let header = line.strip_prefix('#').ok_or_else(|| {
                EngineError::WalCorrupt(format!("expected record header: {line}"))
            })?;
            let mut parts = header.rsplitn(3, ' ');
            let deleted = parse_count(parts.next(), '-', line)?;
            let inserted = parse_count(parts.next(), '+', line)?;
            let rest = parts
                .next()
                .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
            let (seq_str, table_esc) = rest
                .split_once(' ')
                .ok_or_else(|| EngineError::WalCorrupt(format!("truncated header: {line}")))?;
            let seq: u64 = seq_str
                .parse()
                .map_err(|_| EngineError::WalCorrupt(format!("bad sequence number: {line}")))?;
            // `records_after`'s binary search and `next_seq` rely on
            // strictly increasing sequence numbers; reject logs that
            // break the invariant rather than mis-answering later.
            if seq <= wal.last_seq() {
                return Err(EngineError::WalCorrupt(format!(
                    "sequence numbers must increase strictly: {} then {seq}",
                    wal.last_seq()
                )));
            }
            let mut delta = Delta::empty();
            for _ in 0..inserted {
                delta.inserted.push(decode_row_line(lines.next(), '+')?);
            }
            for _ in 0..deleted {
                delta.deleted.push(decode_row_line(lines.next(), '-')?);
            }
            wal.records.push(WalRecord {
                seq,
                table: unescape(table_esc)?,
                delta,
            });
        }
        Ok(wal)
    }
}

fn parse_count(part: Option<&str>, sign: char, line: &str) -> Result<usize, EngineError> {
    part.and_then(|p| p.strip_prefix(sign))
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| EngineError::WalCorrupt(format!("bad {sign} count in header: {line}")))
}

fn decode_row_line(line: Option<&str>, sign: char) -> Result<Row, EngineError> {
    let line = line.ok_or_else(|| EngineError::WalCorrupt("truncated record body".into()))?;
    let body = line
        .strip_prefix(sign)
        .and_then(|l| l.strip_prefix(' '))
        .ok_or_else(|| EngineError::WalCorrupt(format!("expected `{sign} ` row line: {line}")))?;
    decode_row(body)
}

fn escape(s: &str) -> String {
    // `\r` must be escaped too: `Wal::decode` splits on `str::lines`,
    // which swallows a trailing `\r` as part of a `\r\n` terminator.
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(s: &str) -> Result<String, EngineError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(EngineError::WalCorrupt(format!(
                    "bad escape \\{other:?} in {s}"
                )))
            }
        }
    }
    Ok(out)
}

fn encode_row(row: &Row) -> String {
    row.iter()
        .map(|v| match v {
            Value::Bool(b) => format!("b:{b}"),
            Value::Int(i) => format!("i:{i}"),
            Value::Str(s) => format!("s:{}", escape(s)),
        })
        .collect::<Vec<_>>()
        .join("\t")
}

fn decode_row(body: &str) -> Result<Row, EngineError> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('\t')
        .map(|cell| {
            let (tag, payload) = cell
                .split_once(':')
                .ok_or_else(|| EngineError::WalCorrupt(format!("untyped cell: {cell}")))?;
            match tag {
                "b" => payload
                    .parse()
                    .map(Value::Bool)
                    .map_err(|_| EngineError::WalCorrupt(format!("bad bool: {cell}"))),
                "i" => payload
                    .parse()
                    .map(Value::Int)
                    .map_err(|_| EngineError::WalCorrupt(format!("bad int: {cell}"))),
                "s" => unescape(payload).map(Value::Str),
                _ => Err(EngineError::WalCorrupt(format!("unknown tag: {cell}"))),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, Table, ValueType};

    fn db() -> Database {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("ok", ValueType::Bool),
            ],
            &["id"],
        )
        .unwrap();
        let t =
            Table::from_rows(schema, vec![row![1, "ada", true], row![2, "alan", false]]).unwrap();
        let mut db = Database::new();
        db.create_table("people", t).unwrap();
        db
    }

    fn delta_of(db: &Database, edit: impl FnOnce(&mut Table)) -> Delta {
        let old = db.table("people").unwrap();
        let mut new = old.clone();
        edit(&mut new);
        Delta::between(old, &new).unwrap()
    }

    #[test]
    fn append_assigns_increasing_seqs() {
        let mut wal = Wal::new();
        assert_eq!(wal.last_seq(), 0);
        let d = Delta::empty();
        assert_eq!(wal.append("t", d.clone()), 1);
        assert_eq!(wal.append("t", d), 2);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.records_after(1).len(), 1);
        assert_eq!(wal.records_after(0).len(), 2);
    }

    #[test]
    fn replay_reconstructs_state() {
        let base = db();
        let mut live = base.clone();
        let mut wal = Wal::new();

        let d1 = delta_of(&live, |t| {
            t.upsert(row![3, "grace", true]).unwrap();
        });
        live.replace_table("people", d1.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d1);

        let d2 = delta_of(&live, |t| {
            t.delete_by_key(&row![1]);
            t.upsert(row![2, "alan turing", true]).unwrap();
        });
        live.replace_table("people", d2.apply(live.table("people").unwrap()).unwrap());
        wal.append("people", d2);

        assert_eq!(wal.replay(&base).unwrap(), live);
    }

    #[test]
    fn encode_decode_round_trips() {
        let base = db();
        let mut wal = Wal::new();
        wal.append(
            "peo\tple\n",
            delta_of(&base, |t| {
                t.upsert(row![7, "tab\there\nnewline\\slash\rcarriage\r", false])
                    .unwrap();
                t.delete_by_key(&row![1]);
            }),
        );
        wal.append("empty", Delta::empty());
        let text = wal.encode();
        let back = Wal::decode(&text).unwrap();
        assert_eq!(back, wal);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Wal::decode("not a header"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#x t +0 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +1 -0\n+ z:9"),
            Err(EngineError::WalCorrupt(_))
        ));
        // Out-of-order or duplicate sequence numbers are corrupt.
        assert!(matches!(
            Wal::decode("#2 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
        assert!(matches!(
            Wal::decode("#1 t +0 -0\n#1 t +0 -0"),
            Err(EngineError::WalCorrupt(_))
        ));
    }

    #[test]
    fn replay_fails_on_unknown_table() {
        let mut wal = Wal::new();
        wal.append("ghost", Delta::empty());
        assert!(wal.replay(&Database::new()).is_err());
    }
}
