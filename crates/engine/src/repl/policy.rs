//! Stats-driven auto-rebalancing: watch per-shard commit-rate EWMAs
//! and row counts, split the hottest shard at its median key when load
//! skews, merge adjacent cold shards when it collapses.
//!
//! The policy reads load lock-free (per-shard commit counters are
//! relaxed atomics, row counts take brief shard read locks) and acts
//! through the existing online rebalance operations
//! ([`ShardedEngineServer::split_shard`] /
//! [`ShardedEngineServer::merge_shards`][msh]), so a policy action is
//! exactly as crash-safe as a manual one.
//!
//! [msh]: crate::shard::ShardedEngineServer
//!
//! Deterministic core, threaded shell: [`RebalancePolicy::tick`] holds
//! all the logic (tests drive it directly); `start_policy` wraps it in
//! a maintenance thread. The handle owns the thread — hold it for as
//! long as the fleet should self-manage, drop it to stop. The engine
//! never owns the policy, so there is no reference cycle.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::error::EngineError;
use crate::shard::ShardedEngineServer;

/// Tuning for the auto-rebalance policy.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// How often the policy thread wakes, in milliseconds.
    pub interval_ms: u64,
    /// EWMA smoothing weight for the newest rate sample, in
    /// thousandths (300 = 0.3 — a few ticks of memory).
    pub alpha_milli: u64,
    /// Split when the hottest shard's EWMA exceeds the coldest's by
    /// this ratio, in thousandths (2000 = 2x).
    pub split_skew_milli: u64,
    /// Never split a shard holding fewer rows than this (splitting a
    /// sliver moves nothing).
    pub min_rows_split: u64,
    /// Hard ceiling on shard count.
    pub max_shards: usize,
    /// Merge the coldest adjacent pair when its *combined* EWMA times
    /// this ratio (thousandths) is still below the hottest shard's.
    pub merge_skew_milli: u64,
    /// Hard floor on shard count.
    pub min_shards: usize,
    /// Ticks to sit out after any split/merge, letting EWMAs re-settle
    /// before judging the new layout.
    pub cooldown_ticks: u32,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            interval_ms: 100,
            alpha_milli: 300,
            split_skew_milli: 2000,
            min_rows_split: 64,
            max_shards: 16,
            merge_skew_milli: 4000,
            min_shards: 1,
            cooldown_ticks: 3,
        }
    }
}

/// What one policy tick decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyAction {
    /// Load is balanced (or the policy is cooling down / starved of
    /// samples); nothing changed.
    None,
    /// Split the shard at topology index `.0` at key-median; the new
    /// shard landed at index `.1`.
    Split(usize, usize),
    /// Merged topology index `.0 + 1` into `.0`.
    Merge(usize),
}

/// The deterministic policy core: EWMA state plus the decision rule.
#[derive(Debug)]
pub struct RebalancePolicy {
    cfg: PolicyConfig,
    /// Per shard id: commit count at the last tick, and the rate EWMA
    /// (commits/second, in thousandths).
    ewma: BTreeMap<u64, (u64, u64)>,
    last_tick: Option<Instant>,
    cooldown: u32,
}

impl RebalancePolicy {
    /// A fresh policy with `cfg`.
    pub fn new(cfg: PolicyConfig) -> RebalancePolicy {
        RebalancePolicy {
            cfg,
            ewma: BTreeMap::new(),
            last_tick: None,
            cooldown: 0,
        }
    }

    /// One observation + decision pass over `engine`. Always refreshes
    /// the published load view; acts only when skew thresholds are
    /// crossed and no cooldown is pending.
    pub fn tick(&mut self, engine: &ShardedEngineServer) -> Result<PolicyAction, EngineError> {
        let now = Instant::now();
        let dt_ms = match self.last_tick.replace(now) {
            Some(prev) => now.duration_since(prev).as_millis().max(1) as u64,
            None => 0,
        };
        let mut loads = engine.shard_load();

        // Fold new rate samples into the EWMAs (first tick only seeds
        // the commit baselines — a rate needs an interval).
        let mut next: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for load in &mut loads {
            let (prev_commits, prev_ewma) = self.ewma.get(&load.shard).copied().unwrap_or((0, 0));
            let delta = load.commits.saturating_sub(prev_commits);
            // commits/sec in thousandths: delta * 1000 (milli) *
            // 1000 (ms→s) / dt_ms.
            let ewma = match delta.saturating_mul(1_000_000).checked_div(dt_ms) {
                None => prev_ewma,
                Some(rate) => {
                    (self.cfg.alpha_milli * rate + (1000 - self.cfg.alpha_milli) * prev_ewma) / 1000
                }
            };
            load.rate_ewma_milli = ewma;
            next.insert(load.shard, (load.commits, ewma));
        }
        self.ewma = next;
        engine.set_shard_load(loads.clone());

        if dt_ms == 0 || loads.is_empty() {
            return Ok(PolicyAction::None);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Ok(PolicyAction::None);
        }

        let (hot_index, hot) = loads
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.rate_ewma_milli)
            .expect("non-empty");
        let cold_rate = loads
            .iter()
            .map(|l| l.rate_ewma_milli)
            .min()
            .expect("non-empty");

        // Split: the hottest shard dominates and has rows to give.
        let skewed = hot.rate_ewma_milli.saturating_mul(1000)
            > cold_rate.max(1).saturating_mul(self.cfg.split_skew_milli);
        if skewed && loads.len() < self.cfg.max_shards && hot.rows >= self.cfg.min_rows_split {
            if let Some(at) = engine.median_split_key(hot_index) {
                let hot_id = hot.shard;
                let new_index = engine.split_shard(at)?;
                engine.note_auto_split();
                // Seed both halves at half the donor's EWMA so the next
                // tick judges the new layout, not a stale spike.
                if let Some(entry) = self.ewma.get_mut(&hot_id) {
                    entry.1 /= 2;
                }
                self.cooldown = self.cfg.cooldown_ticks;
                return Ok(PolicyAction::Split(hot_index, new_index));
            }
        }

        // Merge: the coldest adjacent pair is noise next to the hottest
        // shard.
        if loads.len() > self.cfg.min_shards.max(1) {
            let pair = (0..loads.len() - 1)
                .map(|i| (i, loads[i].rate_ewma_milli + loads[i + 1].rate_ewma_milli))
                .min_by_key(|&(_, combined)| combined);
            if let Some((left, combined)) = pair {
                let cold_enough = combined.saturating_mul(self.cfg.merge_skew_milli)
                    < hot.rate_ewma_milli.saturating_mul(1000);
                if cold_enough
                    && hot.rate_ewma_milli > 0
                    && left != hot_index
                    && left + 1 != hot_index
                {
                    engine.merge_shards(left)?;
                    engine.note_auto_merge();
                    self.cooldown = self.cfg.cooldown_ticks;
                    return Ok(PolicyAction::Merge(left));
                }
            }
        }
        Ok(PolicyAction::None)
    }
}

/// Owns the policy thread; drop to stop it. Never stored inside the
/// engine (that would cycle the `Arc`).
#[derive(Debug)]
pub struct PolicyHandle {
    _thread: crate::durable::MaintenanceThread,
}

impl ShardedEngineServer {
    /// Start the auto-rebalance policy thread over this engine. The
    /// returned handle owns the thread — keep it alive for as long as
    /// the fleet should self-manage. Policy errors (a racing manual
    /// rebalance, a poisoned shard) skip the tick; the next one
    /// re-observes.
    pub fn start_policy(&self, cfg: PolicyConfig) -> PolicyHandle {
        let engine = self.clone();
        let interval = std::time::Duration::from_millis(cfg.interval_ms.max(1));
        let mut policy = RebalancePolicy::new(cfg);
        PolicyHandle {
            _thread: crate::durable::MaintenanceThread::spawn(interval, move || {
                let _ = policy.tick(&engine);
            }),
        }
    }

    /// Count one policy-initiated split in [`crate::ShardStats`].
    pub(crate) fn note_auto_split(&self) {
        self.inner.shard_metrics.auto_split();
    }

    /// Count one policy-initiated merge in [`crate::ShardStats`].
    pub(crate) fn note_auto_merge(&self) {
        self.inner.shard_metrics.auto_merge();
    }
}
