//! [`WalSource`] implementations on the primary side: serve manifest +
//! ranged file reads from a live sharded engine or a bare directory.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use super::{check_file_name, FileEntry, ReplManifest, ShardManifest, WalSource};
use crate::checkpoint::parse_checkpoint_name;
use crate::error::EngineError;
use crate::segment::parse_segment_name;
use crate::shard::{ShardedEngineServer, TOPOLOGY_FILE};

/// List a shard directory's shippable files (segments + checkpoints;
/// temp files and anything unrecognized stay home), sorted by name.
fn list_shard_files(dir: &Path) -> Result<Vec<FileEntry>, EngineError> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if parse_segment_name(name).is_none() && parse_checkpoint_name(name).is_none() {
            continue;
        }
        files.push(FileEntry {
            name: name.to_string(),
            len: entry.metadata()?.len(),
        });
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(files)
}

fn read_range(path: &Path, offset: u64, len: u64) -> Result<Vec<u8>, EngineError> {
    let mut f = std::fs::File::open(path)
        .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
    f.seek(SeekFrom::Start(offset))?;
    // Cap the per-call read so one fetch can't balloon a wire frame.
    let mut buf = vec![0u8; len.min(4 * 1024 * 1024) as usize];
    let mut filled = 0;
    while filled < buf.len() {
        match f.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    buf.truncate(filled);
    Ok(buf)
}

/// The directory names and ids of every `shard-<id>` under `base`.
fn list_shard_dirs(base: &Path) -> Result<Vec<u64>, EngineError> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(base)? {
        let entry = entry?;
        if let Some(id) = entry
            .file_name()
            .to_str()
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            if entry.path().is_dir() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// A [`WalSource`] over a bare sharded base directory — no live engine
/// required. This is how a replica keeps draining a *dead* primary's
/// tail during failover: the process is gone but its fsynced bytes are
/// not. `last_seq` is reported as 0 (unknown) since nothing live can be
/// asked.
#[derive(Debug, Clone)]
pub struct DirWalSource {
    base: PathBuf,
    primary_addr: String,
}

impl DirWalSource {
    /// A source over `base` (must hold a `topology.esm`). `primary_addr`
    /// is what replicas hand to redirected writers; pass `""` when there
    /// is nowhere to redirect to.
    pub fn new(base: impl Into<PathBuf>, primary_addr: impl Into<String>) -> DirWalSource {
        DirWalSource {
            base: base.into(),
            primary_addr: primary_addr.into(),
        }
    }
}

impl WalSource for DirWalSource {
    fn manifest(&self) -> Result<ReplManifest, EngineError> {
        let topology = std::fs::read(self.base.join(TOPOLOGY_FILE))
            .map_err(|e| EngineError::Io(format!("replication manifest: {e}")))?;
        let mut shards = Vec::new();
        for id in list_shard_dirs(&self.base)? {
            shards.push(ShardManifest {
                id,
                last_seq: 0,
                files: list_shard_files(&self.base.join(format!("shard-{id}")))?,
            });
        }
        Ok(ReplManifest {
            topology,
            primary_addr: self.primary_addr.clone(),
            shards,
        })
    }

    fn fetch(&self, shard: u64, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, EngineError> {
        check_file_name(file)?;
        read_range(
            &self.base.join(format!("shard-{shard}")).join(file),
            offset,
            len,
        )
    }
}

/// A [`WalSource`] over a live durable [`ShardedEngineServer`]: file
/// listings come from its base directory, per-shard `last_seq` from the
/// live durable logs (real lag reference), and `primary_addr` from
/// [`ShardedEngineServer::advertise`].
#[derive(Debug, Clone)]
pub struct PrimaryWalSource {
    engine: ShardedEngineServer,
    base: PathBuf,
}

impl PrimaryWalSource {
    /// Wrap `engine`, or `None` when it is in-memory (nothing to ship).
    pub fn over(engine: &ShardedEngineServer) -> Option<PrimaryWalSource> {
        let base = engine.durable_base_dir()?;
        Some(PrimaryWalSource {
            engine: engine.clone(),
            base,
        })
    }
}

impl WalSource for PrimaryWalSource {
    fn manifest(&self) -> Result<ReplManifest, EngineError> {
        let topology = std::fs::read(self.base.join(TOPOLOGY_FILE))
            .map_err(|e| EngineError::Io(format!("replication manifest: {e}")))?;
        let last_seqs = self.engine.shard_last_seqs();
        let mut shards = Vec::new();
        for id in list_shard_dirs(&self.base)? {
            shards.push(ShardManifest {
                id,
                last_seq: last_seqs.get(&id).copied().unwrap_or(0),
                files: list_shard_files(&self.base.join(format!("shard-{id}")))?,
            });
        }
        Ok(ReplManifest {
            topology,
            primary_addr: self.engine.advertised_addr().unwrap_or_default(),
            shards,
        })
    }

    fn fetch(&self, shard: u64, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, EngineError> {
        check_file_name(file)?;
        read_range(
            &self.base.join(format!("shard-{shard}")).join(file),
            offset,
            len,
        )
    }
}
