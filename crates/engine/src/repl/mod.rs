//! WAL-shipping replication and fleet self-management.
//!
//! The durability format *is* the replication stream: CRC32
//! self-delimiting segment files and atomically-renamed checkpoints are
//! already safe to read at any byte prefix (the crash-recovery suites
//! prove it at every offset), so a replica that mirrors a primary's
//! WAL directories byte-for-byte and runs the same recovery planning
//! ([`crate::durable::plan_recovery`] / `resolve_transactions`)
//! converges to the primary's settled state — the state-transformer
//! equivalence the paper's monadic semantics rest on.
//!
//! ```text
//!  primary (ShardedEngineServer)          replica (ReplicaEngine)
//!  ┌──────────────────────────┐   ship   ┌──────────────────────────┐
//!  │ shard-0/ wal-*.seg ──────┼────────▶ │ mirror/shard-0/ …        │
//!  │ shard-1/ wal-*.seg ──────┼────────▶ │ mirror/shard-1/ …        │
//!  │ topology.esm ────────────┼────────▶ │ mirror/topology.esm      │
//!  └──────────────────────────┘          │   │ decode + apply       │
//!         ▲ WalSource                    │   ▼ serving EngineServer │
//!         │ (REPL_* verbs or fs)        │ reads, views, subs       │
//!                                        └──────────────────────────┘
//!                                              │ promote()
//!                                              ▼
//!                                   ShardedEngineServer::recover_with
//!                                   (settles in-doubt 2PC, takes writes)
//! ```
//!
//! * [`WalSource`] — how a replica reaches a primary's log bytes: a
//!   manifest (topology + per-shard file list + last durable seqs) and
//!   ranged file reads. [`shipper::PrimaryWalSource`] serves it from a
//!   live engine, [`shipper::DirWalSource`] from a bare directory (the
//!   disk outlives the process — how a promotion drains a dead
//!   primary's tail), and `esm-net`'s `RemoteWalSource` over the wire.
//! * [`replica::ReplicaEngine`] — mirrors the files, applies settled
//!   transactions through a flat serving engine (so views,
//!   subscriptions and `view_deltas_since` stay incremental), and
//!   serves the whole read side of [`crate::Engine`]. Write paths
//!   return [`crate::EngineError::NotPrimary`] carrying the primary's
//!   advertised address.
//! * [`promote`] — failover: stop shipping, drain what remains of the
//!   primary's log, then run the proven sharded recovery over the
//!   mirror. Every acked `group_commit=1` commit was fsynced into
//!   bytes the mirror has; in-doubt 2PC settles all-or-nothing.
//! * [`policy`] — stats-driven auto-rebalancing: per-shard commit-rate
//!   EWMAs drive [`crate::shard::ShardedEngineServer`]'s `split_shard`
//!   (at [`ShardedEngineServer::median_split_key`][msk]) and
//!   `merge_shards` when load skews past thresholds.
//!
//! [msk]: crate::shard::ShardedEngineServer::median_split_key
//!
//! ## Consistency model
//!
//! A replica is *eventually* consistent and always *transactionally*
//! consistent per shard: it applies whole settled transactions in WAL
//! order, never a torn prefix of one. Cross-shard 2PC transactions may
//! appear on the replica staggered (one participant shard applied, the
//! other not yet) — the same relaxation a sharded read without all
//! shard locks would see; promotion re-settles them atomically. A
//! replica may also briefly apply bytes the primary wrote but has not
//! fsynced; those commits are unacknowledged, so surfacing them early
//! breaks no acknowledgement promise.

pub mod policy;
pub mod promote;
pub mod replica;
pub mod shipper;

pub use policy::{PolicyAction, PolicyConfig, PolicyHandle, RebalancePolicy};
pub use promote::{most_caught_up, Promotion};
pub use replica::{ReplSyncReport, ReplicaConfig, ReplicaEngine};
pub use shipper::{DirWalSource, PrimaryWalSource};

use crate::error::EngineError;

/// One file a shard's WAL directory holds, as the manifest advertises
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name within the shard directory (`wal-…seg`,
    /// `checkpoint-…ckpt`).
    pub name: String,
    /// Its length in bytes at manifest time. Segments only grow;
    /// checkpoints appear at full length (atomic rename).
    pub len: u64,
}

/// One shard's slice of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// The shard's stable id (its directory is `shard-<id>`).
    pub id: u64,
    /// The primary's last durable sequence number for this shard — the
    /// replica's lag reference. 0 when the source cannot know it (a
    /// bare-directory source).
    pub last_seq: u64,
    /// Shippable files, sorted by name.
    pub files: Vec<FileEntry>,
}

/// Everything a replica needs to plan one shipping pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplManifest {
    /// The primary's `topology.esm` bytes, shipped inline (it is tiny
    /// and must be read atomically with the shard list).
    pub topology: Vec<u8>,
    /// Where writers should retry (`EngineError::NotPrimary` payload);
    /// empty when the primary never advertised.
    pub primary_addr: String,
    /// Per-shard file listings, sorted by id.
    pub shards: Vec<ShardManifest>,
}

/// A primary's shippable WAL surface: the contract between a replica
/// and wherever the bytes live (live engine, bare directory, or the
/// other end of a socket).
pub trait WalSource: Send + Sync + std::fmt::Debug {
    /// A consistent-enough listing: files may have grown by the time
    /// they are fetched (segments are append-only, so later bytes are
    /// only ever *more* log), but never shrunk or been rewritten.
    fn manifest(&self) -> Result<ReplManifest, EngineError>;

    /// Up to `len` bytes of `shard-<shard>/<file>` starting at
    /// `offset`. Short reads (EOF) return what exists; a vanished file
    /// returns `Io` (the replica resyncs from the next manifest).
    fn fetch(&self, shard: u64, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, EngineError>;
}

/// Reject file names that could escape a shard directory. The wire
/// server calls sources with client-supplied names; sources built on
/// real filesystems must refuse traversal.
pub(crate) fn check_file_name(name: &str) -> Result<(), EngineError> {
    if name.is_empty()
        || name.contains('/')
        || name.contains('\\')
        || name.contains("..")
        || name.starts_with('.')
    {
        return Err(EngineError::Io(format!(
            "illegal replication file name: {name:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_names_are_rejected() {
        for bad in ["", "../x", "a/b", "a\\b", ".hidden", "x..y"] {
            assert!(check_file_name(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(check_file_name("wal-00000001.seg").is_ok());
        assert!(check_file_name("checkpoint-00000042.ckpt").is_ok());
    }
}
