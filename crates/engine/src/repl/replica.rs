//! [`ReplicaEngine`]: a continuously-recovering read replica.
//!
//! The replica mirrors a primary's WAL directories byte-for-byte from a
//! [`WalSource`] and keeps a flat serving [`EngineServer`] converged to
//! the primary's settled state. Bootstrap runs the exact recovery
//! pipeline ([`latest_valid_checkpoint`] → [`scan_segments`] →
//! [`plan_recovery`] → [`resolve_transactions`]); steady state decodes
//! newly shipped frames from each shard's frame-aligned tail offset and
//! applies settled transactions as ordinary commits — so materialized
//! views, subscriptions and `view_deltas_since` stay O(delta) on the
//! replica, exactly as on a primary.
//!
//! Anything surprising in the stream (topology change, compacted-away
//! segment, sequence gap, CRC failure on a complete frame) drops to the
//! *reconcile* path: recompute the settled state from the mirror with
//! the recovery planner and commit the difference. Reconcile is the
//! recovery code path, so the replica can never diverge — at worst it
//! does a little extra work.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

use esm_obs::Phase;
use esm_store::{Database, Delta, Table};

use super::{ReplManifest, WalSource};
use crate::checkpoint::{latest_valid_checkpoint, parse_checkpoint_name};
use crate::durable::{plan_recovery, resolve_transactions, scan_segments, MaintenanceThread};
use crate::error::EngineError;
use crate::metrics::{MetricsSnapshot, ReplStats, ReplicaLag};
use crate::segment::{decode_segment_prefix, parse_segment_name, segment_file_name};
use crate::server::EngineServer;
use crate::shard::{read_topology, TOPOLOGY_FILE};
use crate::wal::{WalOp, WalRecord};

/// Tuning for a replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Where the replica mirrors the primary's base directory. Must be
    /// writable and survive the replica process for promotion to work.
    pub mirror: PathBuf,
    /// How often the apply thread polls the source, in milliseconds.
    /// 0 disables the thread — tests and the failover path then drive
    /// [`ReplicaEngine::sync_once`] themselves.
    pub poll_interval_ms: u64,
    /// Fetch granularity per wire call.
    pub chunk_bytes: u64,
}

impl ReplicaConfig {
    /// Defaults: poll every 20 ms, 256 KiB fetch chunks.
    pub fn new(mirror: impl Into<PathBuf>) -> ReplicaConfig {
        ReplicaConfig {
            mirror: mirror.into(),
            poll_interval_ms: 20,
            chunk_bytes: 256 * 1024,
        }
    }

    /// Set the poll interval (0 disables the apply thread).
    pub fn poll_interval_ms(mut self, ms: u64) -> ReplicaConfig {
        self.poll_interval_ms = ms;
        self
    }
}

/// Per-shard apply-stream state: where in the mirrored log the next
/// complete frame will be decoded from, and what is pending or in
/// doubt.
#[derive(Debug, Default)]
struct ShardStream {
    /// First seq of the segment currently being consumed (0 = none yet;
    /// the tick looks for a segment starting at `applied_seq + 1`).
    segment_first: u64,
    /// Frame-aligned byte offset consumed within that segment.
    offset: u64,
    /// Last sequence number consumed (applied, held pending, or in
    /// doubt).
    applied_seq: u64,
    /// The unterminated chain being accumulated (chained deltas whose
    /// terminator has not arrived).
    pending: Vec<(String, Delta)>,
    /// Prepared 2PC chains awaiting their resolution, by gtx.
    in_doubt: BTreeMap<String, Vec<(String, Delta)>>,
}

#[derive(Debug, Default)]
struct ApplyState {
    /// The mirrored `topology.esm` bytes the streams were built
    /// against; a manifest with different bytes forces a reconcile.
    topology: Vec<u8>,
    /// Streams keyed by stable shard id.
    streams: BTreeMap<u64, ShardStream>,
}

#[derive(Debug)]
struct ReplicaInner {
    source: Arc<dyn WalSource>,
    mirror: PathBuf,
    chunk_bytes: u64,
    serving: EngineServer,
    apply: Mutex<ApplyState>,
    stats: Mutex<ReplStats>,
    primary_addr: Mutex<String>,
    poller: Mutex<Option<MaintenanceThread>>,
}

/// A read replica behind the same [`crate::Engine`] trait as every
/// other engine. Clone the handle freely; clones share state.
#[derive(Clone, Debug)]
pub struct ReplicaEngine {
    inner: Arc<ReplicaInner>,
}

/// What one [`ReplicaEngine::sync_once`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplSyncReport {
    /// Bytes newly mirrored from the source.
    pub bytes_shipped: u64,
    /// WAL records newly consumed.
    pub records_consumed: u64,
    /// Settled transactions newly applied to the serving state.
    pub transactions_applied: u64,
    /// Whether this pass fell back to a full reconcile.
    pub reconciled: bool,
}

impl ReplicaEngine {
    /// Bootstrap a replica: mirror everything the source has, build the
    /// settled state through the recovery planner, and (unless
    /// `poll_interval_ms == 0`) start the apply thread.
    pub fn bootstrap(
        source: Arc<dyn WalSource>,
        config: ReplicaConfig,
    ) -> Result<ReplicaEngine, EngineError> {
        std::fs::create_dir_all(&config.mirror)?;
        let manifest = source.manifest()?;
        let mut shipped = 0u64;
        mirror_files(
            source.as_ref(),
            &config.mirror,
            &manifest,
            config.chunk_bytes,
            &mut shipped,
        )?;
        let (db, streams) = build_settled(&config.mirror)?;
        let serving = EngineServer::new(db);
        let replica = ReplicaEngine {
            inner: Arc::new(ReplicaInner {
                source,
                mirror: config.mirror.clone(),
                chunk_bytes: config.chunk_bytes,
                serving,
                apply: Mutex::new(ApplyState {
                    topology: manifest.topology.clone(),
                    streams,
                }),
                stats: Mutex::new(ReplStats::default()),
                primary_addr: Mutex::new(manifest.primary_addr.clone()),
                poller: Mutex::new(None),
            }),
        };
        replica.update_lag(&manifest);
        if config.poll_interval_ms > 0 {
            let weak: Weak<ReplicaInner> = Arc::downgrade(&replica.inner);
            let thread = MaintenanceThread::spawn(
                std::time::Duration::from_millis(config.poll_interval_ms),
                move || {
                    if let Some(inner) = weak.upgrade() {
                        let _ = ReplicaEngine { inner }.sync_once();
                    }
                },
            );
            *replica.inner.poller.lock().expect("poller lock") = Some(thread);
        }
        Ok(replica)
    }

    /// Stop the apply thread (idempotent). Promotion calls this before
    /// draining the final tail so nothing applies concurrently.
    pub fn stop(&self) {
        let thread = self.inner.poller.lock().expect("poller lock").take();
        drop(thread); // joins
    }

    /// The mirror directory (what promotion recovers from).
    pub fn mirror_dir(&self) -> &Path {
        &self.inner.mirror
    }

    /// The primary address replicas redirect writers to (empty when the
    /// source never advertised one).
    pub fn primary_addr(&self) -> String {
        self.inner
            .primary_addr
            .lock()
            .map(|a| a.clone())
            .unwrap_or_default()
    }

    /// Last consumed sequence number per shard id — how promotion picks
    /// the most-caught-up replica.
    pub fn applied_seqs(&self) -> BTreeMap<u64, u64> {
        let state = self.inner.apply.lock().expect("apply lock");
        state
            .streams
            .iter()
            .map(|(&id, s)| (id, s.applied_seq))
            .collect()
    }

    /// Current replication counters and per-shard lag.
    pub fn repl_stats(&self) -> ReplStats {
        self.inner
            .stats
            .lock()
            .map(|s| s.clone())
            .unwrap_or_default()
    }

    /// The flat engine serving this replica's reads (views registered
    /// here serve `read_view` / `view_deltas_since` incrementally).
    pub fn serving(&self) -> &EngineServer {
        &self.inner.serving
    }

    /// One shipping + apply pass: pull the manifest, mirror new bytes,
    /// decode and apply newly complete frames (or reconcile through the
    /// recovery planner when the stream surprises us). Serialized with
    /// the apply thread by the apply lock.
    pub fn sync_once(&self) -> Result<ReplSyncReport, EngineError> {
        let mut state = self.inner.apply.lock().expect("apply lock");
        let mut report = ReplSyncReport::default();

        let telemetry = Arc::clone(self.inner.serving.telemetry_registry());
        let ship_timer = telemetry.timer(Phase::ReplShip);
        let manifest = self.inner.source.manifest()?;
        if !manifest.primary_addr.is_empty() {
            if let Ok(mut a) = self.inner.primary_addr.lock() {
                *a = manifest.primary_addr.clone();
            }
        }
        let structural = mirror_files(
            self.inner.source.as_ref(),
            &self.inner.mirror,
            &manifest,
            self.inner.chunk_bytes,
            &mut report.bytes_shipped,
        )?;
        drop(ship_timer);

        let _apply_timer = telemetry.timer(Phase::ReplApply);
        let topology_changed = state.topology != manifest.topology;
        let mut need_reconcile = structural || topology_changed;
        if !need_reconcile {
            match self.apply_incremental(&mut state, &mut report) {
                Ok(()) => {}
                Err(StreamAnomaly(reason)) => {
                    // The stream surprised us (gap, CRC failure,
                    // prepare-count mismatch): fall back to the
                    // recovery planner rather than guessing.
                    let _ = reason;
                    need_reconcile = true;
                }
            }
        }
        if need_reconcile {
            self.reconcile(&mut state, &manifest, &mut report)?;
        }
        drop(state);

        self.update_lag(&manifest);
        if let Ok(mut stats) = self.inner.stats.lock() {
            stats.ship_passes += 1;
            stats.records_applied += report.records_consumed;
            stats.transactions_applied += report.transactions_applied;
        }
        Ok(report)
    }

    /// Decode and apply new complete frames for every shard stream.
    fn apply_incremental(
        &self,
        state: &mut ApplyState,
        report: &mut ReplSyncReport,
    ) -> Result<(), StreamAnomaly> {
        let ids: Vec<u64> = state.streams.keys().copied().collect();
        for id in ids {
            let dir = self.inner.mirror.join(format!("shard-{id}"));
            let stream = state.streams.get_mut(&id).expect("stream exists");
            loop {
                if stream.segment_first == 0 {
                    // No current segment: adopt one starting exactly
                    // where we left off, if it has been shipped.
                    let next = segment_file_name(stream.applied_seq + 1);
                    if dir.join(&next).exists() {
                        stream.segment_first = stream.applied_seq + 1;
                        stream.offset = 0;
                    } else {
                        break;
                    }
                }
                let path = dir.join(segment_file_name(stream.segment_first));
                let bytes = match std::fs::read(&path) {
                    Ok(b) => b,
                    Err(_) => return Err(StreamAnomaly("segment vanished")),
                };
                if (bytes.len() as u64) < stream.offset {
                    return Err(StreamAnomaly("segment shrank"));
                }
                let prefix = decode_segment_prefix(&bytes[stream.offset as usize..]);
                if prefix.corrupt.is_some() {
                    return Err(StreamAnomaly("corrupt frame"));
                }
                for rec in &prefix.records {
                    if rec.seq <= stream.applied_seq {
                        continue; // stale (already consumed pre-reconcile)
                    }
                    if rec.seq != stream.applied_seq + 1 {
                        return Err(StreamAnomaly("sequence gap"));
                    }
                    self.apply_record(stream, rec, report)?;
                }
                stream.offset += prefix.consumed as u64;
                // Rotation: once the writer opened the successor
                // segment, the current file never grows again.
                let succ = segment_file_name(stream.applied_seq + 1);
                if stream.segment_first != stream.applied_seq + 1 && dir.join(&succ).exists() {
                    stream.segment_first = stream.applied_seq + 1;
                    stream.offset = 0;
                } else {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Consume one record through the stream's transaction grouping —
    /// the incremental twin of [`resolve_transactions`].
    fn apply_record(
        &self,
        stream: &mut ShardStream,
        rec: &WalRecord,
        report: &mut ReplSyncReport,
    ) -> Result<(), StreamAnomaly> {
        match &rec.op {
            WalOp::Delta {
                table,
                delta,
                chained,
            } => {
                stream.pending.push((table.clone(), delta.clone()));
                if !chained {
                    let batch = std::mem::take(&mut stream.pending);
                    self.commit_batch(&batch, report)?;
                }
            }
            WalOp::Prepare { gtx, records } => {
                if stream.pending.len() as u64 != *records {
                    return Err(StreamAnomaly("prepare-count mismatch"));
                }
                let chain = std::mem::take(&mut stream.pending);
                stream.in_doubt.insert(gtx.clone(), chain);
            }
            WalOp::Resolve { gtx, committed } => {
                if let Some(chain) = stream.in_doubt.remove(gtx) {
                    if *committed {
                        self.commit_batch(&chain, report)?;
                    }
                }
            }
        }
        stream.applied_seq = rec.seq;
        report.records_consumed += 1;
        Ok(())
    }

    fn commit_batch(
        &self,
        batch: &[(String, Delta)],
        report: &mut ReplSyncReport,
    ) -> Result<(), StreamAnomaly> {
        if batch.is_empty() {
            return Ok(());
        }
        self.inner
            .serving
            .commit_deltas_checked(batch)
            .map_err(|_| StreamAnomaly("replayed delta failed pre-image validation"))?;
        report.transactions_applied += 1;
        Ok(())
    }

    /// Recompute the settled state from the mirror through the recovery
    /// planner, commit the difference to the serving engine (one
    /// ordinary transaction per pass — views and subscribers see it as
    /// a delta, not a resync), and rebuild the streams.
    fn reconcile(
        &self,
        state: &mut ApplyState,
        manifest: &ReplManifest,
        report: &mut ReplSyncReport,
    ) -> Result<(), EngineError> {
        let (settled, streams) = build_settled(&self.inner.mirror)?;
        let current = self.inner.serving.snapshot();
        let mut diffs: Vec<(String, Delta)> = Vec::new();
        for name in settled.table_names() {
            let Ok(old) = current.table(name) else {
                // The table set is fixed at genesis; a table the serving
                // engine has never seen means the mirror belongs to a
                // different database.
                return Err(EngineError::WalCorrupt(format!(
                    "reconcile found unknown table {name:?} in the mirror"
                )));
            };
            let delta = Delta::between(old, settled.table(name)?)?;
            if !delta.is_empty() {
                diffs.push((name.to_string(), delta));
            }
        }
        if !diffs.is_empty() {
            self.inner.serving.commit_deltas_checked(&diffs)?;
            report.transactions_applied += 1;
        }
        let consumed: u64 = streams.values().map(|s| s.applied_seq).sum();
        let before: u64 = state.streams.values().map(|s| s.applied_seq).sum();
        report.records_consumed += consumed.saturating_sub(before);
        state.streams = streams;
        state.topology = manifest.topology.clone();
        report.reconciled = true;
        Ok(())
    }

    fn update_lag(&self, manifest: &ReplManifest) {
        let applied = self.applied_seqs();
        let lag: Vec<ReplicaLag> = manifest
            .shards
            .iter()
            .map(|sm| {
                let a = applied.get(&sm.id).copied().unwrap_or(0);
                ReplicaLag {
                    shard: sm.id,
                    // A bare-directory source reports last_seq 0
                    // (unknown); clamp so lag never goes negative.
                    primary_seq: sm.last_seq.max(a),
                    applied_seq: a,
                }
            })
            .collect();
        if let Ok(mut stats) = self.inner.stats.lock() {
            stats.lag = lag;
        }
    }

    /// The serving engine's metrics with the replication section filled
    /// in.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.serving.metrics().with_repl(self.repl_stats())
    }

    /// The serving engine's telemetry snapshot with per-shard lag
    /// gauges injected (`repl_lag_records` total plus one per shard).
    pub fn telemetry(&self) -> esm_obs::TelemetrySnapshot {
        let mut snap = self.inner.serving.telemetry_registry().snapshot();
        let stats = self.repl_stats();
        snap.set_gauge("repl_lag_records", stats.max_records_behind());
        for lag in &stats.lag {
            snap.set_gauge(
                &format!("repl_lag_records_shard_{}", lag.shard),
                lag.records_behind(),
            );
        }
        snap
    }
}

/// An incremental-apply surprise: not an error, a signal to fall back
/// to the reconcile path.
struct StreamAnomaly(#[allow(dead_code)] &'static str);

/// Mirror everything `manifest` lists into `mirror`, appending only new
/// bytes of grown files. Returns whether anything *structural* changed
/// — a file shrank or vanished, a shard directory appeared or
/// disappeared — which forces the caller down the reconcile path.
fn mirror_files(
    source: &dyn WalSource,
    mirror: &Path,
    manifest: &ReplManifest,
    chunk_bytes: u64,
    bytes_shipped: &mut u64,
) -> Result<bool, EngineError> {
    let mut structural = false;

    // Topology first: write-then-rename so a crashed replica never holds
    // a torn manifest.
    let topo_path = mirror.join(TOPOLOGY_FILE);
    let current = std::fs::read(&topo_path).unwrap_or_default();
    if current != manifest.topology {
        let tmp = mirror.join(format!("{TOPOLOGY_FILE}.tmp"));
        std::fs::write(&tmp, &manifest.topology)?;
        std::fs::rename(&tmp, &topo_path)?;
    }

    let expected_dirs: BTreeSet<u64> = manifest.shards.iter().map(|s| s.id).collect();
    for sm in &manifest.shards {
        let dir = mirror.join(format!("shard-{}", sm.id));
        if !dir.exists() {
            structural = true; // a split published a new shard
            std::fs::create_dir_all(&dir)?;
        }
        let expected: BTreeSet<&str> = sm.files.iter().map(|f| f.name.as_str()).collect();
        for f in &sm.files {
            let path = dir.join(&f.name);
            let local = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if local > f.len {
                // Files never shrink on the primary; a longer local copy
                // means the mirror drifted. Refetch from scratch.
                std::fs::remove_file(&path)?;
                structural = true;
            }
            let mut at = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if at < f.len {
                let mut out = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                while at < f.len {
                    let want = (f.len - at).min(chunk_bytes);
                    let chunk = source.fetch(sm.id, &f.name, at, want)?;
                    if chunk.is_empty() {
                        break; // source EOF moved under us; next pass catches up
                    }
                    out.write_all(&chunk)?;
                    at += chunk.len() as u64;
                    *bytes_shipped += chunk.len() as u64;
                }
                out.sync_data()?;
            }
        }
        // Drop local files the primary no longer has (compacted
        // segments, pruned checkpoints). Removing an unconsumed segment
        // is structural; removing consumed history is not, but telling
        // them apart needs stream state — be conservative for segments,
        // quiet for checkpoints.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let recognized =
                parse_segment_name(name).is_some() || parse_checkpoint_name(name).is_some();
            if recognized && !expected.contains(name) {
                if parse_segment_name(name).is_some() {
                    structural = true;
                }
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    // Drop local shard dirs the primary no longer has (a merge removed
    // the donor).
    for entry in std::fs::read_dir(mirror)? {
        let entry = entry?;
        let Some(id) = entry
            .file_name()
            .to_str()
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if !expected_dirs.contains(&id) {
            std::fs::remove_dir_all(entry.path())?;
            structural = true;
        }
    }
    Ok(structural)
}

/// Build the settled database and fresh stream states from a mirrored
/// base directory — the recovery pipeline, minus in-doubt settlement
/// (a replica holds in-doubt chains; only promotion settles them).
fn build_settled(mirror: &Path) -> Result<(Database, BTreeMap<u64, ShardStream>), EngineError> {
    let (_next_id, _router, ids) = read_topology(mirror)?;
    let mut pieces = Vec::with_capacity(ids.len());
    let mut streams = BTreeMap::new();
    for &id in &ids {
        let dir = mirror.join(format!("shard-{id}"));
        let (ckpt, _skipped) = latest_valid_checkpoint(&dir)?;
        let (ckpt_seq, mut piece) = match ckpt {
            Some(c) => (c.seq, c.db),
            None => (0, Database::new()),
        };
        let segments = scan_segments(&dir)?;
        let (records, _stale) = plan_recovery(ckpt_seq, &segments)?;
        let resolved = resolve_transactions(&records)?;
        for (table, delta) in &resolved.applied {
            let next = delta.apply(piece.table(table)?)?;
            piece.replace_table(table.clone(), next);
        }
        let pending: Vec<(String, Delta)> = match resolved.tail_first_seq {
            Some(first) => records
                .iter()
                .filter(|r| r.seq >= first)
                .filter_map(|r| match &r.op {
                    WalOp::Delta { table, delta, .. } => Some((table.clone(), delta.clone())),
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        let applied_seq = records.last().map_or(ckpt_seq, |r| r.seq);
        let (segment_first, offset) = match segments.last() {
            Some(seg) => (seg.first_seq, seg.prefix.consumed as u64),
            None => (0, 0),
        };
        streams.insert(
            id,
            ShardStream {
                segment_first,
                offset,
                applied_seq,
                pending,
                in_doubt: resolved.in_doubt,
            },
        );
        pieces.push(piece);
    }
    let db = crate::shard::assemble(pieces.into_iter())?;
    Ok((db, streams))
}

// ---------------------------------------------------------------------
// Engine trait: full read surface, typed NotPrimary on every write.
// ---------------------------------------------------------------------

use crate::engine::{ArcEngine, CommitReceipt, Engine};
use crate::sub::{CommitNotifier, ViewDeltas};
use crate::view::EntangledView;
use esm_relational::ViewDef;

impl ReplicaEngine {
    fn not_primary<T>(&self) -> Result<T, EngineError> {
        Err(EngineError::NotPrimary {
            primary: self.primary_addr(),
        })
    }
}

impl Engine for ReplicaEngine {
    fn as_engine(&self) -> ArcEngine {
        Arc::new(self.clone())
    }

    fn table_names(&self) -> Result<Vec<String>, EngineError> {
        Engine::table_names(&self.inner.serving)
    }

    fn table(&self, name: &str) -> Result<Table, EngineError> {
        Engine::table(&self.inner.serving, name)
    }

    fn snapshot(&self) -> Result<Database, EngineError> {
        Engine::snapshot(&self.inner.serving)
    }

    /// View *definition* is local read-serving machinery (it registers
    /// a lens and materializes a window over replicated state), so a
    /// replica allows it; *writes* through the view are rejected.
    fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        Engine::define_view(&self.inner.serving, name, table, def)
    }

    fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        Engine::view(&self.inner.serving, name)
    }

    fn view_names(&self) -> Result<Vec<String>, EngineError> {
        Engine::view_names(&self.inner.serving)
    }

    fn read_view(&self, name: &str) -> Result<Table, EngineError> {
        Engine::read_view(&self.inner.serving, name)
    }

    fn write_view(&self, _name: &str, _view: Table) -> Result<Delta, EngineError> {
        self.not_primary()
    }

    fn edit_view_optimistic(
        &self,
        _name: &str,
        _attempts: u32,
        _edit: &dyn Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        self.not_primary()
    }

    fn transact(
        &self,
        _max_attempts: u32,
        _body: &dyn Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        self.not_primary()
    }

    fn commit_checked(&self, _deltas: &[(String, Delta)]) -> Result<CommitReceipt, EngineError> {
        self.not_primary()
    }

    fn metrics(&self) -> Result<MetricsSnapshot, EngineError> {
        Ok(ReplicaEngine::metrics(self))
    }

    fn telemetry(&self) -> Result<esm_obs::TelemetrySnapshot, EngineError> {
        Ok(ReplicaEngine::telemetry(self))
    }

    fn traces(&self) -> Result<esm_obs::TraceReport, EngineError> {
        Engine::traces(&self.inner.serving)
    }

    fn telemetry_handle(&self) -> Option<Arc<esm_obs::Telemetry>> {
        Engine::telemetry_handle(&self.inner.serving)
    }

    /// A replica's durability is the mirror, maintained by shipping —
    /// there is no local WAL to checkpoint.
    fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        Ok(None)
    }

    fn sync_wal(&self) -> Result<(), EngineError> {
        Ok(())
    }

    fn commit_notifier(&self) -> Option<Arc<CommitNotifier>> {
        Engine::commit_notifier(&self.inner.serving)
    }

    fn view_cursor(&self, name: &str) -> Result<u64, EngineError> {
        Engine::view_cursor(&self.inner.serving, name)
    }

    fn view_deltas_since(&self, name: &str, cursor: u64) -> Result<ViewDeltas, EngineError> {
        Engine::view_deltas_since(&self.inner.serving, name, cursor)
    }
}
