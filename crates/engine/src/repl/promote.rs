//! Failover promotion: turn a replica's mirror into a primary.
//!
//! Promotion is recovery — deliberately. The mirror is byte-for-byte
//! the primary's base directory, so
//! [`ShardedEngineServer::recover_with`] over it does exactly what a
//! primary restart would do: replay every shard's tail, settle in-doubt
//! 2PC transactions all-or-nothing (a commit resolution on *any* shard
//! wins; none means presumed abort), prune rebalance debris. Every
//! commit the dead primary acknowledged under `group_commit = 1` was
//! fsynced into segment bytes before the ack, so once those bytes are
//! mirrored, promotion cannot lose it.

use crate::durable::DurabilityConfig;
use crate::error::EngineError;
use crate::shard::{ShardRecoveryReport, ShardedEngineServer};

use super::replica::ReplicaEngine;

/// What a promotion produced.
#[derive(Debug)]
pub struct Promotion {
    /// The new primary, recovered over the mirror and taking writes.
    pub engine: ShardedEngineServer,
    /// What the settling recovery found (in-doubt verdicts, repairs).
    pub report: ShardRecoveryReport,
}

impl ReplicaEngine {
    /// Promote this replica: stop the apply thread, drain whatever the
    /// source still serves (best effort — the primary process is
    /// usually dead, but its disk may still be reachable through a
    /// [`super::DirWalSource`]), then run the proven sharded recovery
    /// over the mirror. The returned engine takes writes; this replica
    /// handle keeps serving its last-applied state and keeps returning
    /// [`EngineError::NotPrimary`] on writes — retire it once clients
    /// have re-resolved.
    ///
    /// `advertise` is the new primary's address for future redirects
    /// (pass `""` if not serving remotely).
    pub fn promote(&self, advertise: &str) -> Result<Promotion, EngineError> {
        self.stop();
        // Final drain: every byte the dead primary fsynced that we can
        // still reach must make it into the mirror before recovery
        // draws the durability line.
        let _ = self.sync_once();
        let config = DurabilityConfig::new(self.mirror_dir());
        let (engine, report) = ShardedEngineServer::recover_with(config)?;
        if !advertise.is_empty() {
            engine.advertise(advertise);
        }
        Ok(Promotion { engine, report })
    }
}

/// Pick the most-caught-up replica: the one with the highest total
/// applied sequence across shards (ties break to the earliest). Returns
/// `None` for an empty slice.
pub fn most_caught_up(replicas: &[ReplicaEngine]) -> Option<usize> {
    replicas
        .iter()
        .enumerate()
        .max_by_key(|(i, r)| {
            let total: u64 = r.applied_seqs().values().sum();
            (total, std::cmp::Reverse(*i))
        })
        .map(|(i, _)| i)
}
