//! Snapshot-isolated transactions over [`esm_store::Database`].
//!
//! ## Transaction lifecycle
//!
//! 1. [`TxStore::begin`] snapshots the committed database (cheap value
//!    clone) and remembers the WAL sequence number — the snapshot point.
//! 2. The [`Tx`] reads and writes its private working copy; nothing is
//!    visible to other transactions.
//! 3. [`Tx::commit`] diffs working copy against snapshot with
//!    [`Delta::between`] (one ordered merge per touched table), then
//!    validates **first-committer-wins**: if any record committed after
//!    the snapshot point touches a primary key this transaction also
//!    touches, the commit fails with
//!    [`EngineError::Conflict`] and the store is unchanged. Disjoint
//!    concurrent commits rebase cleanly: the winning deltas and ours
//!    commute, so applying ours on top of the current state is exactly the
//!    serial outcome.
//! 4. On success every per-table delta is applied to the live state,
//!    appended to the [`Wal`], and the transaction's deltas are returned
//!    to the caller (the bx idiom: every update reports what it changed).
//!
//! A transaction touching `k > 1` tables appends a *chain*: `k - 1`
//! records flagged `chained` and one terminator. The chain is the
//! durability unit — recovery applies it all-or-nothing, so a crash
//! between the records of a multi-table commit can never surface a
//! prefix of it (see [`crate::durable`]).
//!
//! [`Tx::rollback`] (or just dropping the `Tx`) discards the working copy.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use esm_store::{Database, Delta, Row, Table};

use crate::durable::{
    checkpoint_off_lock, Durability, DurabilityConfig, DurableWal, MaintenanceThread,
    RecoveryReport,
};
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::wal::{check_table_names, Wal, WalRecord};

/// The primary keys a delta touches, projected with `table`'s schema.
pub fn delta_keys(table: &Table, delta: &Delta) -> BTreeSet<Row> {
    delta
        .inserted
        .iter()
        .chain(delta.deleted.iter())
        .map(|row| table.key_of(row))
        .collect()
}

/// Do two deltas against the same table touch a common primary key?
pub fn deltas_conflict(table: &Table, a: &Delta, b: &Delta) -> bool {
    let a_keys = delta_keys(table, a);
    delta_keys(table, b).iter().any(|k| a_keys.contains(k))
}

struct Committed {
    db: Database,
    wal: Wal,
    durable: Option<DurableWal>,
}

/// A transactional, multi-reader store: hand out snapshot transactions,
/// serialize commits, keep the write-ahead log.
///
/// Cloning a `TxStore` clones a *handle*: all clones share the same
/// committed state, WAL and metrics, so one store can serve many threads.
#[derive(Clone)]
pub struct TxStore {
    committed: Arc<Mutex<Committed>>,
    metrics: Arc<Metrics>,
    /// Background checkpoint/compaction loop; stops when the last store
    /// handle drops. `None` for in-memory stores and when disabled.
    _maintenance: Option<Arc<MaintenanceThread>>,
}

/// One maintenance pass: checkpoint iff due, with the file write done
/// *outside* the store lock (committing threads stall only for the
/// snapshot clone).
fn maintenance_pass(committed: &Arc<Mutex<Committed>>) -> Result<Option<u64>, EngineError> {
    let poisoned = || EngineError::Io("store lock poisoned".into());
    checkpoint_off_lock(
        || {
            let mut guard = committed.lock().map_err(|_| poisoned())?;
            match guard.durable.as_mut() {
                Some(d) if d.needs_checkpoint() => {
                    Ok(Some((d.begin_checkpoint()?, d.checkpoint_dir())))
                }
                _ => Ok(None),
            }
        },
        |seq| {
            let mut guard = committed.lock().map_err(|_| poisoned())?;
            match guard.durable.as_mut() {
                Some(d) => d.finish_checkpoint(seq),
                None => Ok(seq),
            }
        },
    )
}

/// Spawn the background checkpoint loop for a durable store, unless the
/// config disables it (`checkpoint_every == 0` or
/// `maintenance_interval_ms == 0`).
fn spawn_maintenance(
    committed: &Arc<Mutex<Committed>>,
    cfg: &DurabilityConfig,
) -> Option<Arc<MaintenanceThread>> {
    if cfg.checkpoint_every == 0 || cfg.maintenance_interval_ms == 0 {
        return None;
    }
    let target = Arc::clone(committed);
    Some(Arc::new(MaintenanceThread::spawn(
        std::time::Duration::from_millis(cfg.maintenance_interval_ms),
        move || {
            // Failed checkpoints surface on the next commit (or simply
            // retry next tick); a poisoned store mutex means a writer
            // panicked and there is nothing left to maintain.
            let _ = maintenance_pass(&target);
        },
    )))
}

impl TxStore {
    /// A store whose initial committed state is `db` (WAL starts empty:
    /// `db` is the recovery baseline). In-memory durability.
    pub fn new(db: Database) -> TxStore {
        TxStore::with_durability(db, Durability::InMemory)
            .expect("in-memory stores over unreserved table names cannot fail to construct")
    }

    /// A store with an explicit [`Durability`]. With
    /// [`Durability::Durable`], every commit is written ahead to the
    /// segment log in `config.dir` (group-commit fsync per config)
    /// before it is applied, and `db` becomes the genesis checkpoint;
    /// checkpointing and compaction then run on a background maintenance
    /// thread (see [`DurabilityConfig::maintenance_interval_ms`]).
    pub fn with_durability(db: Database, durability: Durability) -> Result<TxStore, EngineError> {
        check_table_names(&db)?;
        let (durable, cfg) = match durability {
            Durability::InMemory => (None, None),
            Durability::Durable(cfg) => (Some(DurableWal::create(cfg.clone(), &db)?), Some(cfg)),
        };
        let committed = Arc::new(Mutex::new(Committed {
            db,
            wal: Wal::new(),
            durable,
        }));
        let maintenance = cfg.and_then(|cfg| spawn_maintenance(&committed, &cfg));
        Ok(TxStore {
            committed,
            metrics: Arc::new(Metrics::default()),
            _maintenance: maintenance,
        })
    }

    /// Recover a store from a durable WAL directory: load the newest
    /// checkpoint, replay newer segments, resume the log. The recovered
    /// database is both the live state and the new in-memory WAL
    /// baseline (the in-memory log continues at the durable seq).
    pub fn recover(config: DurabilityConfig) -> Result<(TxStore, RecoveryReport), EngineError> {
        let (durable, db, report) = DurableWal::open(config.clone())?;
        let committed = Arc::new(Mutex::new(Committed {
            db,
            wal: Wal::starting_at(report.last_seq),
            durable: Some(durable),
        }));
        let maintenance = spawn_maintenance(&committed, &config);
        Ok((
            TxStore {
                committed,
                metrics: Arc::new(Metrics::default()),
                _maintenance: maintenance,
            },
            report,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Committed> {
        self.committed
            .lock()
            .expect("esm-engine never panics while holding the store lock")
    }

    /// Begin a snapshot transaction.
    pub fn begin(&self) -> Tx {
        // Clone the database once under the commit lock; the working
        // copy is derived outside it so concurrent begins/commits only
        // serialize on a single copy.
        let (snapshot, snap_seq) = {
            let committed = self.lock();
            (committed.db.clone(), committed.wal.last_seq())
        };
        Tx {
            store: self.clone(),
            working: snapshot.clone(),
            snapshot,
            snap_seq,
        }
    }

    /// A snapshot of the committed database.
    pub fn db(&self) -> Database {
        self.lock().db.clone()
    }

    /// A snapshot of the write-ahead log.
    pub fn wal(&self) -> Wal {
        self.lock().wal.clone()
    }

    /// Current engine counters (durable-WAL stats included when one is
    /// attached).
    pub fn metrics(&self) -> MetricsSnapshot {
        let snap = self.metrics.snapshot();
        match self.lock().durable.as_ref() {
            Some(d) => snap.with_wal(d.stats()),
            None => snap,
        }
    }

    /// Force-fsync any group-commit batch the durable WAL is holding.
    /// No-op for in-memory stores.
    pub fn sync_wal(&self) -> Result<(), EngineError> {
        match self.lock().durable.as_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Write a durable checkpoint at the current committed seq and
    /// compact covered segments. Returns the covered seq, or `None` for
    /// in-memory stores.
    pub fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        match self.lock().durable.as_mut() {
            Some(d) => d.checkpoint().map(Some),
            None => Ok(None),
        }
    }

    /// Run one maintenance pass now — exactly what the background thread
    /// does each tick (checkpoint + compact iff the configured interval
    /// of records accumulated; the checkpoint file write happens outside
    /// the store lock). Deterministic tests and embedders that disable
    /// the thread drive this directly. Returns the covered seq when a
    /// checkpoint was written.
    pub fn run_maintenance(&self) -> Result<Option<u64>, EngineError> {
        maintenance_pass(&self.committed)
    }

    /// Run `body` in a transaction, retrying on conflict up to
    /// `max_attempts` times. Returns the committed per-table deltas.
    pub fn transact(
        &self,
        max_attempts: u32,
        body: impl Fn(&mut Tx) -> Result<(), EngineError>,
    ) -> Result<BTreeMap<String, Delta>, EngineError> {
        let mut attempts = 0;
        loop {
            let mut tx = self.begin();
            body(&mut tx)?;
            match tx.commit() {
                Ok(deltas) => return Ok(deltas),
                Err(EngineError::Conflict { .. }) if attempts + 1 < max_attempts => {
                    attempts += 1;
                    self.metrics.retry();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for TxStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let committed = self.lock();
        write!(
            f,
            "TxStore {{ tables: {}, wal_records: {} }}",
            committed.db.len(),
            committed.wal.len()
        )
    }
}

/// One snapshot-isolated transaction. Dropping it without committing is a
/// rollback.
pub struct Tx {
    store: TxStore,
    snapshot: Database,
    working: Database,
    snap_seq: u64,
}

impl Tx {
    /// The WAL sequence number this transaction's snapshot reflects.
    pub fn snapshot_seq(&self) -> u64 {
        self.snap_seq
    }

    /// Read a table from the working copy.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        Ok(self.working.table(name)?)
    }

    /// Mutate a table in the working copy.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        Ok(self.working.table_mut(name)?)
    }

    /// The whole working copy (reads see this transaction's own writes).
    pub fn db(&self) -> &Database {
        &self.working
    }

    /// The per-table changes this transaction would commit right now.
    pub fn pending_deltas(&self) -> Result<BTreeMap<String, Delta>, EngineError> {
        let mut deltas = BTreeMap::new();
        for name in self.snapshot.table_names() {
            let old = self.snapshot.table(name)?;
            let new = self.working.table(name)?;
            let delta = Delta::between(old, new)?;
            if !delta.is_empty() {
                deltas.insert(name.to_string(), delta);
            }
        }
        Ok(deltas)
    }

    /// Validate first-committer-wins and publish this transaction's
    /// changes. Returns the per-table deltas committed.
    ///
    /// A transaction touching several tables commits as one WAL *chain*
    /// (`k - 1` chained records plus a terminator): the durability unit
    /// is the whole transaction, so recovery can never surface a prefix
    /// of it.
    pub fn commit(self) -> Result<BTreeMap<String, Delta>, EngineError> {
        let deltas = self.pending_deltas()?;
        // Our own key sets, computed once per table (not once per WAL
        // record scanned below).
        let mut our_keys: BTreeMap<&str, BTreeSet<Row>> = BTreeMap::new();
        for (name, delta) in &deltas {
            our_keys.insert(name.as_str(), delta_keys(self.snapshot.table(name)?, delta));
        }
        let store = self.store.clone();
        let mut committed = store.lock();

        // First-committer-wins: any record committed after our snapshot
        // that touches a key we touch invalidates us. Markers carry no
        // keys and never conflict.
        let mut conflict = None;
        for rec in committed.wal.records_after(self.snap_seq) {
            let Some((rec_table, rec_delta)) = rec.delta_op() else {
                continue;
            };
            if let Some(ours) = our_keys.get(rec_table) {
                let table = self.snapshot.table(rec_table)?;
                if delta_keys(table, rec_delta)
                    .iter()
                    .any(|k| ours.contains(k))
                {
                    conflict = Some((rec_table.to_string(), rec.seq));
                    break;
                }
            }
        }
        if let Some((table, seq)) = conflict {
            drop(committed);
            store.metrics.conflict();
            return Err(EngineError::Conflict {
                table,
                detail: format!(
                    "transaction snapshot at seq {} overlaps commit seq {seq}",
                    self.snap_seq
                ),
            });
        }

        // Write ahead: the durable log gets every record (and its group
        // commit fsync) *before* anything is applied. All records but
        // the last carry the chain flag, so recovery treats the
        // transaction as one unit. On an I/O error nothing is published
        // to the live state and the durable log poisons itself (bytes
        // for a prefix of this transaction's records may have landed;
        // recovery re-derives the truth from the files — the usual
        // fsync-failure gray zone, fail-stop).
        let first_seq = committed.wal.next_seq();
        let chain = |i: usize, seq: u64, name: &String, delta: &Delta| {
            if i + 1 < deltas.len() {
                WalRecord::chained(seq, name.clone(), delta.clone())
            } else {
                WalRecord::delta(seq, name.clone(), delta.clone())
            }
        };
        if committed.durable.is_some() {
            for (i, (name, delta)) in deltas.iter().enumerate() {
                let rec = chain(i, first_seq + i as u64, name, delta);
                committed
                    .durable
                    .as_mut()
                    .expect("checked above")
                    .append(&rec)?;
            }
        }

        // Publish: apply each delta to the *current* committed table
        // (not our snapshot — disjoint concurrent commits are kept).
        let mut rows = 0u64;
        for (i, (name, delta)) in deltas.iter().enumerate() {
            let next = delta.apply(committed.db.table(name)?)?;
            committed.db.replace_table(name.clone(), next);
            committed
                .wal
                .push(chain(i, first_seq + i as u64, name, delta))
                .expect("fresh seqs under the commit lock continue the log");
            rows += delta.len() as u64;
        }
        drop(committed);
        store.metrics.commit(rows);
        Ok(deltas)
    }

    /// Discard the working copy.
    pub fn rollback(self) {}
}

impl std::fmt::Debug for Tx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tx {{ snap_seq: {} }}", self.snap_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, ValueType};

    fn store() -> TxStore {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        TxStore::new(db)
    }

    #[test]
    fn commit_publishes_and_reports_deltas() {
        let s = store();
        let mut tx = s.begin();
        tx.table_mut("t").unwrap().upsert(row![3, "c"]).unwrap();
        let deltas = tx.commit().unwrap();
        assert_eq!(deltas["t"].inserted, vec![row![3, "c"]]);
        assert!(s.db().table("t").unwrap().contains(&row![3, "c"]));
        assert_eq!(s.wal().len(), 1);
        assert_eq!(s.metrics().commits, 1);
    }

    #[test]
    fn rollback_and_drop_change_nothing() {
        let s = store();
        let mut tx = s.begin();
        tx.table_mut("t").unwrap().upsert(row![9, "x"]).unwrap();
        tx.rollback();
        let mut tx2 = s.begin();
        tx2.table_mut("t").unwrap().upsert(row![8, "y"]).unwrap();
        drop(tx2);
        assert_eq!(s.db().table("t").unwrap().len(), 2);
        assert!(s.wal().is_empty());
    }

    #[test]
    fn snapshots_are_isolated() {
        let s = store();
        let tx = s.begin();
        let mut other = s.begin();
        other.table_mut("t").unwrap().upsert(row![3, "c"]).unwrap();
        other.commit().unwrap();
        // tx still sees its snapshot.
        assert_eq!(tx.table("t").unwrap().len(), 2);
    }

    #[test]
    fn disjoint_concurrent_commits_both_land() {
        let s = store();
        let mut a = s.begin();
        let mut b = s.begin();
        a.table_mut("t")
            .unwrap()
            .upsert(row![10, "from a"])
            .unwrap();
        b.table_mut("t")
            .unwrap()
            .upsert(row![20, "from b"])
            .unwrap();
        a.commit().unwrap();
        b.commit().unwrap(); // disjoint keys: no conflict
        let t = s.db().table("t").unwrap().clone();
        assert!(t.contains(&row![10, "from a"]) && t.contains(&row![20, "from b"]));
    }

    #[test]
    fn overlapping_commit_is_first_committer_wins() {
        let s = store();
        let mut a = s.begin();
        let mut b = s.begin();
        a.table_mut("t")
            .unwrap()
            .upsert(row![1, "a (by a)"])
            .unwrap();
        b.table_mut("t")
            .unwrap()
            .upsert(row![1, "a (by b)"])
            .unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, EngineError::Conflict { ref table, .. } if table == "t"));
        assert!(s.db().table("t").unwrap().contains(&row![1, "a (by a)"]));
        assert_eq!(s.metrics().conflicts, 1);
    }

    #[test]
    fn transact_retries_until_clean() {
        let s = store();
        // A transaction that bumps a counter-ish row; retried closures
        // re-read the current value, so retries converge.
        let deltas = s
            .transact(3, |tx| {
                let cur = tx.table("t")?.len() as i64;
                tx.table_mut("t")?.upsert(row![100 + cur, "n"])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(s.metrics().commits, 1);
    }

    #[test]
    fn durable_stores_survive_restart() {
        let dir = std::env::temp_dir().join(format!("esm-tx-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir)
            .group_commit(4)
            .checkpoint_every(0);
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        let s = TxStore::with_durability(db, Durability::Durable(cfg.clone())).unwrap();
        for i in 0..9i64 {
            s.transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![10 + i, format!("r{i}")])?;
                Ok(())
            })
            .unwrap();
        }
        s.sync_wal().unwrap();
        let live = s.db();
        let m = s.metrics();
        assert_eq!(m.wal.appends, 9);
        assert!(
            m.wal.syncs >= 2,
            "group commit batched {} syncs",
            m.wal.syncs
        );
        drop(s);

        let (recovered, report) = TxStore::recover(cfg).unwrap();
        assert_eq!(recovered.db(), live);
        assert_eq!(report.records_replayed, 9);
        // The recovered store keeps committing with continuous seqs.
        recovered
            .transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![99, "post"])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(recovered.wal().records()[0].seq, 10);
        let ckpt = recovered.checkpoint().unwrap();
        assert_eq!(ckpt, Some(10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_table_commits_chain_in_the_wal() {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table("a", Table::new(schema.clone())).unwrap();
        db.create_table("b", Table::new(schema)).unwrap();
        let s = TxStore::new(db);
        let baseline = s.db();
        s.transact(1, |tx| {
            tx.table_mut("a")?.upsert(row![1, "x"])?;
            tx.table_mut("b")?.upsert(row![1, "y"])?;
            Ok(())
        })
        .unwrap();
        let wal = s.wal();
        assert_eq!(wal.len(), 2);
        // First record chained, terminator unchained: one atomic unit.
        assert!(matches!(
            wal.records()[0].op,
            crate::wal::WalOp::Delta { chained: true, .. }
        ));
        assert!(matches!(
            wal.records()[1].op,
            crate::wal::WalOp::Delta { chained: false, .. }
        ));
        assert_eq!(wal.replay(&baseline).unwrap(), s.db());
    }

    #[test]
    fn reserved_table_names_are_rejected_at_construction() {
        let schema = Schema::build(&[("id", ValueType::Int)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table("!commit", Table::new(schema)).unwrap();
        assert!(matches!(
            TxStore::with_durability(db, Durability::InMemory),
            Err(EngineError::ReservedTableName(_))
        ));
    }

    #[test]
    fn background_maintenance_checkpoints_off_the_commit_path() {
        let dir = std::env::temp_dir().join(format!("esm-tx-maint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir)
            .checkpoint_every(4)
            .maintenance_interval_ms(1);
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table("t", Table::new(schema)).unwrap();
        let s = TxStore::with_durability(db, Durability::Durable(cfg)).unwrap();
        for i in 0..12i64 {
            s.transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![i, "r"])?;
                Ok(())
            })
            .unwrap();
        }
        // The committing thread never checkpointed; the background loop
        // catches up on its own.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while s.metrics().wal.checkpoints < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            s.metrics().wal.checkpoints >= 2,
            "the maintenance thread checkpointed: {:?}",
            s.metrics().wal
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_replay_matches_live_state() {
        let s = store();
        let baseline = s.db();
        for i in 0..5i64 {
            s.transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![i + 10, format!("r{i}")])?;
                if i % 2 == 0 {
                    tx.table_mut("t")?.delete_by_key(&row![i + 9]);
                }
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(s.wal().replay(&baseline).unwrap(), s.db());
    }
}
