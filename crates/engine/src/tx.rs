//! Snapshot-isolated transactions over [`esm_store::Database`].
//!
//! ## Transaction lifecycle
//!
//! 1. [`TxStore::begin`] snapshots the committed database (cheap value
//!    clone) and remembers the WAL sequence number — the snapshot point.
//! 2. The [`Tx`] reads and writes its private working copy; nothing is
//!    visible to other transactions.
//! 3. [`Tx::commit`] diffs working copy against snapshot with
//!    [`Delta::between`] (one ordered merge per touched table), then
//!    validates **first-committer-wins**: if any record committed after
//!    the snapshot point touches a primary key this transaction also
//!    touches, the commit fails with
//!    [`EngineError::Conflict`] and the store is unchanged. Disjoint
//!    concurrent commits rebase cleanly: the winning deltas and ours
//!    commute, so applying ours on top of the current state is exactly the
//!    serial outcome.
//! 4. On success every per-table delta is applied to the live state,
//!    appended to the [`Wal`], and the transaction's deltas are returned
//!    to the caller (the bx idiom: every update reports what it changed).
//!
//! [`Tx::rollback`] (or just dropping the `Tx`) discards the working copy.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use esm_store::{Database, Delta, Row, Table};

use crate::durable::{Durability, DurabilityConfig, DurableWal, RecoveryReport};
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::wal::{Wal, WalRecord};

/// The primary keys a delta touches, projected with `table`'s schema.
pub fn delta_keys(table: &Table, delta: &Delta) -> BTreeSet<Row> {
    delta
        .inserted
        .iter()
        .chain(delta.deleted.iter())
        .map(|row| table.key_of(row))
        .collect()
}

/// Do two deltas against the same table touch a common primary key?
pub fn deltas_conflict(table: &Table, a: &Delta, b: &Delta) -> bool {
    let a_keys = delta_keys(table, a);
    delta_keys(table, b).iter().any(|k| a_keys.contains(k))
}

struct Committed {
    db: Database,
    wal: Wal,
    durable: Option<DurableWal>,
}

/// A transactional, multi-reader store: hand out snapshot transactions,
/// serialize commits, keep the write-ahead log.
///
/// Cloning a `TxStore` clones a *handle*: all clones share the same
/// committed state, WAL and metrics, so one store can serve many threads.
#[derive(Clone)]
pub struct TxStore {
    committed: Arc<Mutex<Committed>>,
    metrics: Arc<Metrics>,
}

impl TxStore {
    /// A store whose initial committed state is `db` (WAL starts empty:
    /// `db` is the recovery baseline). In-memory durability.
    pub fn new(db: Database) -> TxStore {
        TxStore::with_durability(db, Durability::InMemory)
            .expect("in-memory stores cannot fail to construct")
    }

    /// A store with an explicit [`Durability`]. With
    /// [`Durability::Durable`], every commit is written ahead to the
    /// segment log in `config.dir` (group-commit fsync per config)
    /// before it is applied, and `db` becomes the genesis checkpoint.
    pub fn with_durability(db: Database, durability: Durability) -> Result<TxStore, EngineError> {
        let durable = match durability {
            Durability::InMemory => None,
            Durability::Durable(cfg) => Some(DurableWal::create(cfg, &db)?),
        };
        Ok(TxStore {
            committed: Arc::new(Mutex::new(Committed {
                db,
                wal: Wal::new(),
                durable,
            })),
            metrics: Arc::new(Metrics::default()),
        })
    }

    /// Recover a store from a durable WAL directory: load the newest
    /// checkpoint, replay newer segments, resume the log. The recovered
    /// database is both the live state and the new in-memory WAL
    /// baseline (the in-memory log continues at the durable seq).
    pub fn recover(config: DurabilityConfig) -> Result<(TxStore, RecoveryReport), EngineError> {
        let (durable, db, report) = DurableWal::open(config)?;
        Ok((
            TxStore {
                committed: Arc::new(Mutex::new(Committed {
                    db,
                    wal: Wal::starting_at(report.last_seq),
                    durable: Some(durable),
                })),
                metrics: Arc::new(Metrics::default()),
            },
            report,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Committed> {
        self.committed
            .lock()
            .expect("esm-engine never panics while holding the store lock")
    }

    /// Begin a snapshot transaction.
    pub fn begin(&self) -> Tx {
        // Clone the database once under the commit lock; the working
        // copy is derived outside it so concurrent begins/commits only
        // serialize on a single copy.
        let (snapshot, snap_seq) = {
            let committed = self.lock();
            (committed.db.clone(), committed.wal.last_seq())
        };
        Tx {
            store: self.clone(),
            working: snapshot.clone(),
            snapshot,
            snap_seq,
        }
    }

    /// A snapshot of the committed database.
    pub fn db(&self) -> Database {
        self.lock().db.clone()
    }

    /// A snapshot of the write-ahead log.
    pub fn wal(&self) -> Wal {
        self.lock().wal.clone()
    }

    /// Current engine counters (durable-WAL stats included when one is
    /// attached).
    pub fn metrics(&self) -> MetricsSnapshot {
        let snap = self.metrics.snapshot();
        match self.lock().durable.as_ref() {
            Some(d) => snap.with_wal(d.stats()),
            None => snap,
        }
    }

    /// Force-fsync any group-commit batch the durable WAL is holding.
    /// No-op for in-memory stores.
    pub fn sync_wal(&self) -> Result<(), EngineError> {
        match self.lock().durable.as_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Write a durable checkpoint at the current committed seq and
    /// compact covered segments. Returns the covered seq, or `None` for
    /// in-memory stores.
    pub fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        match self.lock().durable.as_mut() {
            Some(d) => d.checkpoint().map(Some),
            None => Ok(None),
        }
    }

    /// Run `body` in a transaction, retrying on conflict up to
    /// `max_attempts` times. Returns the committed per-table deltas.
    pub fn transact(
        &self,
        max_attempts: u32,
        body: impl Fn(&mut Tx) -> Result<(), EngineError>,
    ) -> Result<BTreeMap<String, Delta>, EngineError> {
        let mut attempts = 0;
        loop {
            let mut tx = self.begin();
            body(&mut tx)?;
            match tx.commit() {
                Ok(deltas) => return Ok(deltas),
                Err(EngineError::Conflict { .. }) if attempts + 1 < max_attempts => {
                    attempts += 1;
                    self.metrics.retry();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for TxStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let committed = self.lock();
        write!(
            f,
            "TxStore {{ tables: {}, wal_records: {} }}",
            committed.db.len(),
            committed.wal.len()
        )
    }
}

/// One snapshot-isolated transaction. Dropping it without committing is a
/// rollback.
pub struct Tx {
    store: TxStore,
    snapshot: Database,
    working: Database,
    snap_seq: u64,
}

impl Tx {
    /// The WAL sequence number this transaction's snapshot reflects.
    pub fn snapshot_seq(&self) -> u64 {
        self.snap_seq
    }

    /// Read a table from the working copy.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        Ok(self.working.table(name)?)
    }

    /// Mutate a table in the working copy.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        Ok(self.working.table_mut(name)?)
    }

    /// The whole working copy (reads see this transaction's own writes).
    pub fn db(&self) -> &Database {
        &self.working
    }

    /// The per-table changes this transaction would commit right now.
    pub fn pending_deltas(&self) -> Result<BTreeMap<String, Delta>, EngineError> {
        let mut deltas = BTreeMap::new();
        for name in self.snapshot.table_names() {
            let old = self.snapshot.table(name)?;
            let new = self.working.table(name)?;
            let delta = Delta::between(old, new)?;
            if !delta.is_empty() {
                deltas.insert(name.to_string(), delta);
            }
        }
        Ok(deltas)
    }

    /// Validate first-committer-wins and publish this transaction's
    /// changes. Returns the per-table deltas committed.
    pub fn commit(self) -> Result<BTreeMap<String, Delta>, EngineError> {
        let deltas = self.pending_deltas()?;
        // Our own key sets, computed once per table (not once per WAL
        // record scanned below).
        let mut our_keys: BTreeMap<&String, BTreeSet<Row>> = BTreeMap::new();
        for (name, delta) in &deltas {
            our_keys.insert(name, delta_keys(self.snapshot.table(name)?, delta));
        }
        let store = self.store.clone();
        let mut committed = store.lock();

        // First-committer-wins: any record committed after our snapshot
        // that touches a key we touch invalidates us.
        let mut conflict = None;
        for rec in committed.wal.records_after(self.snap_seq) {
            if let Some(ours) = our_keys.get(&rec.table) {
                let table = self.snapshot.table(&rec.table)?;
                if delta_keys(table, &rec.delta)
                    .iter()
                    .any(|k| ours.contains(k))
                {
                    conflict = Some((rec.table.clone(), rec.seq));
                    break;
                }
            }
        }
        if let Some((table, seq)) = conflict {
            drop(committed);
            store.metrics.conflict();
            return Err(EngineError::Conflict {
                table,
                detail: format!(
                    "transaction snapshot at seq {} overlaps commit seq {seq}",
                    self.snap_seq
                ),
            });
        }

        // Write ahead: the durable log gets every record (and its group
        // commit fsync) *before* anything is applied. On an I/O error
        // nothing is published to the live state and the durable log
        // poisons itself (bytes for a prefix of this transaction's
        // records may have landed; recovery re-derives the truth from
        // the files — the usual fsync-failure gray zone, fail-stop).
        if committed.durable.is_some() {
            for (seq, (name, delta)) in (committed.wal.next_seq()..).zip(deltas.iter()) {
                let rec = WalRecord {
                    seq,
                    table: name.clone(),
                    delta: delta.clone(),
                };
                committed
                    .durable
                    .as_mut()
                    .expect("checked above")
                    .append(&rec)?;
            }
        }

        // Publish: apply each delta to the *current* committed table
        // (not our snapshot — disjoint concurrent commits are kept).
        let mut rows = 0u64;
        for (name, delta) in &deltas {
            let next = delta.apply(committed.db.table(name)?)?;
            committed.db.replace_table(name.clone(), next);
            committed.wal.append(name.clone(), delta.clone());
            rows += delta.len() as u64;
        }
        drop(committed);
        store.metrics.commit(rows);
        Ok(deltas)
    }

    /// Discard the working copy.
    pub fn rollback(self) {}
}

impl std::fmt::Debug for Tx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tx {{ snap_seq: {} }}", self.snap_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Schema, ValueType};

    fn store() -> TxStore {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        TxStore::new(db)
    }

    #[test]
    fn commit_publishes_and_reports_deltas() {
        let s = store();
        let mut tx = s.begin();
        tx.table_mut("t").unwrap().upsert(row![3, "c"]).unwrap();
        let deltas = tx.commit().unwrap();
        assert_eq!(deltas["t"].inserted, vec![row![3, "c"]]);
        assert!(s.db().table("t").unwrap().contains(&row![3, "c"]));
        assert_eq!(s.wal().len(), 1);
        assert_eq!(s.metrics().commits, 1);
    }

    #[test]
    fn rollback_and_drop_change_nothing() {
        let s = store();
        let mut tx = s.begin();
        tx.table_mut("t").unwrap().upsert(row![9, "x"]).unwrap();
        tx.rollback();
        let mut tx2 = s.begin();
        tx2.table_mut("t").unwrap().upsert(row![8, "y"]).unwrap();
        drop(tx2);
        assert_eq!(s.db().table("t").unwrap().len(), 2);
        assert!(s.wal().is_empty());
    }

    #[test]
    fn snapshots_are_isolated() {
        let s = store();
        let tx = s.begin();
        let mut other = s.begin();
        other.table_mut("t").unwrap().upsert(row![3, "c"]).unwrap();
        other.commit().unwrap();
        // tx still sees its snapshot.
        assert_eq!(tx.table("t").unwrap().len(), 2);
    }

    #[test]
    fn disjoint_concurrent_commits_both_land() {
        let s = store();
        let mut a = s.begin();
        let mut b = s.begin();
        a.table_mut("t")
            .unwrap()
            .upsert(row![10, "from a"])
            .unwrap();
        b.table_mut("t")
            .unwrap()
            .upsert(row![20, "from b"])
            .unwrap();
        a.commit().unwrap();
        b.commit().unwrap(); // disjoint keys: no conflict
        let t = s.db().table("t").unwrap().clone();
        assert!(t.contains(&row![10, "from a"]) && t.contains(&row![20, "from b"]));
    }

    #[test]
    fn overlapping_commit_is_first_committer_wins() {
        let s = store();
        let mut a = s.begin();
        let mut b = s.begin();
        a.table_mut("t")
            .unwrap()
            .upsert(row![1, "a (by a)"])
            .unwrap();
        b.table_mut("t")
            .unwrap()
            .upsert(row![1, "a (by b)"])
            .unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, EngineError::Conflict { ref table, .. } if table == "t"));
        assert!(s.db().table("t").unwrap().contains(&row![1, "a (by a)"]));
        assert_eq!(s.metrics().conflicts, 1);
    }

    #[test]
    fn transact_retries_until_clean() {
        let s = store();
        // A transaction that bumps a counter-ish row; retried closures
        // re-read the current value, so retries converge.
        let deltas = s
            .transact(3, |tx| {
                let cur = tx.table("t")?.len() as i64;
                tx.table_mut("t")?.upsert(row![100 + cur, "n"])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(s.metrics().commits, 1);
    }

    #[test]
    fn durable_stores_survive_restart() {
        let dir = std::env::temp_dir().join(format!("esm-tx-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir)
            .group_commit(4)
            .checkpoint_every(0);
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        let s = TxStore::with_durability(db, Durability::Durable(cfg.clone())).unwrap();
        for i in 0..9i64 {
            s.transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![10 + i, format!("r{i}")])?;
                Ok(())
            })
            .unwrap();
        }
        s.sync_wal().unwrap();
        let live = s.db();
        let m = s.metrics();
        assert_eq!(m.wal.appends, 9);
        assert!(
            m.wal.syncs >= 2,
            "group commit batched {} syncs",
            m.wal.syncs
        );
        drop(s);

        let (recovered, report) = TxStore::recover(cfg).unwrap();
        assert_eq!(recovered.db(), live);
        assert_eq!(report.records_replayed, 9);
        // The recovered store keeps committing with continuous seqs.
        recovered
            .transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![99, "post"])?;
                Ok(())
            })
            .unwrap();
        assert_eq!(recovered.wal().records()[0].seq, 10);
        let ckpt = recovered.checkpoint().unwrap();
        assert_eq!(ckpt, Some(10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_replay_matches_live_state() {
        let s = store();
        let baseline = s.db();
        for i in 0..5i64 {
            s.transact(1, |tx| {
                tx.table_mut("t")?.upsert(row![i + 10, format!("r{i}")])?;
                if i % 2 == 0 {
                    tx.table_mut("t")?.delete_by_key(&row![i + 9]);
                }
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(s.wal().replay(&baseline).unwrap(), s.db());
    }
}
