//! [`Session`]: one client's stateful seat at an engine.
//!
//! The paper's entangled state monad is a *session*: a client holds
//! `get`/`put` capabilities over shared hidden state, and the sequence
//! of its operations carries state of its own (what it has registered,
//! what it last observed). This type reifies that client-side state for
//! any [`Engine`] host — in-process, sharded or remote — so callers
//! stop re-threading names, retry budgets and commit positions by hand:
//!
//! * **view registrations** — the handles this session defined or
//!   opened, cached by name;
//! * **commit stamps** — the engine-serialization-order position of the
//!   session's last committed transaction (receipts from
//!   [`Engine::transact`]), a client-visible monotone clock;
//! * **retry policy** — one place to configure how stubbornly the
//!   session's optimistic edits and transactions fight
//!   first-committer-wins conflicts.
//!
//! The network server (`esm-net`) creates one `Session` per accepted
//! connection: per-client state lives here, engine-wide state stays in
//! the engine, and the wire protocol is a thin request/response skin
//! over these methods.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use esm_relational::ViewDef;
use esm_store::{Database, Delta, Table};

use crate::engine::{ArcEngine, CommitReceipt, Engine};
use crate::error::EngineError;
use crate::server::DEFAULT_OPTIMISTIC_ATTEMPTS;
use crate::view::EntangledView;

/// How stubbornly a session's optimistic operations retry
/// first-committer-wins conflicts before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per optimistic edit or transaction (at least 1).
    pub attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: DEFAULT_OPTIMISTIC_ATTEMPTS,
        }
    }
}

/// A client session over one engine: cached view handles, the last
/// observed commit stamp, and the session's retry policy.
///
/// The session is also where **causal traces are born**: every
/// operation offers itself to the engine's telemetry registry for head
/// sampling, and an elected request carries a fresh
/// [`esm_obs::TraceId`] through every instrumented layer below it —
/// down the wire for a remote engine, down to the fsync for a local
/// one.
#[derive(Debug)]
pub struct Session {
    engine: ArcEngine,
    retry: RetryPolicy,
    views: Mutex<BTreeMap<String, EntangledView>>,
    last_stamp: AtomicU64,
    /// The registry trace roots are minted from (the engine's own for
    /// in-process hosts, the client-local one for a remote engine).
    /// `None` when the engine exposes no registry: tracing is off.
    tracer: Option<std::sync::Arc<esm_obs::Telemetry>>,
}

impl Session {
    /// A session over `engine` with the default retry policy.
    pub fn new(engine: ArcEngine) -> Session {
        Session::with_retry(engine, RetryPolicy::default())
    }

    /// A session with an explicit retry policy.
    pub fn with_retry(engine: ArcEngine, retry: RetryPolicy) -> Session {
        let tracer = engine.telemetry_handle();
        Session {
            engine,
            retry: RetryPolicy {
                attempts: retry.attempts.max(1),
            },
            views: Mutex::new(BTreeMap::new()),
            last_stamp: AtomicU64::new(0),
            tracer,
        }
    }

    /// Offer this operation for head sampling; the returned guard (if
    /// elected) roots a trace every layer below will attach spans to.
    fn trace_root(&self, name: &str) -> Option<esm_obs::TraceRoot> {
        self.tracer.as_ref().and_then(|t| t.start_trace(name))
    }

    /// The engine this session speaks to.
    pub fn engine(&self) -> &dyn Engine {
        &*self.engine
    }

    /// This session's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The stamp of the last transaction this session committed through
    /// [`Session::transact`] (0 before any) — its position in the
    /// engine's serialization order.
    pub fn last_stamp(&self) -> u64 {
        self.last_stamp.load(Ordering::Acquire)
    }

    /// View names this session has registered or opened, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.views
            .lock()
            .expect("session views lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Compile and register a named view on the engine, caching the
    /// handle in this session.
    pub fn define_view(
        &self,
        name: &str,
        table: &str,
        def: &ViewDef,
    ) -> Result<EntangledView, EngineError> {
        let view = self.engine.define_view(name, table, def)?;
        self.views
            .lock()
            .expect("session views lock poisoned")
            .insert(name.to_string(), view.clone());
        Ok(view)
    }

    /// A handle onto a registered view, cached after the first open.
    pub fn view(&self, name: &str) -> Result<EntangledView, EngineError> {
        if let Some(view) = self
            .views
            .lock()
            .expect("session views lock poisoned")
            .get(name)
        {
            return Ok(view.clone());
        }
        let view = self.engine.view(name)?;
        self.views
            .lock()
            .expect("session views lock poisoned")
            .insert(name.to_string(), view.clone());
        Ok(view)
    }

    /// Read a view (opens and caches the handle as needed).
    pub fn read(&self, name: &str) -> Result<Table, EngineError> {
        let _trace = self.trace_root("session:read");
        self.view(name)?.get()
    }

    /// Write an edited view back (lens `put` semantics: replaces the
    /// whole visible window).
    pub fn put(&self, name: &str, view: Table) -> Result<Delta, EngineError> {
        let _trace = self.trace_root("session:put");
        self.view(name)?.put(view)
    }

    /// Transactionally edit a view under this session's retry policy.
    pub fn edit(
        &self,
        name: &str,
        edit: impl Fn(&mut Table) -> Result<(), EngineError>,
    ) -> Result<Delta, EngineError> {
        let _trace = self.trace_root("session:edit");
        self.view(name)?
            .edit_with_attempts(self.retry.attempts, edit)
    }

    /// Run a snapshot transaction under this session's retry policy,
    /// recording the receipt's commit stamp as the session's position.
    pub fn transact(
        &self,
        body: impl Fn(&mut Database) -> Result<(), EngineError>,
    ) -> Result<CommitReceipt, EngineError> {
        let _trace = self.trace_root("session:transact");
        let receipt = self.engine.transact(self.retry.attempts, &body)?;
        self.last_stamp.fetch_max(receipt.stamp, Ordering::AcqRel);
        Ok(receipt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::EngineServer;
    use esm_store::{row, Schema, ValueType};

    fn engine() -> ArcEngine {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("n", ValueType::Int)], &["id"]).unwrap();
        let t = Table::from_rows(schema, vec![row![1, 10], row![2, 20]]).unwrap();
        let mut db = Database::new();
        db.create_table("t", t).unwrap();
        EngineServer::new(db).as_engine()
    }

    #[test]
    fn sessions_cache_views_and_track_stamps() {
        let s = Session::new(engine());
        s.define_view("all", "t", &ViewDef::base()).unwrap();
        assert_eq!(s.view_names(), vec!["all"]);
        assert_eq!(s.read("all").unwrap().len(), 2);
        assert_eq!(s.last_stamp(), 0);

        let receipt = s
            .transact(|db| {
                db.table_mut("t")?.upsert(row![3, 30])?;
                Ok(())
            })
            .unwrap();
        assert!(receipt.stamp > 0);
        assert_eq!(s.last_stamp(), receipt.stamp);
        assert_eq!(s.read("all").unwrap().len(), 3);

        // Stamps are monotone across the session's commits.
        let again = s
            .transact(|db| {
                db.table_mut("t")?.upsert(row![4, 40])?;
                Ok(())
            })
            .unwrap();
        assert!(again.stamp > receipt.stamp);
        assert_eq!(s.last_stamp(), again.stamp);
    }

    #[test]
    fn sessions_edit_under_their_retry_policy() {
        let s = Session::with_retry(engine(), RetryPolicy { attempts: 3 });
        s.define_view("all", "t", &ViewDef::base()).unwrap();
        let delta = s
            .edit("all", |v| Ok(v.upsert(row![9, 90]).map(|_| ())?))
            .unwrap();
        assert_eq!(delta.inserted, vec![row![9, 90]]);
        // A second session over the same engine opens (not re-defines)
        // the view and sees the entangled state.
        let other = Session::new(s.engine().as_engine());
        assert_eq!(other.read("all").unwrap().len(), 3);
    }
}
