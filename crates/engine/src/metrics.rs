//! Engine counters: lock-free telemetry for the concurrent façade.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by all clients of one engine.
#[derive(Debug, Default)]
pub struct Metrics {
    commits: AtomicU64,
    conflicts: AtomicU64,
    retries: AtomicU64,
    view_reads: AtomicU64,
    rows_written: AtomicU64,
    materialized_reads: AtomicU64,
    deltas_applied: AtomicU64,
    rebuilds: AtomicU64,
    shards_pruned: AtomicU64,
    wal_truncations: AtomicU64,
    wal_records_truncated: AtomicU64,
}

/// Counters kept by the materialized-view maintenance machinery. In
/// steady state a registered view serves every read from its maintained
/// window: `materialized_reads` climbs, `deltas_applied` tracks the
/// committed changes folded in, and `rebuilds` stays flat at its
/// registration value — a rising rebuild count means some delta hit the
/// propagation escape hatch and reads are falling back to full lens
/// `get` re-runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewStats {
    /// Reads served from a maintained materialized window (no lens `get`
    /// re-run).
    pub materialized_reads: u64,
    /// Committed base deltas translated and applied to view windows.
    pub deltas_applied: u64,
    /// Full lens-`get` window (re)builds: one per view registration, plus
    /// one per propagation escape hatch or shard-topology change.
    pub rebuilds: u64,
    /// Shard windows skipped by key-range pruning, summed over reads
    /// (zero for unsharded engines and unbounded views).
    pub shards_pruned: u64,
}

/// Counters kept by a durable WAL backend (zero when the engine runs
/// in-memory). Updated under the WAL lock, read via
/// [`crate::DurableWal::stats`] or merged into [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended to the durable log.
    pub appends: u64,
    /// fsync calls issued (group commit batches several appends per
    /// sync).
    pub syncs: u64,
    /// Bytes appended to segment files.
    pub bytes_written: u64,
    /// Segment rotations (a new segment file opened after the size
    /// threshold).
    pub rotations: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Segment files deleted by compaction.
    pub segments_compacted: u64,
}

/// Counters kept by the sharding layer (all zero for unsharded engines).
/// Updated by [`crate::shard::ShardedEngineServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Transactions that touched exactly one shard (fast path: no
    /// coordination, one WAL).
    pub single_shard_commits: u64,
    /// Transactions committed across shards by two-phase commit.
    pub cross_shard_commits: u64,
    /// 2PC prepare phases executed (= participants prepared, summed over
    /// cross-shard transactions).
    pub prepares: u64,
    /// Per-shard in-doubt settlements recovery resolved as committed (a
    /// resolution marker was found on some shard). Counts shard-side
    /// chains, not distinct transactions: one transaction in doubt on
    /// `k` shards contributes `k`.
    pub recovery_commits: u64,
    /// Per-shard in-doubt settlements recovery resolved as aborted (no
    /// shard held a commit marker: presumed abort). Same per-shard
    /// counting unit as `recovery_commits`.
    pub recovery_aborts: u64,
    /// Online shard splits performed.
    pub splits: u64,
    /// Online shard merges performed.
    pub merges: u64,
    /// Rows moved between shards by splits, merges and recovery repair.
    pub rows_migrated: u64,
    /// Splits initiated by the auto-rebalancing policy (a subset of
    /// `splits`).
    pub auto_splits: u64,
    /// Merges initiated by the auto-rebalancing policy (a subset of
    /// `merges`).
    pub auto_merges: u64,
    /// The hottest shard's commit-rate EWMA, in millicommits/second
    /// (×1000; zero until the policy thread has sampled). The policy's
    /// split trigger reads this.
    pub commit_rate_ewma_milli: u64,
    /// Fleet commit-rate skew: hottest EWMA over coldest EWMA, ×1000
    /// (so 2000 = the hottest shard commits twice as fast as the
    /// coldest). 1000 when perfectly even; zero until sampled.
    pub commit_rate_skew_milli: u64,
}

/// One shard's load sample: the inputs the auto-rebalancing policy
/// decides from, exported so operators can see what the policy sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// The shard's stable id (the `shard-<id>` directory).
    pub shard: u64,
    /// Rows currently resident on the shard (summed over tables).
    pub rows: u64,
    /// Commits this shard has participated in since construction.
    pub commits: u64,
    /// The policy thread's commit-rate EWMA for this shard, in
    /// millicommits/second (zero until sampled).
    pub rate_ewma_milli: u64,
}

/// One replica's per-shard replication lag: how far its applied WAL
/// position trails the primary's durable tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaLag {
    /// The shard's stable id.
    pub shard: u64,
    /// The primary's durable last sequence number for this shard at the
    /// last manifest fetch (zero when the source does not know it).
    pub primary_seq: u64,
    /// The last WAL record this replica has consumed for this shard.
    pub applied_seq: u64,
}

impl ReplicaLag {
    /// Records the replica still trails by (saturating: a replica that
    /// mirrored unsynced bytes can briefly run ahead of the reported
    /// durable tail).
    pub fn records_behind(&self) -> u64 {
        self.primary_seq.saturating_sub(self.applied_seq)
    }
}

/// Replication counters kept by a [`crate::repl::ReplicaEngine`] (empty
/// everywhere else).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Per-shard lag, in topology order, from the replica's most recent
    /// shipping pass.
    pub lag: Vec<ReplicaLag>,
    /// Shipping passes completed (manifest fetch + mirror + apply).
    pub ship_passes: u64,
    /// WAL records applied to the replica's serving engine.
    pub records_applied: u64,
    /// Settled transactions applied (chains count once).
    pub transactions_applied: u64,
}

impl ReplStats {
    /// The worst per-shard lag in records (zero when fully caught up or
    /// when no lag has been sampled).
    pub fn max_records_behind(&self) -> u64 {
        self.lag
            .iter()
            .map(ReplicaLag::records_behind)
            .max()
            .unwrap_or(0)
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Transactions committed.
    pub commits: u64,
    /// First-committer-wins conflicts detected.
    pub conflicts: u64,
    /// Optimistic write attempts retried after a conflict.
    pub retries: u64,
    /// View reads served.
    pub view_reads: u64,
    /// Rows inserted or deleted by committed deltas.
    pub rows_written: u64,
    /// In-memory WAL truncations performed (prefixes dropped below the
    /// view cursors and folded into the replay baseline).
    pub wal_truncations: u64,
    /// WAL records dropped by those truncations.
    pub wal_records_truncated: u64,
    /// Durable-WAL counters (all zero for in-memory engines).
    pub wal: WalStats,
    /// Sharding counters (all zero for unsharded engines).
    pub shard: ShardStats,
    /// Materialized-view maintenance counters.
    pub view: ViewStats,
    /// Per-shard load samples, in topology order (empty for unsharded
    /// engines).
    pub shard_load: Vec<ShardLoad>,
    /// Replication counters (empty except on replica engines).
    pub repl: ReplStats,
}

impl Metrics {
    pub(crate) fn commit(&self, rows: u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.rows_written.fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn view_read(&self) {
        self.view_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn view_materialized(&self) {
        self.materialized_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn view_deltas(&self, n: u64) {
        self.deltas_applied.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn view_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn view_pruned(&self, shards: u64) {
        self.shards_pruned.fetch_add(shards, Ordering::Relaxed);
    }

    pub(crate) fn wal_truncated(&self, records: u64) {
        self.wal_truncations.fetch_add(1, Ordering::Relaxed);
        self.wal_records_truncated
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Copy the current counter values. Durable-WAL stats live with the
    /// [`crate::DurableWal`] (single-writer under the WAL lock); callers
    /// that own one merge them in with [`MetricsSnapshot::with_wal`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            view_reads: self.view_reads.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            wal_truncations: self.wal_truncations.load(Ordering::Relaxed),
            wal_records_truncated: self.wal_records_truncated.load(Ordering::Relaxed),
            wal: WalStats::default(),
            shard: ShardStats::default(),
            view: ViewStats {
                materialized_reads: self.materialized_reads.load(Ordering::Relaxed),
                deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
                rebuilds: self.rebuilds.load(Ordering::Relaxed),
                shards_pruned: self.shards_pruned.load(Ordering::Relaxed),
            },
            shard_load: Vec::new(),
            repl: ReplStats::default(),
        }
    }
}

impl MetricsSnapshot {
    /// This snapshot with durable-WAL stats filled in.
    pub fn with_wal(mut self, wal: WalStats) -> MetricsSnapshot {
        self.wal = wal;
        self
    }

    /// This snapshot with sharding stats filled in.
    pub fn with_shard(mut self, shard: ShardStats) -> MetricsSnapshot {
        self.shard = shard;
        self
    }

    /// This snapshot with per-shard load samples filled in.
    pub fn with_shard_load(mut self, load: Vec<ShardLoad>) -> MetricsSnapshot {
        self.shard_load = load;
        self
    }

    /// This snapshot with replication counters filled in.
    pub fn with_repl(mut self, repl: ReplStats) -> MetricsSnapshot {
        self.repl = repl;
        self
    }
}

/// Atomic counters behind [`ShardStats`], owned by the sharded facade.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    single_shard_commits: AtomicU64,
    cross_shard_commits: AtomicU64,
    prepares: AtomicU64,
    recovery_commits: AtomicU64,
    recovery_aborts: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    rows_migrated: AtomicU64,
    auto_splits: AtomicU64,
    auto_merges: AtomicU64,
}

impl ShardMetrics {
    pub(crate) fn single_shard_commit(&self) {
        self.single_shard_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cross_shard_commit(&self, participants: u64) {
        self.cross_shard_commits.fetch_add(1, Ordering::Relaxed);
        self.prepares.fetch_add(participants, Ordering::Relaxed);
    }

    pub(crate) fn recovery_commit(&self) {
        self.recovery_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn recovery_abort(&self) {
        self.recovery_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn split(&self, rows_moved: u64) {
        self.splits.fetch_add(1, Ordering::Relaxed);
        self.rows_migrated.fetch_add(rows_moved, Ordering::Relaxed);
    }

    pub(crate) fn merge(&self, rows_moved: u64) {
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.rows_migrated.fetch_add(rows_moved, Ordering::Relaxed);
    }

    pub(crate) fn migrated(&self, rows: u64) {
        self.rows_migrated.fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn auto_split(&self) {
        self.auto_splits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn auto_merge(&self) {
        self.auto_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> ShardStats {
        ShardStats {
            single_shard_commits: self.single_shard_commits.load(Ordering::Relaxed),
            cross_shard_commits: self.cross_shard_commits.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            recovery_commits: self.recovery_commits.load(Ordering::Relaxed),
            recovery_aborts: self.recovery_aborts.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            rows_migrated: self.rows_migrated.load(Ordering::Relaxed),
            auto_splits: self.auto_splits.load(Ordering::Relaxed),
            auto_merges: self.auto_merges.load(Ordering::Relaxed),
            // The EWMA aggregates are not atomics here: the sharded
            // engine folds them in from the policy thread's load map
            // (see `ShardedEngineServer::metrics`).
            commit_rate_ewma_milli: 0,
            commit_rate_skew_milli: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.commit(3);
        m.commit(2);
        m.conflict();
        m.retry();
        m.view_read();
        m.view_materialized();
        m.view_deltas(4);
        m.view_rebuild();
        m.view_pruned(3);
        let s = m.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.rows_written, 5);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.view_reads, 1);
        assert_eq!(s.view.materialized_reads, 1);
        assert_eq!(s.view.deltas_applied, 4);
        assert_eq!(s.view.rebuilds, 1);
        assert_eq!(s.view.shards_pruned, 3);
    }
}
