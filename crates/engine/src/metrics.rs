//! Engine counters: lock-free telemetry for the concurrent façade.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by all clients of one engine.
#[derive(Debug, Default)]
pub struct Metrics {
    commits: AtomicU64,
    conflicts: AtomicU64,
    retries: AtomicU64,
    view_reads: AtomicU64,
    rows_written: AtomicU64,
}

/// Counters kept by a durable WAL backend (zero when the engine runs
/// in-memory). Updated under the WAL lock, read via
/// [`crate::DurableWal::stats`] or merged into [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended to the durable log.
    pub appends: u64,
    /// fsync calls issued (group commit batches several appends per
    /// sync).
    pub syncs: u64,
    /// Bytes appended to segment files.
    pub bytes_written: u64,
    /// Segment rotations (a new segment file opened after the size
    /// threshold).
    pub rotations: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Segment files deleted by compaction.
    pub segments_compacted: u64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Transactions committed.
    pub commits: u64,
    /// First-committer-wins conflicts detected.
    pub conflicts: u64,
    /// Optimistic write attempts retried after a conflict.
    pub retries: u64,
    /// View reads served.
    pub view_reads: u64,
    /// Rows inserted or deleted by committed deltas.
    pub rows_written: u64,
    /// Durable-WAL counters (all zero for in-memory engines).
    pub wal: WalStats,
}

impl Metrics {
    pub(crate) fn commit(&self, rows: u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.rows_written.fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn view_read(&self) {
        self.view_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values. Durable-WAL stats live with the
    /// [`crate::DurableWal`] (single-writer under the WAL lock); callers
    /// that own one merge them in with [`MetricsSnapshot::with_wal`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            view_reads: self.view_reads.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            wal: WalStats::default(),
        }
    }
}

impl MetricsSnapshot {
    /// This snapshot with durable-WAL stats filled in.
    pub fn with_wal(mut self, wal: WalStats) -> MetricsSnapshot {
        self.wal = wal;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.commit(3);
        m.commit(2);
        m.conflict();
        m.retry();
        m.view_read();
        let s = m.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.rows_written, 5);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.view_reads, 1);
    }
}
