//! The durable WAL backend: file-backed segments + checkpoints.
//!
//! [`DurableWal`] owns one directory and keeps three things in step:
//!
//! * an **active segment file** receiving encoded [`WalRecord`]s, synced
//!   by group commit (one fsync per `group_commit` appends) and rotated
//!   once it passes `segment_bytes`;
//! * a **shadow database** — the baseline plus every applied record,
//!   maintained in place so a checkpoint can serialize the committed
//!   state without replaying anything; chained transaction records
//!   buffer until their terminator, and 2PC-prepared chains are held *in
//!   doubt* until their resolution marker (see [`crate::wal`]);
//! * the **newest checkpoint**, written atomically; compaction deletes
//!   every segment (and older checkpoint) fully covered by it.
//!   Checkpoints and compaction run **off the commit path**: the engine
//!   spawns a maintenance thread that calls
//!   [`DurableWal::maybe_checkpoint`] on an interval
//!   ([`DurabilityConfig::maintenance_interval_ms`]), so a committing
//!   thread never pays for a snapshot write.
//!
//! ## Recovery state machine ([`DurableWal::open`])
//!
//! 1. **Checkpoint scan** — pick the newest checkpoint that decodes and
//!    carries its `!end` trailer; torn ones (crash mid-checkpoint) are
//!    skipped in favour of an older valid one.
//! 2. **Segment scan** — read every `wal-*.seg` in name order and decode
//!    the longest complete-record prefix of each
//!    ([`crate::segment::decode_segment_prefix`]); a torn tail is legal
//!    only where a crash can produce one — after the last durable
//!    record — while a CRC failure on a *complete* frame is mid-stream
//!    bit rot and fails recovery outright.
//! 3. **Plan** ([`plan_recovery`]) — walk the records in order, skipping
//!    *stale* ones (seq already covered by the checkpoint or an earlier
//!    segment — duplicate/stale segment files are tolerated, never
//!    re-applied), requiring the rest to continue `checkpoint_seq`
//!    contiguously; a gap or a record following a torn segment is real
//!    corruption and fails recovery.
//! 4. **Resolve** ([`resolve_transactions`]) — group the surviving
//!    records into transactions: complete chains apply; a prepared chain
//!    applies or drops with its resolution marker; a prepared chain with
//!    *no* resolution is returned as **in doubt** (the sharded recovery
//!    decides its outcome by consulting every shard — see
//!    [`crate::shard`]); an *unterminated* trailing chain is an
//!    interrupted transaction and is discarded whole — all-or-nothing,
//!    never a prefix.
//! 5. **Repair** — torn tails and discarded trailing chains are
//!    truncated off their files so the directory is clean again, and a
//!    fresh active segment is opened at `last_seq + 1`.
//!
//! The crash-recovery suite drives steps 1–4 at every byte offset of a
//! recorded run and asserts the recovered state equals the live state at
//! the longest durable transaction prefix — the paper's equivalence
//! claim (state rebuilt by replaying the log ≡ state observed live) made
//! exhaustive.
//!
//! ## Durability contract
//!
//! With `group_commit = 1` every acknowledged commit is on disk before
//! the commit call returns. With `group_commit = n`, up to `n - 1`
//! acknowledged records may be lost to a crash (they are never torn —
//! recovery trims to a record boundary). The durability unit is one
//! *transaction*: a multi-record chain interrupted between records
//! recovers to nothing, never to a prefix.
//!
//! Write-path failures are **fail-stop**: once an append, fsync or
//! checkpoint write errors, bytes may or may not have reached the disk,
//! so the log poisons itself — the failed commit is reported to its
//! caller, the engine's live state is not advanced, and every later
//! durable write refuses with a pointer to restart-and-recover. Recovery
//! then re-derives the truth from the files (a record whose bytes did
//! land is replayed; one whose bytes did not is gone — either way a
//! clean prefix, the usual fsync-failure gray zone made explicit).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use esm_store::{Database, Delta};

use crate::checkpoint::{checkpoint_file_name, latest_valid_checkpoint, Checkpoint};
use crate::checkpoint::{parse_checkpoint_name, sync_dir};
use crate::error::EngineError;
use crate::metrics::WalStats;
use crate::segment::{
    decode_segment_prefix, parse_segment_name, segment_file_name, DiskFile, SegmentPrefix,
    SegmentWriter,
};
use crate::wal::{WalOp, WalRecord};

/// Whether (and how) an engine persists its WAL.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// Keep the WAL in memory only (the default; tests and benches).
    #[default]
    InMemory,
    /// Persist to file-backed segments with checkpoints.
    Durable(DurabilityConfig),
}

impl Durability {
    /// Durable persistence into `dir` with default tuning.
    pub fn durable(dir: impl Into<PathBuf>) -> Durability {
        Durability::Durable(DurabilityConfig::new(dir))
    }
}

/// Tuning for a durable WAL directory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding segments and checkpoints (created if absent).
    pub dir: PathBuf,
    /// Rotate to a fresh segment file once the active one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// Group commit: fsync once per this many appended records. 1 = sync
    /// every record (strongest durability); larger values batch, trading
    /// the tail of acknowledged-but-unsynced records on crash for fewer
    /// fsyncs.
    pub group_commit: usize,
    /// Checkpoint (and compact) once this many records accumulate past
    /// the newest checkpoint; 0 = only on explicit
    /// [`DurableWal::checkpoint`] calls. The work runs on the engine's
    /// maintenance thread, never on a committing thread.
    pub checkpoint_every: u64,
    /// How often the maintenance thread wakes to check
    /// [`DurableWal::needs_checkpoint`], in milliseconds. 0 disables the
    /// thread (embedders then drive `run_maintenance` themselves — the
    /// deterministic choice for tests).
    pub maintenance_interval_ms: u64,
    /// Telemetry tuning for the engine this config builds: slow-op
    /// threshold, ring and trace-buffer capacities, trace sampling
    /// rate. Defaults preserve the zero-config behavior.
    pub telemetry: esm_obs::TelemetryConfig,
    /// Chaos knob: extra nanoseconds every disk fsync sleeps before
    /// issuing, read live from the shared atomic. The load/chaos
    /// harness holds a clone and raises it mid-run to inject a
    /// sync-stall fault window; `None` (the default) costs nothing.
    pub sync_delay: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl DurabilityConfig {
    /// Defaults: 64 KiB segments, sync every record, checkpoint every
    /// 256 records, maintenance tick every 20 ms.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
            group_commit: 1,
            checkpoint_every: 256,
            maintenance_interval_ms: 20,
            telemetry: esm_obs::TelemetryConfig::default(),
            sync_delay: None,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> DurabilityConfig {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Set the group-commit batch size.
    pub fn group_commit(mut self, records: usize) -> DurabilityConfig {
        self.group_commit = records.max(1);
        self
    }

    /// Set the automatic checkpoint interval (0 disables).
    pub fn checkpoint_every(mut self, records: u64) -> DurabilityConfig {
        self.checkpoint_every = records;
        self
    }

    /// Set the maintenance thread's wake interval (0 disables the
    /// thread; checkpoints then happen only via explicit calls).
    pub fn maintenance_interval_ms(mut self, ms: u64) -> DurabilityConfig {
        self.maintenance_interval_ms = ms;
        self
    }

    /// Set the engine's telemetry tuning (slow threshold, ring and
    /// trace capacities, trace sampling rate).
    pub fn telemetry_config(mut self, telemetry: esm_obs::TelemetryConfig) -> DurabilityConfig {
        self.telemetry = telemetry;
        self
    }

    /// Install a live fsync-delay handle (nanoseconds; the chaos
    /// harness raises it mid-run to inject sync stalls).
    pub fn sync_delay_handle(
        mut self,
        delay: Arc<std::sync::atomic::AtomicU64>,
    ) -> DurabilityConfig {
        self.sync_delay = Some(delay);
        self
    }
}

/// What a recovery pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// The last durable sequence number.
    pub last_seq: u64,
    /// Records replayed on top of the checkpoint
    /// (`last_seq - checkpoint_seq`; strictly fewer than a
    /// replay-from-genesis whenever a later checkpoint exists).
    pub records_replayed: u64,
    /// Stale/duplicate records skipped (from segments already covered by
    /// the checkpoint or by earlier segments).
    pub stale_skipped: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Torn tail bytes truncated off segment files (crash artifacts and
    /// discarded trailing chains).
    pub torn_bytes: u64,
    /// Corrupt or torn checkpoint files skipped over.
    pub corrupt_checkpoints_skipped: u64,
    /// 2PC transactions left in doubt (prepared, never resolved); the
    /// sharded recovery settles them — see [`crate::shard`].
    pub in_doubt_transactions: u64,
    /// Records of an unterminated trailing transaction chain discarded
    /// (and truncated off the log) so recovery is all-or-nothing.
    pub tail_records_discarded: u64,
}

/// One scanned segment, ready for [`plan_recovery`].
#[derive(Debug, Clone)]
pub struct ScannedSegment {
    /// First sequence number, from the file name.
    pub first_seq: u64,
    /// The decoded complete-record prefix.
    pub prefix: SegmentPrefix,
}

/// Decide which records a set of scanned segments contributes on top of
/// a checkpoint. Pure: the crash-recovery harness calls this directly at
/// every truncation offset without touching a filesystem.
///
/// Segments must be ordered by `first_seq`. Stale records (seq already
/// covered) are skipped, never re-applied; surviving records must extend
/// `checkpoint_seq` contiguously. A torn segment is accepted, but any
/// *new* record after one means bytes went missing mid-log — corruption,
/// not a crash artifact — and fails with `WalCorrupt`. A segment whose
/// decode reported bit rot ([`SegmentPrefix::corrupt`]) fails recovery
/// outright: truncating past a CRC failure would silently drop committed
/// records.
pub fn plan_recovery(
    checkpoint_seq: u64,
    segments: &[ScannedSegment],
) -> Result<(Vec<WalRecord>, u64), EngineError> {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut last = checkpoint_seq;
    let mut stale = 0u64;
    let mut torn_at: Option<u64> = None;
    for seg in segments {
        if let Some(reason) = &seg.prefix.corrupt {
            return Err(EngineError::WalCorrupt(format!(
                "segment starting at seq {}: {reason}",
                seg.first_seq
            )));
        }
        for rec in &seg.prefix.records {
            if rec.seq <= last {
                stale += 1;
                continue;
            }
            if let Some(first) = torn_at {
                return Err(EngineError::WalCorrupt(format!(
                    "record seq {} follows a torn segment (first seq {first}): log bytes are missing mid-history",
                    rec.seq
                )));
            }
            if rec.seq != last + 1 {
                return Err(EngineError::WalCorrupt(format!(
                    "sequence gap in recovery: expected {}, found {}",
                    last + 1,
                    rec.seq
                )));
            }
            records.push(rec.clone());
            last += 1;
        }
        if seg.prefix.torn {
            torn_at = Some(seg.first_seq);
        }
    }
    Ok((records, stale))
}

/// A contiguous record run grouped into transactions — what recovery may
/// actually apply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolvedLog {
    /// Deltas to apply, in log order: complete chains plus prepared
    /// chains whose `!resolve commit` is in the log.
    pub applied: Vec<(String, Delta)>,
    /// Prepared-but-unresolved chains, keyed by global transaction id —
    /// held, not applied, until the sharded recovery decides.
    pub in_doubt: BTreeMap<String, Vec<(String, Delta)>>,
    /// Every resolution marker seen (`gtx → committed`), including ones
    /// whose prepare predates this run — the evidence the sharded
    /// recovery votes with.
    pub resolutions: BTreeMap<String, bool>,
    /// Sequence number of the first record of an unterminated trailing
    /// chain (everything from here on must be discarded and truncated),
    /// if one exists.
    pub tail_first_seq: Option<u64>,
}

/// Group a contiguous record run into transactions (pure; see
/// [`ResolvedLog`]). Fails with `WalCorrupt` on structural impossibilia:
/// a prepare marker whose record count disagrees with its chain.
pub fn resolve_transactions(records: &[WalRecord]) -> Result<ResolvedLog, EngineError> {
    let mut out = ResolvedLog::default();
    let mut pending: Vec<(u64, String, Delta)> = Vec::new();
    for rec in records {
        match &rec.op {
            WalOp::Delta {
                table,
                delta,
                chained,
            } => {
                pending.push((rec.seq, table.clone(), delta.clone()));
                if !chained {
                    out.applied
                        .extend(pending.drain(..).map(|(_, t, d)| (t, d)));
                }
            }
            WalOp::Prepare { gtx, records } => {
                if pending.len() as u64 != *records {
                    return Err(EngineError::WalCorrupt(format!(
                        "prepare marker for {gtx} at seq {} claims {records} records, found {}",
                        rec.seq,
                        pending.len()
                    )));
                }
                out.in_doubt.insert(
                    gtx.clone(),
                    pending.drain(..).map(|(_, t, d)| (t, d)).collect(),
                );
            }
            WalOp::Resolve { gtx, committed } => {
                out.resolutions.insert(gtx.clone(), *committed);
                if let Some(group) = out.in_doubt.remove(gtx) {
                    if *committed {
                        out.applied.extend(group);
                    }
                }
            }
        }
    }
    out.tail_first_seq = pending.first().map(|(seq, _, _)| *seq);
    Ok(out)
}

/// Scan a directory's segment files (sorted, decoded). Shared by
/// [`DurableWal::open`] and the recovery benchmarks.
pub fn scan_segments(dir: &Path) -> Result<Vec<ScannedSegment>, EngineError> {
    let mut firsts: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
            firsts.push(first);
        }
    }
    firsts.sort_unstable();
    let mut segments = Vec::with_capacity(firsts.len());
    for first_seq in firsts {
        let bytes = std::fs::read(dir.join(segment_file_name(first_seq)))?;
        segments.push(ScannedSegment {
            first_seq,
            prefix: decode_segment_prefix(&bytes),
        });
    }
    Ok(segments)
}

/// A file-backed WAL: segments + checkpoints in one directory.
///
/// Single-writer: the engine serializes appends under its WAL lock. The
/// directory must belong to one live engine at a time.
#[derive(Debug)]
pub struct DurableWal {
    config: DurabilityConfig,
    writer: SegmentWriter<DiskFile>,
    shadow: Database,
    /// Chained records of the in-flight transaction, not yet applied to
    /// the shadow (applied together at the chain terminator).
    pending: Vec<(String, Delta)>,
    /// Prepared 2PC chains awaiting their resolution marker.
    in_doubt: BTreeMap<String, Vec<(String, Delta)>>,
    /// Resolution markers recovered from the log (evidence for the
    /// sharded recovery's commit/abort vote).
    recovered_resolutions: BTreeMap<String, bool>,
    last_seq: u64,
    checkpoint_seq: u64,
    stats: WalStats,
    /// Set on the first write-path failure; all further writes refuse.
    poisoned: Option<String>,
    /// Phase-latency registry handed to every segment writer this log
    /// opens (appends → `CommitWalAppend`, syncs → `CommitFsync`).
    telemetry: Option<Arc<esm_obs::Telemetry>>,
}

impl DurableWal {
    /// Initialise a fresh durable WAL in `config.dir`: writes the genesis
    /// checkpoint (seq 0 = `baseline`) and opens the first segment.
    /// Refuses a directory that already holds a log — use
    /// [`DurableWal::open`] to recover one.
    pub fn create(
        config: DurabilityConfig,
        baseline: &Database,
    ) -> Result<DurableWal, EngineError> {
        std::fs::create_dir_all(&config.dir)?;
        let occupied = std::fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .any(|e| {
                let name = e.file_name();
                let name = name.to_str().unwrap_or("");
                parse_segment_name(name).is_some() || parse_checkpoint_name(name).is_some()
            });
        if occupied {
            return Err(EngineError::Io(format!(
                "{} already contains a durable WAL; recover it instead of re-creating",
                config.dir.display()
            )));
        }
        let mut stats = WalStats::default();
        Checkpoint {
            seq: 0,
            db: baseline.clone(),
        }
        .write_atomic(&config.dir)?;
        stats.checkpoints += 1;
        let writer = open_segment(&config.dir, 1, config.sync_delay.clone())?;
        Ok(DurableWal {
            config,
            writer,
            shadow: baseline.clone(),
            pending: Vec::new(),
            in_doubt: BTreeMap::new(),
            recovered_resolutions: BTreeMap::new(),
            last_seq: 0,
            checkpoint_seq: 0,
            stats,
            poisoned: None,
            telemetry: None,
        })
    }

    /// Recover a durable WAL directory (see the module docs for the state
    /// machine). Returns the log handle, the recovered committed
    /// database, and a report of what recovery did.
    ///
    /// Prepared-but-unresolved 2PC chains are **not** applied to the
    /// returned database; they stay queued in [`DurableWal::in_doubt`]
    /// until a resolution marker is appended (the sharded recovery does
    /// this after consulting every shard — a standalone engine has no
    /// cross-shard transactions and recovers none).
    pub fn open(
        config: DurabilityConfig,
    ) -> Result<(DurableWal, Database, RecoveryReport), EngineError> {
        let (ckpt, corrupt_skipped) = latest_valid_checkpoint(&config.dir)?;
        let ckpt = ckpt.ok_or_else(|| {
            EngineError::WalCorrupt(format!(
                "{} holds no valid checkpoint: not a durable WAL directory",
                config.dir.display()
            ))
        })?;
        let segments = scan_segments(&config.dir)?;
        let (records, stale_skipped) = plan_recovery(ckpt.seq, &segments)?;
        let resolved = resolve_transactions(&records)?;

        // Housekeeping: a crash between a checkpoint's temp-file write
        // and its rename strands a `*.tmp` that nothing else will ever
        // look at; sweep them here so they cannot accumulate.
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }

        // Repair: truncate torn tails, and truncate the records of an
        // unterminated trailing chain (an interrupted transaction must
        // vanish whole, not linger to be mis-joined with future appends).
        let keep_last_seq = match resolved.tail_first_seq {
            Some(first) => first - 1,
            None => ckpt.seq + records.len() as u64,
        };
        let mut torn_bytes = 0u64;
        for seg in &segments {
            let keep_records = seg
                .prefix
                .records
                .partition_point(|r| r.seq <= keep_last_seq);
            let keep_bytes = if keep_records == seg.prefix.records.len() {
                if !seg.prefix.torn {
                    continue;
                }
                seg.prefix.consumed as u64
            } else if keep_records == 0 {
                0
            } else {
                seg.prefix.ends[keep_records - 1] as u64
            };
            let path = config.dir.join(segment_file_name(seg.first_seq));
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            let full = file.metadata()?.len();
            torn_bytes += full - keep_bytes;
            file.set_len(keep_bytes)?;
            file.sync_data()?;
        }

        let mut db = ckpt.db;
        for (table, delta) in &resolved.applied {
            apply_in_place(&mut db, table, delta)?;
        }
        let report = RecoveryReport {
            checkpoint_seq: ckpt.seq,
            last_seq: keep_last_seq,
            records_replayed: keep_last_seq - ckpt.seq,
            stale_skipped,
            segments_scanned: segments.len() as u64,
            torn_bytes,
            corrupt_checkpoints_skipped: corrupt_skipped,
            in_doubt_transactions: resolved.in_doubt.len() as u64,
            tail_records_discarded: records.len() as u64 - (keep_last_seq - ckpt.seq),
        };
        let writer = open_segment(&config.dir, keep_last_seq + 1, config.sync_delay.clone())?;
        Ok((
            DurableWal {
                config,
                shadow: db.clone(),
                writer,
                pending: Vec::new(),
                in_doubt: resolved.in_doubt,
                recovered_resolutions: resolved.resolutions,
                last_seq: keep_last_seq,
                checkpoint_seq: ckpt.seq,
                stats: WalStats::default(),
                poisoned: None,
                telemetry: None,
            },
            db,
            report,
        ))
    }

    /// Refuse further writes once a write-path failure happened: bytes
    /// (or a sync) may or may not have reached the disk, so the only
    /// honest sequence-number authority left is the log itself, via
    /// restart + [`DurableWal::open`]. Fail-stop beats guessing.
    fn guard(&self) -> Result<(), EngineError> {
        match &self.poisoned {
            Some(cause) => Err(EngineError::Io(format!(
                "durable WAL poisoned by an earlier failure ({cause}); \
                 restart and recover the directory"
            ))),
            None => Ok(()),
        }
    }

    /// Poison this log if `result` is an error (write-path side effects
    /// may have partially landed).
    fn poisoning<T>(&mut self, result: Result<T, EngineError>) -> Result<T, EngineError> {
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    /// Append one record: write-ahead to the active segment, group
    /// commit, rotate per config. The record's seq must continue the log
    /// exactly (checked *before* any side effect; a seq rejection leaves
    /// the log fully usable). Any failure past that point poisons the
    /// log — see [`DurableWal::guard`]. Checkpointing is **not** done
    /// here — the maintenance thread calls
    /// [`DurableWal::maybe_checkpoint`] off the commit path.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), EngineError> {
        self.append_impl(record, false)
    }

    /// [`DurableWal::append`] minus the inline group-commit fsync: the
    /// record is written to the segment but the sync is the caller's
    /// responsibility — either an explicit [`DurableWal::sync`] (the 2PC
    /// coordinator, which must sync at protocol-defined points) or a
    /// [`GroupCommit`] wait, where one leader syncs for every concurrent
    /// committer. Rotation still syncs first, so deferral never reorders
    /// bytes across segment files.
    pub fn append_deferred(&mut self, record: &WalRecord) -> Result<(), EngineError> {
        self.append_impl(record, true)
    }

    fn append_impl(&mut self, record: &WalRecord, defer_sync: bool) -> Result<(), EngineError> {
        self.guard()?;
        if record.seq <= self.last_seq {
            return Err(EngineError::DuplicateSeq {
                seq: record.seq,
                last: self.last_seq,
            });
        }
        if record.seq != self.last_seq + 1 {
            return Err(EngineError::WalCorrupt(format!(
                "durable append would leave a gap: expected {}, got {}",
                self.last_seq + 1,
                record.seq
            )));
        }
        let appended = self.append_inner(record, defer_sync);
        self.poisoning(appended)
    }

    fn append_inner(&mut self, record: &WalRecord, defer_sync: bool) -> Result<(), EngineError> {
        let bytes = self.writer.append(record)?;
        self.stats.appends += 1;
        self.stats.bytes_written += bytes;
        self.last_seq = record.seq;
        match &record.op {
            WalOp::Delta {
                table,
                delta,
                chained,
            } => {
                self.pending.push((table.clone(), delta.clone()));
                if !chained {
                    for (table, delta) in std::mem::take(&mut self.pending) {
                        apply_in_place(&mut self.shadow, &table, &delta)?;
                    }
                }
            }
            WalOp::Prepare { gtx, records } => {
                if self.pending.len() as u64 != *records {
                    return Err(EngineError::WalCorrupt(format!(
                        "prepare marker for {gtx} claims {records} records, found {}",
                        self.pending.len()
                    )));
                }
                self.in_doubt
                    .insert(gtx.clone(), std::mem::take(&mut self.pending));
            }
            WalOp::Resolve { gtx, committed } => {
                if let Some(group) = self.in_doubt.remove(gtx) {
                    if *committed {
                        for (table, delta) in group {
                            apply_in_place(&mut self.shadow, &table, &delta)?;
                        }
                    }
                }
            }
        }
        if !defer_sync && self.writer.pending() >= self.config.group_commit {
            self.sync_inner()?;
        }
        if self.writer.bytes() >= self.config.segment_bytes {
            self.rotate_inner()?;
        }
        Ok(())
    }

    /// Force-fsync any records the group-commit batch is still holding.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        self.guard()?;
        let synced = self.sync_inner();
        self.poisoning(synced)
    }

    fn sync_inner(&mut self) -> Result<(), EngineError> {
        if self.writer.sync()? {
            self.stats.syncs += 1;
        }
        Ok(())
    }

    /// Sync the active segment and open a fresh one at `last_seq + 1`.
    fn rotate_inner(&mut self) -> Result<(), EngineError> {
        self.sync_inner()?;
        self.writer = open_segment(
            &self.config.dir,
            self.last_seq + 1,
            self.config.sync_delay.clone(),
        )?;
        self.writer.set_telemetry(self.telemetry.clone());
        self.stats.rotations += 1;
        Ok(())
    }

    /// Attach a phase-latency registry: segment appends and fsyncs start
    /// recording into it. Survives segment rotation.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<esm_obs::Telemetry>>) {
        self.writer.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Would [`DurableWal::maybe_checkpoint`] write a checkpoint right
    /// now? True once `checkpoint_every` records accumulated past the
    /// newest checkpoint and no transaction is mid-flight (a checkpoint
    /// must never cover half a chain or an unresolved prepare).
    pub fn needs_checkpoint(&self) -> bool {
        self.poisoned.is_none()
            && self.config.checkpoint_every > 0
            && self.last_seq - self.checkpoint_seq >= self.config.checkpoint_every
            && self.pending.is_empty()
            && self.in_doubt.is_empty()
    }

    /// Checkpoint iff [`DurableWal::needs_checkpoint`] — the synchronous
    /// convenience (file write included, under the caller's lock).
    /// Engine maintenance loops instead use the
    /// [`DurableWal::begin_checkpoint`]/[`DurableWal::finish_checkpoint`]
    /// split so the serialize + fsync happens *outside* the commit lock.
    /// Returns the covered seq when one was written.
    pub fn maybe_checkpoint(&mut self) -> Result<Option<u64>, EngineError> {
        if self.needs_checkpoint() {
            self.checkpoint().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Write a checkpoint at the current seq, then compact. Returns the
    /// sequence number the checkpoint covers. Refuses while a
    /// transaction is mid-flight (chained records without their
    /// terminator, or an unresolved 2PC prepare): the snapshot would
    /// cover half a transaction.
    pub fn checkpoint(&mut self) -> Result<u64, EngineError> {
        let ckpt = self.begin_checkpoint()?;
        let seq = ckpt.seq;
        ckpt.write_atomic(&self.config.dir)?;
        self.finish_checkpoint(seq)
    }

    /// First half of an off-the-commit-path checkpoint: flush the
    /// group-commit batch and snapshot the committed state (an O(db)
    /// clone — cheap next to the serialize + fsync the caller then runs
    /// *without* holding the engine lock, finishing with
    /// [`DurableWal::finish_checkpoint`]). Refuses while a transaction
    /// is mid-flight, exactly like [`DurableWal::checkpoint`].
    pub fn begin_checkpoint(&mut self) -> Result<Checkpoint, EngineError> {
        self.guard()?;
        if !self.pending.is_empty() || !self.in_doubt.is_empty() {
            return Err(EngineError::Io(format!(
                "checkpoint refused: {} chained records and {} in-doubt transactions in flight",
                self.pending.len(),
                self.in_doubt.len()
            )));
        }
        let synced = self.sync_inner();
        self.poisoning(synced)?;
        Ok(Checkpoint {
            seq: self.last_seq,
            db: self.shadow.clone(),
        })
    }

    /// Second half: record a checkpoint the caller wrote (atomically)
    /// and compact covered history. A failed checkpoint *write* is not
    /// poisonous — the log itself was untouched; simply skip this call
    /// and retry later. `seq` only ever raises the checkpoint horizon.
    pub fn finish_checkpoint(&mut self, seq: u64) -> Result<u64, EngineError> {
        self.guard()?;
        if seq > self.checkpoint_seq {
            self.checkpoint_seq = seq;
            self.stats.checkpoints += 1;
        }
        // Compaction failures are not poisonous: a leftover covered
        // segment or old checkpoint wastes disk but corrupts nothing
        // (recovery skips its records as stale).
        self.compact()?;
        Ok(seq)
    }

    /// The directory checkpoints belong in (for off-lock writes).
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.config.dir.clone()
    }

    /// Has a write-path failure poisoned this log? (All further writes
    /// refuse until restart + recovery; a sharded engine also refuses to
    /// checkpoint *peers* while any shard is poisoned — see
    /// [`crate::shard`].)
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Drop history no recovery will ever need. The two newest
    /// checkpoints are retained — if the newest turns out torn (a
    /// filesystem that lied about the atomic rename), recovery falls
    /// back to the previous one — so the compaction horizon is the
    /// *older* retained checkpoint: checkpoints below it are deleted,
    /// and so is every segment fully covered by it (a segment is covered
    /// when the *next* segment starts at or before `horizon + 1`; the
    /// active segment has no successor and is never deleted). Returns
    /// how many segment files were removed.
    pub fn compact(&mut self) -> Result<u64, EngineError> {
        let mut firsts: Vec<u64> = Vec::new();
        let mut ckpts: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&self.config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_str().unwrap_or("");
            if let Some(first) = parse_segment_name(name) {
                firsts.push(first);
            } else if let Some(seq) = parse_checkpoint_name(name) {
                ckpts.push(seq);
            }
        }
        firsts.sort_unstable();
        ckpts.sort_unstable();
        let horizon = match ckpts.len() {
            0 | 1 => return Ok(0), // nothing is safely coverable yet
            n => ckpts[n - 2],
        };
        let mut removed = 0u64;
        for pair in firsts.windows(2) {
            if pair[1] <= horizon + 1 {
                std::fs::remove_file(self.config.dir.join(segment_file_name(pair[0])))?;
                removed += 1;
            }
        }
        for &seq in &ckpts[..ckpts.len() - 2] {
            std::fs::remove_file(self.config.dir.join(checkpoint_file_name(seq)))?;
        }
        self.stats.segments_compacted += removed;
        sync_dir(&self.config.dir)?;
        Ok(removed)
    }

    /// The last appended sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The sequence number covered by the newest checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// The committed state as the durable log sees it (baseline plus
    /// every applied record; in-flight chains and in-doubt prepares are
    /// not included). Equals the engine's live committed state; the test
    /// suites assert it.
    pub fn state(&self) -> &Database {
        &self.shadow
    }

    /// Prepared-but-unresolved 2PC chains, keyed by global transaction
    /// id (populated by recovery; settled when a resolution marker is
    /// appended).
    pub fn in_doubt(&self) -> &BTreeMap<String, Vec<(String, Delta)>> {
        &self.in_doubt
    }

    /// Resolution markers found by recovery (`gtx → committed`) — the
    /// evidence the sharded recovery votes with when settling in-doubt
    /// transactions.
    pub fn recovered_resolutions(&self) -> &BTreeMap<String, bool> {
        &self.recovered_resolutions
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Durability counters (appends, syncs, rotations, checkpoints, …).
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

/// Cross-session group commit: one leader fsyncs for every concurrent
/// committer.
///
/// The protocol, from a committer's point of view:
///
/// 1. Append your record(s) with [`DurableWal::append_deferred`] and
///    publish your in-memory state, all under the engine's usual locks;
///    capture your commit seq.
/// 2. Drop those locks and call [`GroupCommit::wait_durable`] with the
///    seq and a sync closure.
/// 3. If the batch is already durable past your seq (a leader synced
///    while you were between steps), return immediately. If no leader is
///    running, *become* the leader: run the sync closure — it re-takes
///    the WAL lock, notes the log's `last_seq` (which includes every
///    concurrent committer's append so far), fsyncs once, and returns
///    that seq — then publish it and wake every parked waiter. Otherwise
///    park on the condvar until the leader's broadcast.
///
/// The effect: N sessions committing concurrently pay ~1 fsync, because
/// whoever leads carries everyone who appended before the sync was
/// issued; durability is never weakened — no committer returns before
/// its own seq is on disk.
///
/// A failed leader sync poisons the group (and, via the closure, the
/// log itself — fail-stop): every parked and future waiter gets the
/// error instead of a false durability claim.
#[derive(Debug)]
pub(crate) struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
}

#[derive(Debug)]
struct GcState {
    /// Every seq at or below this is fsynced.
    durable_seq: u64,
    /// A leader is currently running the sync closure.
    leader: bool,
    /// Set when a leader's sync failed; all waits refuse from then on.
    poisoned: Option<String>,
}

impl GroupCommit {
    /// A group-commit gate over a log whose durable horizon is
    /// currently `durable_seq`.
    pub(crate) fn new(durable_seq: u64) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GcState {
                durable_seq,
                leader: false,
                poisoned: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until `seq` is durable (see the type docs for the
    /// protocol). `sync` must fsync the log and return the seq the sync
    /// covered; it is invoked without the group lock held, so it may
    /// (must) take the WAL lock itself. Returns whether this committer
    /// **led** (ran the sync closure itself) or rode a leader's batch —
    /// the distinction the trace layer tags `group_commit_wait` spans
    /// with.
    pub(crate) fn wait_durable(
        &self,
        seq: u64,
        sync: impl FnOnce() -> Result<u64, EngineError>,
    ) -> Result<bool, EngineError> {
        let mut sync = Some(sync);
        let mut led = false;
        let mut st = self.state.lock().expect("group commit lock");
        loop {
            if let Some(cause) = &st.poisoned {
                return Err(EngineError::Io(format!(
                    "group commit poisoned by an earlier sync failure ({cause}); \
                     restart and recover the directory"
                )));
            }
            if st.durable_seq >= seq {
                return Ok(led);
            }
            match (st.leader, sync.take()) {
                (false, Some(sync)) => {
                    st.leader = true;
                    led = true;
                    drop(st);
                    let result = sync();
                    st = self.state.lock().expect("group commit lock");
                    st.leader = false;
                    match result {
                        Ok(through) => st.durable_seq = st.durable_seq.max(through),
                        Err(e) => {
                            st.poisoned = Some(e.to_string());
                            self.cv.notify_all();
                            return Err(e);
                        }
                    }
                    self.cv.notify_all();
                    // Loop: our own sync ran after our append, so
                    // durable_seq now covers seq.
                }
                (leading, taken) => {
                    // Either a leader is running (park until its
                    // broadcast) or we already led and are re-checking.
                    sync = taken;
                    debug_assert!(leading || sync.is_none());
                    st = self.cv.wait(st).expect("group commit lock");
                }
            }
        }
    }
}

/// Run one checkpoint with the engine lock released during the file
/// write: `begin` runs under the caller's lock and returns the snapshot
/// plus target directory when a checkpoint is due (`None` = nothing to
/// do); the serialize + fsync happens here, lock-free; `finish` runs
/// under the lock again to record the result and compact. Committing
/// threads therefore stall only for `begin`'s O(db) clone, never for
/// the disk write.
pub(crate) fn checkpoint_off_lock(
    begin: impl FnOnce() -> Result<Option<(Checkpoint, PathBuf)>, EngineError>,
    finish: impl FnOnce(u64) -> Result<u64, EngineError>,
) -> Result<Option<u64>, EngineError> {
    let Some((ckpt, dir)) = begin()? else {
        return Ok(None);
    };
    let seq = ckpt.seq;
    ckpt.write_atomic(&dir)?;
    finish(seq).map(Some)
}

/// A background maintenance loop: wakes every `interval`, runs `tick`,
/// exits (joining the thread) when dropped. The engine uses it to move
/// checkpointing and compaction off the commit path.
#[derive(Debug)]
pub(crate) struct MaintenanceThread {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceThread {
    /// Spawn the loop. `tick` runs on the maintenance thread, never
    /// concurrently with itself.
    pub(crate) fn spawn(
        interval: std::time::Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> MaintenanceThread {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_in_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("esm-maintenance".into())
            .spawn(move || {
                let (flag, cv) = &*stop_in_thread;
                let mut stopped = flag.lock().expect("maintenance stop lock");
                loop {
                    if *stopped {
                        return;
                    }
                    let (guard, _) = cv
                        .wait_timeout(stopped, interval)
                        .expect("maintenance stop lock");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    tick();
                    stopped = flag.lock().expect("maintenance stop lock");
                }
            })
            .expect("spawn maintenance thread");
        MaintenanceThread {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for MaintenanceThread {
    fn drop(&mut self) {
        let (flag, cv) = &*self.stop;
        *flag.lock().expect("maintenance stop lock") = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn open_segment(
    dir: &Path,
    first_seq: u64,
    sync_delay: Option<Arc<std::sync::atomic::AtomicU64>>,
) -> Result<SegmentWriter<DiskFile>, EngineError> {
    let mut file = DiskFile::create(&dir.join(segment_file_name(first_seq)))?;
    file.set_sync_delay(sync_delay);
    sync_dir(dir)?;
    Ok(SegmentWriter::new(file, first_seq))
}

/// Apply one delta to a database without cloning the table (the shadow
/// is touched on every applied record; `Delta::apply`'s copy-on-write
/// would make that O(table) per commit).
fn apply_in_place(db: &mut Database, table: &str, delta: &Delta) -> Result<(), EngineError> {
    let table = db.table_mut(table)?;
    for row in &delta.deleted {
        table.delete(row);
    }
    for row in &delta.inserted {
        table.upsert(row.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Delta, Schema, Table, ValueType};

    fn baseline() -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(schema, vec![row![0, "seed"]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn insert(seq: u64) -> Delta {
        Delta {
            inserted: vec![row![seq as i64, format!("r{seq}")]],
            deleted: vec![],
        }
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord::delta(seq, "t", insert(seq))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("esm-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cfg = DurabilityConfig::new(&dir)
            .group_commit(3)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=10 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let live = wal.state().clone();
        assert_eq!(wal.stats().appends, 10);
        assert!(wal.stats().syncs >= 3, "group commit batches syncs");
        drop(wal);

        let (reopened, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(db, live);
        assert_eq!(report.last_seq, 10);
        assert_eq!(report.records_replayed, 10);
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.in_doubt_transactions, 0);
        assert_eq!(report.tail_records_discarded, 0);
        assert_eq!(reopened.last_seq(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_occupied_dir() {
        let dir = tmp_dir("occupied");
        let cfg = DurabilityConfig::new(&dir);
        let _wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        assert!(matches!(
            DurableWal::create(cfg, &baseline()),
            Err(EngineError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp_dir("rotate");
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(64)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=20 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.stats().rotations >= 5);
        let segs = scan_segments(&dir).unwrap();
        assert!(
            segs.len() >= 5,
            "expected several segments, got {}",
            segs.len()
        );
        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(report.records_replayed, 20);
        assert_eq!(db.table("t").unwrap().len(), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_shrinks_replay() {
        let dir = tmp_dir("ckpt");
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(64)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=15 {
            wal.append(&rec(seq)).unwrap();
        }
        assert_eq!(wal.checkpoint().unwrap(), 15);
        // Two retained checkpoints (genesis + 15): nothing compacts yet.
        for seq in 16..=30 {
            wal.append(&rec(seq)).unwrap();
        }
        assert_eq!(wal.checkpoint().unwrap(), 30);
        // Horizon is now 15: segments covered by it are gone.
        assert!(wal.stats().segments_compacted > 0);
        for seq in 31..=35 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let live = wal.state().clone();
        drop(wal);

        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(db, live);
        assert_eq!(report.checkpoint_seq, 30);
        assert_eq!(
            report.records_replayed, 5,
            "only post-checkpoint records replay"
        );
        assert_eq!(report.last_seq, 35);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maybe_checkpoint_fires_on_interval_only() {
        let dir = tmp_dir("maybe-ckpt");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(8);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        for seq in 1..=7 {
            wal.append(&rec(seq)).unwrap();
            assert!(!wal.needs_checkpoint());
            assert_eq!(wal.maybe_checkpoint().unwrap(), None);
        }
        wal.append(&rec(8)).unwrap();
        assert!(wal.needs_checkpoint());
        assert_eq!(wal.maybe_checkpoint().unwrap(), Some(8));
        assert!(!wal.needs_checkpoint(), "gap reset after the checkpoint");
        assert_eq!(wal.checkpoint_seq(), 8);
        // Genesis + seq 8.
        assert_eq!(wal.stats().checkpoints, 2);
        std::fs::remove_dir_all(wal.dir()).ok();
    }

    #[test]
    fn checkpoints_refuse_mid_transaction() {
        let dir = tmp_dir("ckpt-midtx");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(1);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        wal.append(&WalRecord::chained(1, "t", insert(1))).unwrap();
        assert!(!wal.needs_checkpoint(), "a chain is in flight");
        assert!(matches!(wal.checkpoint(), Err(EngineError::Io(msg)) if msg.contains("refused")));
        // The shadow does not see the chained record yet.
        assert_eq!(wal.state().table("t").unwrap().len(), 1);
        wal.append(&rec(2)).unwrap();
        // Terminated: both records applied, checkpointing legal again.
        assert_eq!(wal.state().table("t").unwrap().len(), 3);
        assert!(wal.needs_checkpoint());
        wal.checkpoint().unwrap();
        std::fs::remove_dir_all(wal.dir()).ok();
    }

    #[test]
    fn prepared_chains_stay_in_doubt_until_resolved() {
        let dir = tmp_dir("2pc-shadow");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        wal.append(&WalRecord::chained(1, "t", insert(1))).unwrap();
        wal.append(&WalRecord::prepare(2, "g1", 1)).unwrap();
        assert_eq!(wal.state().table("t").unwrap().len(), 1, "held in doubt");
        assert_eq!(wal.in_doubt().len(), 1);
        wal.append(&WalRecord::resolve(3, "g1", true)).unwrap();
        assert_eq!(wal.state().table("t").unwrap().len(), 2, "applied");
        assert!(wal.in_doubt().is_empty());
        // An aborted branch is dropped.
        wal.append(&WalRecord::chained(4, "t", insert(40))).unwrap();
        wal.append(&WalRecord::prepare(5, "g2", 1)).unwrap();
        wal.append(&WalRecord::resolve(6, "g2", false)).unwrap();
        assert_eq!(wal.state().table("t").unwrap().len(), 2);
        std::fs::remove_dir_all(wal.dir()).ok();
    }

    #[test]
    fn append_rejects_stale_and_gapped_seqs() {
        let dir = tmp_dir("seq-guard");
        let mut wal = DurableWal::create(DurabilityConfig::new(&dir), &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        assert!(matches!(
            wal.append(&rec(1)),
            Err(EngineError::DuplicateSeq { seq: 1, last: 1 })
        ));
        assert!(matches!(
            wal.append(&rec(5)),
            Err(EngineError::WalCorrupt(_))
        ));
        // Seq rejections happen before any side effect: not poisonous.
        wal.append(&rec(2)).unwrap();
        assert_eq!(wal.last_seq(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_path_failures_poison_the_log() {
        let dir = tmp_dir("poison");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        // A record that appends to the segment but fails to apply (its
        // bytes are already on the way to disk): the log must fail-stop
        // rather than let durable and live state drift apart.
        let ghost = WalRecord::delta(2, "ghost", Delta::empty());
        assert!(matches!(wal.append(&ghost), Err(EngineError::Store(_))));
        for result in [
            wal.append(&rec(2)).err(),
            wal.sync().err(),
            wal.checkpoint().err(),
        ] {
            match result {
                Some(EngineError::Io(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
                other => panic!("expected poisoned Io error, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_orphan_checkpoint_temp_files() {
        let dir = tmp_dir("orphan-tmp");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // A crash between the checkpoint temp write and its rename.
        let orphan = dir.join(format!("{}.tmp", checkpoint_file_name(9)));
        std::fs::write(&orphan, "!checkpoint seq=9\nhalf-writ").unwrap();
        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert!(!orphan.exists(), "recovery sweeps stranded temp files");
        assert_eq!(report.last_seq, 1);
        assert_eq!(db.table("t").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_recovery_skips_stale_segments_and_rejects_gaps() {
        let seg = |first: u64, seqs: &[u64], torn: bool| ScannedSegment {
            first_seq: first,
            prefix: SegmentPrefix {
                records: seqs.iter().map(|&s| rec(s)).collect(),
                ends: Vec::new(),
                consumed: 0,
                torn,
                corrupt: None,
            },
        };
        // Stale duplicate segment overlapping the checkpoint and the
        // first live segment: its records are skipped, not re-applied.
        let (records, stale) = plan_recovery(
            4,
            &[
                seg(1, &[1, 2, 3, 4], false),
                seg(3, &[3, 4, 5], false),
                seg(6, &[6, 7], false),
            ],
        )
        .unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(stale, 6);

        // A gap is corruption.
        assert!(matches!(
            plan_recovery(0, &[seg(1, &[1, 2], false), seg(5, &[5], false)]),
            Err(EngineError::WalCorrupt(_))
        ));
        // New records after a torn segment are corruption…
        assert!(matches!(
            plan_recovery(0, &[seg(1, &[1], true), seg(2, &[2], false)]),
            Err(EngineError::WalCorrupt(_))
        ));
        // …but stale records after one are fine.
        let (records, stale) =
            plan_recovery(2, &[seg(1, &[1, 2], true), seg(1, &[1], false)]).unwrap();
        assert!(records.is_empty());
        assert_eq!(stale, 3);

        // A corrupt segment (bit rot) always fails recovery.
        let mut rotten = seg(1, &[1], false);
        rotten.prefix.corrupt = Some("crc mismatch".into());
        assert!(matches!(
            plan_recovery(0, &[rotten]),
            Err(EngineError::WalCorrupt(msg)) if msg.contains("crc mismatch")
        ));
    }

    #[test]
    fn resolver_groups_chains_and_tracks_doubt() {
        let records = vec![
            rec(1),                                  // lone commit
            WalRecord::chained(2, "t", insert(20)),  // chain of 2
            WalRecord::delta(3, "t", insert(21)),    //   terminator
            WalRecord::chained(4, "t", insert(30)),  // prepared…
            WalRecord::prepare(5, "ga", 1),          //   in doubt
            WalRecord::chained(6, "t", insert(40)),  // prepared…
            WalRecord::prepare(7, "gb", 1),          //
            WalRecord::resolve(8, "gb", true),       //   committed
            WalRecord::resolve(9, "gz", false),      // foreign verdict
            WalRecord::chained(10, "t", insert(50)), // unterminated tail
        ];
        let resolved = resolve_transactions(&records).unwrap();
        assert_eq!(resolved.applied.len(), 4, "1 + 2 + gb's 1");
        assert_eq!(resolved.in_doubt.len(), 1);
        assert!(resolved.in_doubt.contains_key("ga"));
        assert_eq!(
            resolved.resolutions,
            BTreeMap::from([("gb".to_string(), true), ("gz".to_string(), false)])
        );
        assert_eq!(resolved.tail_first_seq, Some(10));

        // A lying prepare count is corruption.
        let bad = vec![WalRecord::prepare(1, "g", 2)];
        assert!(matches!(
            resolve_transactions(&bad),
            Err(EngineError::WalCorrupt(_))
        ));
    }

    #[test]
    fn interrupted_chains_recover_all_or_nothing() {
        let dir = tmp_dir("chain-tail");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        // A transaction chain whose terminator never landed (the crash
        // hit between records 2-of-3): recovery must discard the whole
        // chain and truncate it off the log.
        wal.append(&WalRecord::chained(2, "t", insert(20))).unwrap();
        wal.append(&WalRecord::chained(3, "t", insert(30))).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (recovered, db, report) = DurableWal::open(cfg.clone()).unwrap();
        assert_eq!(report.last_seq, 1, "the interrupted chain is gone");
        assert_eq!(report.tail_records_discarded, 2);
        assert!(report.torn_bytes > 0, "the chain bytes were truncated");
        assert_eq!(db.table("t").unwrap().len(), 2);
        drop(recovered);
        // The truncation is durable: a second recovery is clean and new
        // appends continue at seq 2.
        let (mut wal3, _db, report2) = DurableWal::open(cfg).unwrap();
        assert_eq!(report2.tail_records_discarded, 0);
        assert_eq!(report2.torn_bytes, 0);
        wal3.append(&rec(2)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_doubt_transactions_survive_recovery_unapplied() {
        let dir = tmp_dir("2pc-recover");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        wal.append(&WalRecord::chained(1, "t", insert(10))).unwrap();
        wal.append(&WalRecord::prepare(2, "g1", 1)).unwrap();
        wal.sync().unwrap();
        drop(wal); // coordinator crashed between prepare and resolve

        let (mut recovered, db, report) = DurableWal::open(cfg.clone()).unwrap();
        assert_eq!(report.in_doubt_transactions, 1);
        assert_eq!(db.table("t").unwrap().len(), 1, "not applied");
        assert_eq!(recovered.last_seq(), 2, "the prepared chain stays logged");
        // The sharded recovery decides commit: appending the resolution
        // applies the chain and settles the log.
        recovered
            .append(&WalRecord::resolve(3, "g1", true))
            .unwrap();
        assert_eq!(recovered.state().table("t").unwrap().len(), 2);
        recovered.sync().unwrap();
        drop(recovered);
        let (wal3, db3, report3) = DurableWal::open(cfg).unwrap();
        assert_eq!(report3.in_doubt_transactions, 0);
        assert_eq!(wal3.recovered_resolutions().get("g1"), Some(&true));
        assert_eq!(db3.table("t").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=3 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-write: append half a framed record to the
        // active segment.
        let seg_path = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let torn = crate::segment::encode_framed(&rec(4));
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&seg_path, &bytes).unwrap();

        let (_wal2, db, report) = DurableWal::open(cfg.clone()).unwrap();
        assert_eq!(report.last_seq, 3);
        assert_eq!(report.torn_bytes, (torn.len() / 2) as u64);
        assert_eq!(db.table("t").unwrap().len(), 4);
        // The torn bytes are gone from disk: a second open is clean.
        let (_wal3, _db, report2) = DurableWal::open(cfg).unwrap();
        assert_eq!(report2.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_thread_runs_and_stops() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ticks = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&ticks);
        let thread = MaintenanceThread::spawn(std::time::Duration::from_millis(1), move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "the loop ticks");
        drop(thread); // joins: no tick runs after drop returns
        let after = ticks.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(ticks.load(Ordering::Relaxed), after, "stopped cleanly");
    }
}
