//! The durable WAL backend: file-backed segments + checkpoints.
//!
//! [`DurableWal`] owns one directory and keeps three things in step:
//!
//! * an **active segment file** receiving encoded [`WalRecord`]s, synced
//!   by group commit (one fsync per `group_commit` appends) and rotated
//!   once it passes `segment_bytes`;
//! * a **shadow database** — the baseline plus every appended record,
//!   maintained in place so a checkpoint can serialize the committed
//!   state without replaying anything;
//! * the **newest checkpoint**, written atomically; compaction deletes
//!   every segment (and older checkpoint) fully covered by it.
//!
//! ## Recovery state machine ([`DurableWal::open`])
//!
//! 1. **Checkpoint scan** — pick the newest checkpoint that decodes and
//!    carries its `!end` trailer; torn ones (crash mid-checkpoint) are
//!    skipped in favour of an older valid one.
//! 2. **Segment scan** — read every `wal-*.seg` in name order and decode
//!    the longest complete-record prefix of each
//!    ([`crate::segment::decode_segment_prefix`]); a torn tail is legal
//!    only where a crash can produce one — after the last durable record.
//! 3. **Plan** ([`plan_recovery`]) — walk the records in order, skipping
//!    *stale* ones (seq already covered by the checkpoint or an earlier
//!    segment — duplicate/stale segment files are tolerated, never
//!    re-applied), requiring the rest to continue `checkpoint_seq`
//!    contiguously; a gap or a record following a torn segment is real
//!    corruption and fails recovery.
//! 4. **Repair** — torn tails are truncated off their files so the
//!    directory is clean again, and a fresh active segment is opened at
//!    `last_seq + 1`.
//!
//! The crash-recovery suite drives step 1–3 at every byte offset of a
//! recorded run and asserts the recovered state equals the live state at
//! the longest durable prefix — the paper's equivalence claim (state
//! rebuilt by replaying the log ≡ state observed live) made exhaustive.
//!
//! ## Durability contract
//!
//! With `group_commit = 1` every acknowledged commit is on disk before
//! the commit call returns. With `group_commit = n`, up to `n - 1`
//! acknowledged records may be lost to a crash (they are never torn —
//! recovery trims to a record boundary). One WAL record is the durability
//! unit: a multi-table transaction that crashed between its records
//! recovers its prefix (see ROADMAP: commit markers are a follow-on).
//!
//! Write-path failures are **fail-stop**: once an append, fsync or
//! checkpoint write errors, bytes may or may not have reached the disk,
//! so the log poisons itself — the failed commit is reported to its
//! caller, the engine's live state is not advanced, and every later
//! durable write refuses with a pointer to restart-and-recover. Recovery
//! then re-derives the truth from the files (a record whose bytes did
//! land is replayed; one whose bytes did not is gone — either way a
//! clean prefix, the usual fsync-failure gray zone made explicit).

use std::path::{Path, PathBuf};

use esm_store::Database;

use crate::checkpoint::{checkpoint_file_name, latest_valid_checkpoint, Checkpoint};
use crate::checkpoint::{parse_checkpoint_name, sync_dir};
use crate::error::EngineError;
use crate::metrics::WalStats;
use crate::segment::{
    decode_segment_prefix, parse_segment_name, segment_file_name, DiskFile, SegmentPrefix,
    SegmentWriter,
};
use crate::wal::WalRecord;

/// Whether (and how) an engine persists its WAL.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// Keep the WAL in memory only (the default; tests and benches).
    #[default]
    InMemory,
    /// Persist to file-backed segments with checkpoints.
    Durable(DurabilityConfig),
}

impl Durability {
    /// Durable persistence into `dir` with default tuning.
    pub fn durable(dir: impl Into<PathBuf>) -> Durability {
        Durability::Durable(DurabilityConfig::new(dir))
    }
}

/// Tuning for a durable WAL directory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding segments and checkpoints (created if absent).
    pub dir: PathBuf,
    /// Rotate to a fresh segment file once the active one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// Group commit: fsync once per this many appended records. 1 = sync
    /// every record (strongest durability); larger values batch, trading
    /// the tail of acknowledged-but-unsynced records on crash for fewer
    /// fsyncs.
    pub group_commit: usize,
    /// Write a checkpoint (and compact) every this many records; 0 =
    /// only on explicit [`DurableWal::checkpoint`] calls.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// Defaults: 64 KiB segments, sync every record, checkpoint every
    /// 256 records.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
            group_commit: 1,
            checkpoint_every: 256,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> DurabilityConfig {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Set the group-commit batch size.
    pub fn group_commit(mut self, records: usize) -> DurabilityConfig {
        self.group_commit = records.max(1);
        self
    }

    /// Set the automatic checkpoint interval (0 disables).
    pub fn checkpoint_every(mut self, records: u64) -> DurabilityConfig {
        self.checkpoint_every = records;
        self
    }
}

/// What a recovery pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// The last durable sequence number.
    pub last_seq: u64,
    /// Records replayed on top of the checkpoint
    /// (`last_seq - checkpoint_seq`; strictly fewer than a
    /// replay-from-genesis whenever a later checkpoint exists).
    pub records_replayed: u64,
    /// Stale/duplicate records skipped (from segments already covered by
    /// the checkpoint or by earlier segments).
    pub stale_skipped: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Torn tail bytes truncated off segment files.
    pub torn_bytes: u64,
    /// Corrupt or torn checkpoint files skipped over.
    pub corrupt_checkpoints_skipped: u64,
}

/// One scanned segment, ready for [`plan_recovery`].
#[derive(Debug, Clone)]
pub struct ScannedSegment {
    /// First sequence number, from the file name.
    pub first_seq: u64,
    /// The decoded complete-record prefix.
    pub prefix: SegmentPrefix,
}

/// Decide which records a set of scanned segments contributes on top of
/// a checkpoint. Pure: the crash-recovery harness calls this directly at
/// every truncation offset without touching a filesystem.
///
/// Segments must be ordered by `first_seq`. Stale records (seq already
/// covered) are skipped, never re-applied; surviving records must extend
/// `checkpoint_seq` contiguously. A torn segment is accepted, but any
/// *new* record after one means bytes went missing mid-log — corruption,
/// not a crash artifact — and fails with `WalCorrupt`.
pub fn plan_recovery(
    checkpoint_seq: u64,
    segments: &[ScannedSegment],
) -> Result<(Vec<WalRecord>, u64), EngineError> {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut last = checkpoint_seq;
    let mut stale = 0u64;
    let mut torn_at: Option<u64> = None;
    for seg in segments {
        for rec in &seg.prefix.records {
            if rec.seq <= last {
                stale += 1;
                continue;
            }
            if let Some(first) = torn_at {
                return Err(EngineError::WalCorrupt(format!(
                    "record seq {} follows a torn segment (first seq {first}): log bytes are missing mid-history",
                    rec.seq
                )));
            }
            if rec.seq != last + 1 {
                return Err(EngineError::WalCorrupt(format!(
                    "sequence gap in recovery: expected {}, found {}",
                    last + 1,
                    rec.seq
                )));
            }
            records.push(rec.clone());
            last += 1;
        }
        if seg.prefix.torn {
            torn_at = Some(seg.first_seq);
        }
    }
    Ok((records, stale))
}

/// Scan a directory's segment files (sorted, decoded). Shared by
/// [`DurableWal::open`] and the recovery benchmarks.
pub fn scan_segments(dir: &Path) -> Result<Vec<ScannedSegment>, EngineError> {
    let mut firsts: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
            firsts.push(first);
        }
    }
    firsts.sort_unstable();
    let mut segments = Vec::with_capacity(firsts.len());
    for first_seq in firsts {
        let bytes = std::fs::read(dir.join(segment_file_name(first_seq)))?;
        segments.push(ScannedSegment {
            first_seq,
            prefix: decode_segment_prefix(&bytes),
        });
    }
    Ok(segments)
}

/// A file-backed WAL: segments + checkpoints in one directory.
///
/// Single-writer: the engine serializes appends under its WAL lock. The
/// directory must belong to one live engine at a time.
#[derive(Debug)]
pub struct DurableWal {
    config: DurabilityConfig,
    writer: SegmentWriter<DiskFile>,
    shadow: Database,
    last_seq: u64,
    checkpoint_seq: u64,
    stats: WalStats,
    /// Set on the first write-path failure; all further writes refuse.
    poisoned: Option<String>,
}

impl DurableWal {
    /// Initialise a fresh durable WAL in `config.dir`: writes the genesis
    /// checkpoint (seq 0 = `baseline`) and opens the first segment.
    /// Refuses a directory that already holds a log — use
    /// [`DurableWal::open`] to recover one.
    pub fn create(
        config: DurabilityConfig,
        baseline: &Database,
    ) -> Result<DurableWal, EngineError> {
        std::fs::create_dir_all(&config.dir)?;
        let occupied = std::fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .any(|e| {
                let name = e.file_name();
                let name = name.to_str().unwrap_or("");
                parse_segment_name(name).is_some() || parse_checkpoint_name(name).is_some()
            });
        if occupied {
            return Err(EngineError::Io(format!(
                "{} already contains a durable WAL; recover it instead of re-creating",
                config.dir.display()
            )));
        }
        let mut stats = WalStats::default();
        Checkpoint {
            seq: 0,
            db: baseline.clone(),
        }
        .write_atomic(&config.dir)?;
        stats.checkpoints += 1;
        let writer = open_segment(&config.dir, 1)?;
        Ok(DurableWal {
            config,
            writer,
            shadow: baseline.clone(),
            last_seq: 0,
            checkpoint_seq: 0,
            stats,
            poisoned: None,
        })
    }

    /// Recover a durable WAL directory (see the module docs for the state
    /// machine). Returns the log handle, the recovered committed
    /// database, and a report of what recovery did.
    pub fn open(
        config: DurabilityConfig,
    ) -> Result<(DurableWal, Database, RecoveryReport), EngineError> {
        let (ckpt, corrupt_skipped) = latest_valid_checkpoint(&config.dir)?;
        let ckpt = ckpt.ok_or_else(|| {
            EngineError::WalCorrupt(format!(
                "{} holds no valid checkpoint: not a durable WAL directory",
                config.dir.display()
            ))
        })?;
        let segments = scan_segments(&config.dir)?;
        let (records, stale_skipped) = plan_recovery(ckpt.seq, &segments)?;

        // Housekeeping: a crash between a checkpoint's temp-file write
        // and its rename strands a `*.tmp` that nothing else will ever
        // look at; sweep them here so they cannot accumulate.
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }

        // Repair: truncate torn tails so the next scan sees clean files.
        let mut torn_bytes = 0u64;
        for seg in &segments {
            if seg.prefix.torn {
                let path = config.dir.join(segment_file_name(seg.first_seq));
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                let full = file.metadata()?.len();
                torn_bytes += full - seg.prefix.consumed as u64;
                file.set_len(seg.prefix.consumed as u64)?;
                file.sync_data()?;
            }
        }

        let mut db = ckpt.db;
        for rec in &records {
            apply_in_place(&mut db, rec)?;
        }
        let last_seq = ckpt.seq + records.len() as u64;
        let report = RecoveryReport {
            checkpoint_seq: ckpt.seq,
            last_seq,
            records_replayed: records.len() as u64,
            stale_skipped,
            segments_scanned: segments.len() as u64,
            torn_bytes,
            corrupt_checkpoints_skipped: corrupt_skipped,
        };
        let writer = open_segment(&config.dir, last_seq + 1)?;
        Ok((
            DurableWal {
                config,
                shadow: db.clone(),
                writer,
                last_seq,
                checkpoint_seq: ckpt.seq,
                stats: WalStats::default(),
                poisoned: None,
            },
            db,
            report,
        ))
    }

    /// Refuse further writes once a write-path failure happened: bytes
    /// (or a sync) may or may not have reached the disk, so the only
    /// honest sequence-number authority left is the log itself, via
    /// restart + [`DurableWal::open`]. Fail-stop beats guessing.
    fn guard(&self) -> Result<(), EngineError> {
        match &self.poisoned {
            Some(cause) => Err(EngineError::Io(format!(
                "durable WAL poisoned by an earlier failure ({cause}); \
                 restart and recover the directory"
            ))),
            None => Ok(()),
        }
    }

    /// Poison this log if `result` is an error (write-path side effects
    /// may have partially landed).
    fn poisoning<T>(&mut self, result: Result<T, EngineError>) -> Result<T, EngineError> {
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    /// Append one record: write-ahead to the active segment, group
    /// commit, rotate and auto-checkpoint per config. The record's seq
    /// must continue the log exactly (checked *before* any side effect;
    /// a seq rejection leaves the log fully usable). Any failure past
    /// that point poisons the log — see [`DurableWal::guard`].
    pub fn append(&mut self, record: &WalRecord) -> Result<(), EngineError> {
        self.guard()?;
        if record.seq <= self.last_seq {
            return Err(EngineError::DuplicateSeq {
                seq: record.seq,
                last: self.last_seq,
            });
        }
        if record.seq != self.last_seq + 1 {
            return Err(EngineError::WalCorrupt(format!(
                "durable append would leave a gap: expected {}, got {}",
                self.last_seq + 1,
                record.seq
            )));
        }
        let appended = self.append_inner(record);
        self.poisoning(appended)?;
        if self.config.checkpoint_every > 0
            && self.last_seq - self.checkpoint_seq >= self.config.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn append_inner(&mut self, record: &WalRecord) -> Result<(), EngineError> {
        let bytes = self.writer.append(record)?;
        self.stats.appends += 1;
        self.stats.bytes_written += bytes;
        apply_in_place(&mut self.shadow, record)?;
        self.last_seq = record.seq;
        if self.writer.pending() >= self.config.group_commit {
            self.sync_inner()?;
        }
        if self.writer.bytes() >= self.config.segment_bytes {
            self.rotate_inner()?;
        }
        Ok(())
    }

    /// Force-fsync any records the group-commit batch is still holding.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        self.guard()?;
        let synced = self.sync_inner();
        self.poisoning(synced)
    }

    fn sync_inner(&mut self) -> Result<(), EngineError> {
        if self.writer.sync()? {
            self.stats.syncs += 1;
        }
        Ok(())
    }

    /// Sync the active segment and open a fresh one at `last_seq + 1`.
    fn rotate_inner(&mut self) -> Result<(), EngineError> {
        self.sync_inner()?;
        self.writer = open_segment(&self.config.dir, self.last_seq + 1)?;
        self.stats.rotations += 1;
        Ok(())
    }

    /// Write a checkpoint at the current seq, then compact. Returns the
    /// sequence number the checkpoint covers.
    pub fn checkpoint(&mut self) -> Result<u64, EngineError> {
        self.guard()?;
        let written = self.checkpoint_inner();
        self.poisoning(written)?;
        // Compaction failures are not poisonous: a leftover covered
        // segment or old checkpoint wastes disk but corrupts nothing
        // (recovery skips its records as stale).
        self.compact()?;
        Ok(self.last_seq)
    }

    fn checkpoint_inner(&mut self) -> Result<(), EngineError> {
        self.sync_inner()?;
        Checkpoint {
            seq: self.last_seq,
            db: self.shadow.clone(),
        }
        .write_atomic(&self.config.dir)?;
        self.checkpoint_seq = self.last_seq;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Drop history no recovery will ever need. The two newest
    /// checkpoints are retained — if the newest turns out torn (a
    /// filesystem that lied about the atomic rename), recovery falls
    /// back to the previous one — so the compaction horizon is the
    /// *older* retained checkpoint: checkpoints below it are deleted,
    /// and so is every segment fully covered by it (a segment is covered
    /// when the *next* segment starts at or before `horizon + 1`; the
    /// active segment has no successor and is never deleted). Returns
    /// how many segment files were removed.
    pub fn compact(&mut self) -> Result<u64, EngineError> {
        let mut firsts: Vec<u64> = Vec::new();
        let mut ckpts: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&self.config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_str().unwrap_or("");
            if let Some(first) = parse_segment_name(name) {
                firsts.push(first);
            } else if let Some(seq) = parse_checkpoint_name(name) {
                ckpts.push(seq);
            }
        }
        firsts.sort_unstable();
        ckpts.sort_unstable();
        let horizon = match ckpts.len() {
            0 | 1 => return Ok(0), // nothing is safely coverable yet
            n => ckpts[n - 2],
        };
        let mut removed = 0u64;
        for pair in firsts.windows(2) {
            if pair[1] <= horizon + 1 {
                std::fs::remove_file(self.config.dir.join(segment_file_name(pair[0])))?;
                removed += 1;
            }
        }
        for &seq in &ckpts[..ckpts.len() - 2] {
            std::fs::remove_file(self.config.dir.join(checkpoint_file_name(seq)))?;
        }
        self.stats.segments_compacted += removed;
        sync_dir(&self.config.dir)?;
        Ok(removed)
    }

    /// The last appended sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The sequence number covered by the newest checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// The committed state as the durable log sees it (baseline plus
    /// every appended record). Equals the engine's live committed state;
    /// the test suites assert it.
    pub fn state(&self) -> &Database {
        &self.shadow
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Durability counters (appends, syncs, rotations, checkpoints, …).
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

fn open_segment(dir: &Path, first_seq: u64) -> Result<SegmentWriter<DiskFile>, EngineError> {
    let file = DiskFile::create(&dir.join(segment_file_name(first_seq)))?;
    sync_dir(dir)?;
    Ok(SegmentWriter::new(file, first_seq))
}

/// Apply one record to a database without cloning the table (the shadow
/// is touched on every append; `Delta::apply`'s copy-on-write would make
/// that O(table) per commit).
fn apply_in_place(db: &mut Database, rec: &WalRecord) -> Result<(), EngineError> {
    let table = db.table_mut(&rec.table)?;
    for row in &rec.delta.deleted {
        table.delete(row);
    }
    for row in &rec.delta.inserted {
        table.upsert(row.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Delta, Schema, Table, ValueType};

    fn baseline() -> Database {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(schema, vec![row![0, "seed"]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            table: "t".into(),
            delta: Delta {
                inserted: vec![row![seq as i64, format!("r{seq}")]],
                deleted: vec![],
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("esm-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cfg = DurabilityConfig::new(&dir)
            .group_commit(3)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=10 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let live = wal.state().clone();
        assert_eq!(wal.stats().appends, 10);
        assert!(wal.stats().syncs >= 3, "group commit batches syncs");
        drop(wal);

        let (reopened, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(db, live);
        assert_eq!(report.last_seq, 10);
        assert_eq!(report.records_replayed, 10);
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(reopened.last_seq(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_occupied_dir() {
        let dir = tmp_dir("occupied");
        let cfg = DurabilityConfig::new(&dir);
        let _wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        assert!(matches!(
            DurableWal::create(cfg, &baseline()),
            Err(EngineError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp_dir("rotate");
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(64)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=20 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.stats().rotations >= 5);
        let segs = scan_segments(&dir).unwrap();
        assert!(
            segs.len() >= 5,
            "expected several segments, got {}",
            segs.len()
        );
        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(report.records_replayed, 20);
        assert_eq!(db.table("t").unwrap().len(), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_shrinks_replay() {
        let dir = tmp_dir("ckpt");
        let cfg = DurabilityConfig::new(&dir)
            .segment_bytes(64)
            .checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=15 {
            wal.append(&rec(seq)).unwrap();
        }
        assert_eq!(wal.checkpoint().unwrap(), 15);
        // Two retained checkpoints (genesis + 15): nothing compacts yet.
        for seq in 16..=30 {
            wal.append(&rec(seq)).unwrap();
        }
        assert_eq!(wal.checkpoint().unwrap(), 30);
        // Horizon is now 15: segments covered by it are gone.
        assert!(wal.stats().segments_compacted > 0);
        for seq in 31..=35 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let live = wal.state().clone();
        drop(wal);

        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert_eq!(db, live);
        assert_eq!(report.checkpoint_seq, 30);
        assert_eq!(
            report.records_replayed, 5,
            "only post-checkpoint records replay"
        );
        assert_eq!(report.last_seq, 35);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_checkpoint_fires_on_interval() {
        let dir = tmp_dir("auto-ckpt");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(8);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        for seq in 1..=20 {
            wal.append(&rec(seq)).unwrap();
        }
        // Genesis + seq 8 + seq 16.
        assert_eq!(wal.stats().checkpoints, 3);
        assert_eq!(wal.checkpoint_seq(), 16);
        std::fs::remove_dir_all(wal.dir()).ok();
    }

    #[test]
    fn append_rejects_stale_and_gapped_seqs() {
        let dir = tmp_dir("seq-guard");
        let mut wal = DurableWal::create(DurabilityConfig::new(&dir), &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        assert!(matches!(
            wal.append(&rec(1)),
            Err(EngineError::DuplicateSeq { seq: 1, last: 1 })
        ));
        assert!(matches!(
            wal.append(&rec(5)),
            Err(EngineError::WalCorrupt(_))
        ));
        // Seq rejections happen before any side effect: not poisonous.
        wal.append(&rec(2)).unwrap();
        assert_eq!(wal.last_seq(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_path_failures_poison_the_log() {
        let dir = tmp_dir("poison");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg, &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        // A record that appends to the segment but fails to apply (its
        // bytes are already on the way to disk): the log must fail-stop
        // rather than let durable and live state drift apart.
        let ghost = WalRecord {
            seq: 2,
            table: "ghost".into(),
            delta: Delta::empty(),
        };
        assert!(matches!(wal.append(&ghost), Err(EngineError::Store(_))));
        for result in [
            wal.append(&rec(2)).err(),
            wal.sync().err(),
            wal.checkpoint().err(),
        ] {
            match result {
                Some(EngineError::Io(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
                other => panic!("expected poisoned Io error, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_orphan_checkpoint_temp_files() {
        let dir = tmp_dir("orphan-tmp");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        wal.append(&rec(1)).unwrap();
        drop(wal);
        // A crash between the checkpoint temp write and its rename.
        let orphan = dir.join(format!("{}.tmp", checkpoint_file_name(9)));
        std::fs::write(&orphan, "!checkpoint seq=9\nhalf-writ").unwrap();
        let (_wal2, db, report) = DurableWal::open(cfg).unwrap();
        assert!(!orphan.exists(), "recovery sweeps stranded temp files");
        assert_eq!(report.last_seq, 1);
        assert_eq!(db.table("t").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_recovery_skips_stale_segments_and_rejects_gaps() {
        let seg = |first: u64, seqs: &[u64], torn: bool| ScannedSegment {
            first_seq: first,
            prefix: SegmentPrefix {
                records: seqs.iter().map(|&s| rec(s)).collect(),
                consumed: 0,
                torn,
            },
        };
        // Stale duplicate segment overlapping the checkpoint and the
        // first live segment: its records are skipped, not re-applied.
        let (records, stale) = plan_recovery(
            4,
            &[
                seg(1, &[1, 2, 3, 4], false),
                seg(3, &[3, 4, 5], false),
                seg(6, &[6, 7], false),
            ],
        )
        .unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(stale, 6);

        // A gap is corruption.
        assert!(matches!(
            plan_recovery(0, &[seg(1, &[1, 2], false), seg(5, &[5], false)]),
            Err(EngineError::WalCorrupt(_))
        ));
        // New records after a torn segment are corruption…
        assert!(matches!(
            plan_recovery(0, &[seg(1, &[1], true), seg(2, &[2], false)]),
            Err(EngineError::WalCorrupt(_))
        ));
        // …but stale records after one are fine.
        let (records, stale) =
            plan_recovery(2, &[seg(1, &[1, 2], true), seg(1, &[1], false)]).unwrap();
        assert!(records.is_empty());
        assert_eq!(stale, 3);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(0);
        let mut wal = DurableWal::create(cfg.clone(), &baseline()).unwrap();
        for seq in 1..=3 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-write: append half a record to the active
        // segment.
        let seg_path = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let torn = rec(4).encode();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&seg_path, &bytes).unwrap();

        let (_wal2, db, report) = DurableWal::open(cfg.clone()).unwrap();
        assert_eq!(report.last_seq, 3);
        assert_eq!(report.torn_bytes, (torn.len() / 2) as u64);
        assert_eq!(db.table("t").unwrap().len(), 4);
        // The torn bytes are gone from disk: a second open is clean.
        let (_wal3, _db, report2) = DurableWal::open(cfg).unwrap();
        assert_eq!(report2.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
