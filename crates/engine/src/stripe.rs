//! Lock striping: spread per-table state over a fixed array of rwlocks so
//! traffic on different tables never contends on one global lock.

use std::collections::BTreeMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A fixed set of rwlock-protected shards, keyed by `String` name.
///
/// The shard for a name is chosen by a stable FNV-1a hash, so a name
/// always maps to the same stripe; operations on names in different
/// stripes proceed fully in parallel, and a write on one table never
/// blocks reads of tables in other stripes.
#[derive(Debug)]
pub struct Stripes<T> {
    shards: Vec<RwLock<BTreeMap<String, T>>>,
}

/// Stable FNV-1a hash of a name (not `DefaultHasher`: its seeding is
/// unspecified across processes, and stripe choice should be
/// deterministic for debugging).
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl<T> Stripes<T> {
    /// `n` empty stripes (rounded up to at least 1).
    pub fn new(n: usize) -> Stripes<T> {
        let n = n.max(1);
        Stripes {
            shards: (0..n).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.shards.len()
    }

    /// Which stripe a name lives in.
    pub fn stripe_of(&self, name: &str) -> usize {
        (fnv1a(name) % self.shards.len() as u64) as usize
    }

    /// Read-lock the stripe holding `name`.
    pub fn read(&self, name: &str) -> RwLockReadGuard<'_, BTreeMap<String, T>> {
        self.shards[self.stripe_of(name)]
            .read()
            .expect("stripe lock poisoned")
    }

    /// Write-lock the stripe holding `name`.
    pub fn write(&self, name: &str) -> RwLockWriteGuard<'_, BTreeMap<String, T>> {
        self.shards[self.stripe_of(name)]
            .write()
            .expect("stripe lock poisoned")
    }

    /// Read-lock **every** stripe at once, in index order, and return
    /// the guards. While the guards live, no writer can land anywhere,
    /// so the caller sees a cross-stripe-consistent state — the
    /// whole-database snapshot a multi-table transaction starts from.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, BTreeMap<String, T>>> {
        self.shards
            .iter()
            .map(|s| s.read().expect("stripe lock poisoned"))
            .collect()
    }

    /// Write-lock the stripes at `indices`, which must be sorted and
    /// deduplicated (the index-order discipline that keeps concurrent
    /// multi-stripe lockers deadlock-free). Returns `(index, guard)`
    /// pairs in the same order.
    pub fn write_indices(
        &self,
        indices: &[usize],
    ) -> Vec<(usize, RwLockWriteGuard<'_, BTreeMap<String, T>>)> {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        indices
            .iter()
            .map(|&i| (i, self.shards[i].write().expect("stripe lock poisoned")))
            .collect()
    }

    /// Visit every entry across all stripes, in stripe-then-name order,
    /// locking one stripe at a time.
    pub fn for_each(&self, mut f: impl FnMut(&String, &T)) {
        for shard in &self.shards {
            let guard = shard.read().expect("stripe lock poisoned");
            for (name, value) in guard.iter() {
                f(name, value);
            }
        }
    }

    /// All names across all stripes, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each(|name, _| out.push(name.clone()));
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_map_to_stable_stripes() {
        let s: Stripes<i32> = Stripes::new(8);
        assert_eq!(s.stripe_count(), 8);
        assert_eq!(s.stripe_of("orders"), s.stripe_of("orders"));
        let t: Stripes<i32> = Stripes::new(8);
        assert_eq!(s.stripe_of("orders"), t.stripe_of("orders"));
    }

    #[test]
    fn insert_and_visit_across_stripes() {
        let s: Stripes<i32> = Stripes::new(4);
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            s.write(name).insert(name.to_string(), i as i32);
        }
        assert_eq!(s.names(), vec!["a", "b", "c", "d", "e"]);
        assert_eq!(s.read("c").get("c"), Some(&2));
        let mut sum = 0;
        s.for_each(|_, v| sum += v);
        assert_eq!(sum, 1 + 2 + 3 + 4);
    }

    #[test]
    fn zero_stripes_rounds_up() {
        let s: Stripes<()> = Stripes::new(0);
        assert_eq!(s.stripe_count(), 1);
    }
}
