//! The engine conformance suite: one body of checks, any [`Engine`].
//!
//! Everything here is written against `&dyn Engine` — no downcasts, no
//! host-shape branches — so the *same code path* exercises the
//! unsharded [`crate::EngineServer`], the sharded
//! [`crate::shard::ShardedEngineServer`], and (from the `esm-net`
//! crate's tests) a `RemoteEngine` talking to either of them over a
//! real socket. A handle that behaves differently under any of these
//! checks is not an [`Engine`].
//!
//! The central law is the **incremental/recompute equivalence** from
//! the materialized-view work: after any sequence of committed
//! transactions, `read_view` (served from maintained windows, possibly
//! across shards, possibly across a wire) must equal a fresh lens `get`
//! over the live base table. The concurrency check races optimistic
//! editors and compares the final state against a single-threaded
//! oracle re-executing the successful logical operations.

use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, Value, ValueType};

use crate::engine::{ArcEngine, Engine};

/// Key-space size of the scripted workload.
pub const KEYS: i64 = 80;
/// Distinct group values of the scripted workload.
pub const GROUPS: i64 = 5;

/// The seed database every conformance run starts from: one table `t`
/// of `(id, grp, val)` rows on the even ids below [`KEYS`].
pub fn seed_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("grp", ValueType::Str),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..KEYS / 2)
        .map(|i| {
            let id = i * 2;
            row![id, format!("g{}", id % GROUPS), id * 3]
        })
        .collect();
    let mut db = Database::new();
    db.create_table("t", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

/// Every stage family over the seed table, including key-bounded
/// selects (pruned on a sharded host) and multi-stage pipelines.
pub fn view_defs() -> Vec<(&'static str, ViewDef)> {
    vec![
        ("all", ViewDef::base()),
        (
            "low",
            ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(30))),
        ),
        (
            "grp1",
            ViewDef::base().select(Predicate::eq(Operand::col("grp"), Operand::val("g1"))),
        ),
        (
            "teams",
            ViewDef::base()
                .project(&["id", "grp"], &[("val", Value::Int(0))])
                .rename(&[("grp", "team")]),
        ),
        (
            "band",
            ViewDef::base()
                .select(Predicate::ge(Operand::col("id"), Operand::val(20)))
                .select(Predicate::lt(Operand::col("id"), Operand::val(60)))
                .project(&["id", "val"], &[("grp", Value::str("gx"))]),
        ),
    ]
}

/// One scripted operation, decoded from an integer triple so any
/// property-testing harness needs only range + tuple strategies.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// Upsert one row.
    Upsert {
        /// Row id (keyed).
        id: i64,
        /// Group index (rendered `g<n>`).
        grp: i64,
        /// Value column.
        val: i64,
    },
    /// Delete one row by key.
    Delete {
        /// Row id.
        id: i64,
    },
    /// Write two far-apart keys in one transaction (cross-shard on a
    /// sharded host: exercises 2PC chains in the window drains).
    Transfer {
        /// First id.
        a: i64,
        /// Second id (half the key space away).
        b: i64,
    },
}

/// Decode one integer triple into an [`Op`].
pub fn decode_op(kind: u8, a: i64, b: i64) -> Op {
    let id = a.rem_euclid(KEYS);
    match kind {
        0..=4 => Op::Upsert {
            id,
            grp: b.rem_euclid(GROUPS),
            val: b,
        },
        5..=7 => Op::Delete { id },
        _ => Op::Transfer {
            a: id,
            b: (id + KEYS / 2).rem_euclid(KEYS),
        },
    }
}

/// Apply one scripted op through the trait's `transact`.
pub fn apply_op(engine: &dyn Engine, op: Op) {
    match op {
        Op::Upsert { id, grp, val } => {
            engine
                .transact(4, &move |db: &mut Database| {
                    db.table_mut("t")?
                        .upsert(row![id, format!("g{grp}"), val])?;
                    Ok(())
                })
                .expect("scripted upsert commits");
        }
        Op::Delete { id } => {
            engine
                .transact(4, &move |db: &mut Database| {
                    db.table_mut("t")?.delete_by_key(&row![id]);
                    Ok(())
                })
                .expect("scripted delete commits");
        }
        Op::Transfer { a, b } => {
            engine
                .transact(4, &move |db: &mut Database| {
                    let t = db.table_mut("t")?;
                    t.upsert(row![a, "g0", -1])?;
                    t.upsert(row![b, "g1", 1])?;
                    Ok(())
                })
                .expect("scripted transfer commits");
        }
    }
}

/// The law's right-hand side: a fresh compile + whole-base lens `get`.
pub fn recompute(def: &ViewDef, base: &Table) -> Table {
    def.compile(base).expect("recompiles").get(base)
}

/// The incremental/recompute equivalence law, host-obliviously: define
/// every view shape, drive the scripted ops through `transact`, and
/// after each op compare every `read_view` against a fresh
/// recomputation over the live base. Finishes with a steady-state
/// phase: under no writes, repeated reads trigger no rebuilds and apply
/// no deltas (read through the same engine's metrics, so it holds over
/// a wire too). The engine must be freshly seeded with [`seed_db`] and
/// otherwise idle.
///
/// Panics with a descriptive message on the first violation (property
/// harnesses report panics as counterexamples).
pub fn check_view_maintenance(engine: &dyn Engine, ops: &[(u8, i64, i64)]) {
    let defs = view_defs();
    for (name, def) in &defs {
        engine.define_view(name, "t", def).expect("view compiles");
    }
    // Warm-up read: the unsharded engine materializes at registration,
    // the sharded one lazily on first read — after one read of each
    // view, every host's windows exist and the rebuild counter is at
    // its registration plateau.
    for (name, _) in &defs {
        engine.read_view(name).expect("view readable");
    }
    let registration_rebuilds = engine.metrics().expect("metrics readable").view.rebuilds;

    for &(kind, a, b) in ops {
        apply_op(engine, decode_op(kind, a, b));
        let base = engine.table("t").expect("base table exists");
        for (name, def) in &defs {
            let read = engine.read_view(name).expect("view readable");
            let fresh = recompute(def, &base);
            assert_eq!(
                read,
                fresh,
                "view {name} diverged from recomputation after {:?}",
                decode_op(kind, a, b)
            );
        }
    }

    // Steady state: no topology changes happened, so maintenance never
    // re-ran a whole-base lens get after registration…
    assert_eq!(
        engine.metrics().expect("metrics readable").view.rebuilds,
        registration_rebuilds,
        "steady-state reads must not rebuild"
    );
    // …and quiescent re-reads apply nothing.
    let before = engine
        .metrics()
        .expect("metrics readable")
        .view
        .deltas_applied;
    for (name, _) in &defs {
        engine.read_view(name).expect("view readable");
    }
    assert_eq!(
        engine
            .metrics()
            .expect("metrics readable")
            .view
            .deltas_applied,
        before,
        "quiescent re-reads must drain nothing"
    );
}

/// Race `clients.len()` concurrent optimistic editors — one thread per
/// handle, so over a wire each handle is its own connection — against a
/// single-threaded oracle.
///
/// Every client repeatedly increments a shared counter row and upserts
/// a private row through `edit_view_optimistic` on the `all` view
/// (which [`check_concurrent_edits`] defines). The logical operations
/// commute, so the oracle is exact: the counter must equal the number
/// of successful increments across all clients, and every private row
/// must be present — any lost update, torn write or double-apply shows
/// up as a mismatch. Returns the total number of successful edits.
pub fn check_concurrent_edits(clients: Vec<ArcEngine>, edits_per_client: usize) -> u64 {
    let n = clients.len();
    assert!(n > 0, "need at least one client");
    clients[0]
        .define_view("all", "t", &ViewDef::base())
        .expect("view compiles");
    // The counter row lives at an id outside the scripted key space.
    clients[0]
        .transact(4, &|db: &mut Database| {
            db.table_mut("t")?.upsert(row![COUNTER_ID, "ctr", 0])?;
            Ok(())
        })
        .expect("counter seeds");

    let successes: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(client, engine)| {
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..edits_per_client {
                        let private_id = PRIVATE_BASE + (client * edits_per_client + i) as i64;
                        // The attempt budget covers the worst case: every
                        // other client's commit can fail one CAS/validation
                        // round, so total-commits + 1 attempts always
                        // suffice; 4096 dominates every suite size used.
                        let result =
                            engine.edit_view_optimistic("all", 4096, &move |v: &mut Table| {
                                let current = v
                                    .get_by_key(&row![COUNTER_ID])
                                    .map(|r| match &r[2] {
                                        Value::Int(n) => *n,
                                        _ => 0,
                                    })
                                    .unwrap_or(0);
                                v.upsert(row![COUNTER_ID, "ctr", current + 1])?;
                                v.upsert(row![private_id, "mine", client as i64])?;
                                Ok(())
                            });
                        if result.is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    let total: u64 = successes.iter().sum();
    // The oracle: increments commute, so the serial re-execution of the
    // successful ops lands the counter exactly at `total`.
    let final_table = clients[0].table("t").expect("base table exists");
    let counter = final_table
        .get_by_key(&row![COUNTER_ID])
        .map(|r| match &r[2] {
            Value::Int(n) => *n,
            _ => -1,
        })
        .expect("counter row survives");
    assert_eq!(
        counter as u64, total,
        "lost or double-applied counter increments: {counter} != {total} successful edits"
    );
    for (client, &ok) in successes.iter().enumerate() {
        assert_eq!(
            ok as usize, edits_per_client,
            "client {client} exhausted retries"
        );
    }
    // Every private row from every successful edit is present.
    for client in 0..n {
        for i in 0..edits_per_client {
            let private_id = PRIVATE_BASE + (client * edits_per_client + i) as i64;
            assert!(
                final_table.get_by_key(&row![private_id]).is_some(),
                "client {client}'s private row {private_id} was lost"
            );
        }
    }
    // And the view read agrees with the base (the entanglement law).
    let read = clients[0].read_view("all").expect("view readable");
    assert_eq!(read, final_table, "view window diverged from the base");
    total
}

const COUNTER_ID: i64 = 1_000_000;
const PRIVATE_BASE: i64 = 2_000_000;

/// A quick smoke pass over the whole trait surface — used by example
/// code and the remote suite to prove a connection end to end.
pub fn check_surface_smoke(engine: &dyn Engine) {
    assert_eq!(engine.table_names().expect("table names"), vec!["t"]);
    let view = engine
        .define_view(
            "smoke",
            "t",
            &ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(10))),
        )
        .expect("view compiles");
    assert_eq!(engine.view_names().expect("view names"), vec!["smoke"]);
    let before = view.get().expect("readable").len();
    let delta = view
        .edit(|v| Ok(v.upsert(row![5, "g0", 55]).map(|_| ())?))
        .expect("edit commits");
    assert_eq!(delta.inserted, vec![row![5, "g0", 55]]);
    assert_eq!(view.get().expect("readable").len(), before + 1);
    let receipt = engine
        .transact(4, &|db: &mut Database| {
            db.table_mut("t")?.upsert(row![7, "g2", 77])?;
            Ok(())
        })
        .expect("transaction commits");
    assert!(receipt.stamp > 0);
    let metrics = engine.metrics().expect("metrics readable");
    assert!(metrics.commits >= 2);
    // The sub-structs must be merged in, not defaulted: every commit
    // above wrote rows, and a durable host must surface its WAL appends
    // (a host that forgets `with_wal`/`with_shard` reports zeros here).
    assert!(metrics.rows_written >= 2, "rows_written lost in merge");
    engine.sync_wal().expect("sync is infallible in memory");
    if metrics.wal.syncs > 0 || metrics.wal.bytes_written > 0 {
        assert!(metrics.wal.appends >= 2, "durable host dropped wal stats");
    }
    // Telemetry reaches every implementor: the commits above must have
    // timed their stripe-lock hold (in-memory and durable, local and
    // remote alike), and the snapshot carries a live capture policy.
    let tel = engine.telemetry().expect("telemetry readable");
    assert!(
        tel.count(esm_obs::Phase::CommitLockHold) >= 1,
        "commit lock-hold phase never recorded"
    );
    assert!(tel.slow_threshold_ns > 0, "slow-op capture disabled");
}
