//! WAL truncation below the view cursors.
//!
//! The in-memory WAL feeds first-committer-wins validation and
//! materialized-view maintenance; once every registered view's window
//! cursor (and the durable checkpoint, when one exists) has passed a
//! prefix, that prefix is folded into the replay baseline and dropped —
//! the log stays bounded under a steady write/read workload without
//! ever breaking the replay law (`baseline + wal == live`), splitting a
//! chained transaction, or dropping the only evidence of a 2PC outcome.

use esm_engine::testkit::seed_db;
use esm_engine::{
    Durability, DurabilityConfig, EngineError, EngineServer, ShardRouter, ShardedEngineServer, Wal,
    WalRecord,
};
use esm_relational::ViewDef;
use esm_store::{row, Delta, Operand, Predicate};

fn ins(id: i64) -> Delta {
    Delta {
        inserted: vec![row![id, "g0", id]],
        deleted: vec![],
    }
}

#[test]
fn settled_prefix_respects_chains_and_prepares() {
    let mut wal = Wal::new();
    wal.push(WalRecord::delta(1, "t", ins(101))).unwrap();
    wal.push(WalRecord::chained(2, "t", ins(102))).unwrap();
    wal.push(WalRecord::delta(3, "t", ins(103))).unwrap();
    wal.push(WalRecord::chained(4, "t", ins(104))).unwrap();
    wal.push(WalRecord::prepare(5, "g1", 1)).unwrap();
    wal.push(WalRecord::delta(6, "t", ins(106))).unwrap();
    wal.push(WalRecord::resolve(7, "g1", true)).unwrap();

    // Seq 2 is mid-chain: the boundary falls back to 1.
    assert_eq!(wal.settled_prefix_end(2), 1);
    assert_eq!(wal.settled_prefix_end(3), 3);
    // Seqs 4..=6 sit under the unresolved prepare g1.
    assert_eq!(wal.settled_prefix_end(4), 3);
    assert_eq!(wal.settled_prefix_end(6), 3);
    // The resolution settles everything.
    assert_eq!(wal.settled_prefix_end(7), 7);

    // Truncation refuses unsettled cuts and honours settled ones.
    assert!(matches!(
        wal.clone().truncate_through(4),
        Err(EngineError::WalCorrupt(_))
    ));
    let mut cut = wal.clone();
    let dropped = cut.truncate_through(3).unwrap();
    assert_eq!(dropped.len(), 3);
    assert_eq!(cut.start_seq(), 3);
    assert_eq!(cut.len(), 4);
    // A cut at or below the start is a no-op.
    assert!(cut.truncate_through(3).unwrap().is_empty());
}

#[test]
fn truncation_is_gated_on_the_laggard_view_cursor() {
    let engine = EngineServer::new(seed_db());
    let fast = engine.define_view("fast", "t", &ViewDef::base()).unwrap();
    let slow = engine
        .define_view(
            "slow",
            "t",
            &ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(40))),
        )
        .unwrap();
    // Both cursors sit at registration (seq 0): nothing can go.
    for i in 0..10i64 {
        engine
            .edit_view_optimistic("fast", 4, move |v| {
                v.upsert(row![200 + i, "g0", i])?;
                Ok(())
            })
            .unwrap();
    }
    assert_eq!(engine.truncate_wal().unwrap(), 0);
    assert_eq!(engine.wal().len(), 10);

    // Only the fast view reads: the slow cursor still pins the log.
    fast.get().unwrap();
    assert_eq!(engine.truncate_wal().unwrap(), 0);

    // Once the laggard catches up the whole prefix drops…
    slow.get().unwrap();
    let dropped = engine.truncate_wal().unwrap();
    assert_eq!(dropped, 10);
    assert_eq!(engine.wal().len(), 0);
    assert_eq!(engine.wal().start_seq(), 10);
    let m = engine.metrics();
    assert_eq!(m.wal_truncations, 1);
    assert_eq!(m.wal_records_truncated, 10);

    // …and the replay law still holds: the baseline advanced in step.
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());

    // Life goes on: edits commit past the truncation point and views
    // keep maintaining incrementally (no spurious rebuild).
    let rebuilds = engine.metrics().view.rebuilds;
    engine
        .edit_view_optimistic("fast", 4, |v| {
            v.upsert(row![300, "g1", 1])?;
            Ok(())
        })
        .unwrap();
    assert_eq!(fast.get().unwrap().len(), 51);
    assert_eq!(engine.metrics().view.rebuilds, rebuilds);
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
}

#[test]
fn truncation_respects_chained_transactions() {
    let engine = EngineServer::new(seed_db());
    let all = engine.define_view("all", "t", &ViewDef::base()).unwrap();
    // A multi-table transaction appends a chained group (seed_db has
    // one table, so force chains through two transact tables by using
    // single-table groups of several rows plus a plain edit).
    engine
        .transact(4, |db| {
            db.table_mut("t")?.upsert(row![500, "g0", 1])?;
            db.table_mut("t")?.upsert(row![501, "g0", 2])?;
            Ok(())
        })
        .unwrap();
    all.get().unwrap();
    let dropped = engine.truncate_wal().unwrap();
    assert!(dropped >= 1);
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
}

#[test]
fn durable_truncation_waits_for_the_checkpoint() {
    let dir = std::env::temp_dir().join(format!("esm-trunc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurabilityConfig::new(&dir)
        .checkpoint_every(6)
        .maintenance_interval_ms(0);
    let engine = EngineServer::with_durability(seed_db(), 4, Durability::Durable(cfg)).unwrap();
    let all = engine.define_view("all", "t", &ViewDef::base()).unwrap();
    for i in 0..4i64 {
        engine
            .edit_view_optimistic("all", 4, move |v| {
                v.upsert(row![400 + i, "g0", i])?;
                Ok(())
            })
            .unwrap();
    }
    all.get().unwrap();
    // The view cursor passed everything, but the durable checkpoint
    // (interval 6) has not: nothing may drop yet.
    assert_eq!(engine.truncate_wal().unwrap(), 0);

    for i in 4..8i64 {
        engine
            .edit_view_optimistic("all", 4, move |v| {
                v.upsert(row![400 + i, "g0", i])?;
                Ok(())
            })
            .unwrap();
    }
    all.get().unwrap();
    // run_maintenance checkpoints (8 records >= interval 6) and then
    // truncates below min(cursor, checkpoint).
    let covered = engine.run_maintenance().unwrap();
    assert!(covered.is_some());
    assert!(engine.wal().start_seq() > 0);
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
    drop(engine);

    // Crash-recover the directory: the durable history is intact even
    // though the in-memory log was truncated.
    let (recovered, _) = EngineServer::recover(&dir).unwrap();
    let snap = recovered.snapshot();
    assert_eq!(snap.table("t").unwrap().len(), 48);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_truncation_drops_per_shard_prefixes() {
    let engine =
        ShardedEngineServer::with_router(seed_db(), ShardRouter::uniform_int(4, 0, 80).unwrap())
            .unwrap();
    let all = engine.define_view("all", "t", &ViewDef::base()).unwrap();
    // Disjoint single-shard commits plus one cross-shard 2PC.
    for i in 0..8i64 {
        let id = i * 10 + 1;
        engine
            .transact_keys(&[row![id]], 4, move |db| {
                db.table_mut("t")?.upsert(row![id, "g0", i])?;
                Ok(())
            })
            .unwrap();
    }
    engine
        .transact_keys(&[row![2], row![42]], 4, |db| {
            let t = db.table_mut("t")?;
            t.upsert(row![2, "g0", -1])?;
            t.upsert(row![42, "g1", 1])?;
            Ok(())
        })
        .unwrap();
    let before: usize = engine.shard_wals().iter().map(Wal::len).sum();
    assert!(before > 0);

    // Un-materialized views impose no floor, but nothing has read yet —
    // materialize, then truncate.
    all.get().unwrap();
    let dropped = engine.truncate_wals().unwrap();
    assert!(
        dropped as usize == before,
        "all settled records drop: {dropped} of {before}"
    );
    let after: usize = engine.shard_wals().iter().map(Wal::len).sum();
    assert_eq!(after, 0);
    assert_eq!(engine.metrics().wal_records_truncated, dropped);

    // Replay and maintenance laws survive.
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
    let rebuilds = engine.metrics().view.rebuilds;
    engine
        .transact_keys(&[row![3]], 4, |db| {
            db.table_mut("t")?.upsert(row![3, "g1", 3])?;
            Ok(())
        })
        .unwrap();
    assert!(all.get().unwrap().contains(&row![3, "g1", 3]));
    assert_eq!(engine.metrics().view.rebuilds, rebuilds);
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
}

#[test]
fn maintenance_keeps_the_log_bounded_under_steady_load() {
    let engine = EngineServer::new(seed_db());
    let all = engine.define_view("all", "t", &ViewDef::base()).unwrap();
    let mut max_len = 0;
    for round in 0..20i64 {
        for i in 0..10i64 {
            engine
                .edit_view_optimistic("all", 4, move |v| {
                    v.upsert(row![1000 + round * 10 + i, "g0", i])?;
                    Ok(())
                })
                .unwrap();
        }
        all.get().unwrap();
        engine.run_maintenance().unwrap();
        max_len = max_len.max(engine.wal().len());
    }
    // 200 commits flowed through; the log never held more than one
    // round's worth.
    assert!(max_len <= 10, "log grew unbounded: {max_len}");
    assert_eq!(engine.wal().start_seq(), 200);
    assert_eq!(engine.recovered_database().unwrap(), engine.snapshot());
}
