//! Property-based recovery laws: for arbitrary committed workloads, WAL
//! replay over the baseline reconstructs the live engine state, and the
//! WAL text codec round-trips.

use proptest::prelude::*;

use esm_engine::{TxStore, Wal};
use esm_store::{row, Database, Schema, Table, ValueType};

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("label", ValueType::Str),
            ("flag", ValueType::Bool),
        ],
        &["id"],
    )
    .expect("valid schema");
    let t = Table::from_rows(
        schema,
        vec![
            row![0, "zero", false],
            row![1, "one", true],
            row![2, "two", false],
        ],
    )
    .expect("valid rows");
    let mut db = Database::new();
    db.create_table("items", t).expect("fresh");
    db
}

/// One generated mutation: upsert (id, label, flag) or delete by id.
#[derive(Debug, Clone)]
enum Op {
    Upsert(i64, String, bool),
    Delete(i64),
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0i64..30, "[a-z]{0,5}", any::<bool>(), any::<bool>()),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(id, label, flag, is_delete)| {
                if is_delete {
                    Op::Delete(id)
                } else {
                    Op::Upsert(id, label, flag)
                }
            })
            .collect()
    })
}

fn apply_ops(store: &TxStore, ops: &[Op], per_tx: usize) {
    for chunk in ops.chunks(per_tx.max(1)) {
        store
            .transact(1, |tx| {
                let table = tx.table_mut("items")?;
                for op in chunk {
                    match op {
                        Op::Upsert(id, label, flag) => {
                            table.upsert(row![*id, label.as_str(), *flag])?;
                        }
                        Op::Delete(id) => {
                            table.delete_by_key(&row![*id]);
                        }
                    }
                }
                Ok(())
            })
            .expect("serial transactions never conflict");
    }
}

proptest! {
    #[test]
    fn wal_replay_reconstructs_live_state(ops in arb_ops(40), per_tx in 1usize..6) {
        let store = TxStore::new(baseline());
        apply_ops(&store, &ops, per_tx);
        let replayed = store.wal().replay(&baseline()).expect("replays");
        prop_assert_eq!(replayed, store.db());
    }

    #[test]
    fn wal_text_codec_round_trips(ops in arb_ops(30), per_tx in 1usize..4) {
        let store = TxStore::new(baseline());
        apply_ops(&store, &ops, per_tx);
        let wal = store.wal();
        let decoded = Wal::decode(&wal.encode()).expect("decodes");
        prop_assert_eq!(&decoded, &wal);
        // Decoded logs recover the same state as live ones.
        prop_assert_eq!(
            decoded.replay(&baseline()).expect("replays"),
            store.db()
        );
    }

    #[test]
    fn interleaved_disjoint_transactions_replay_exactly(seed_ops in arb_ops(20)) {
        // Two snapshot transactions over disjoint key ranges, committed in
        // an interleaved order, still yield a WAL whose replay equals the
        // final state.
        let store = TxStore::new(baseline());
        apply_ops(&store, &seed_ops, 3);
        let mut a = store.begin();
        let mut b = store.begin();
        a.table_mut("items").expect("exists").upsert(row![100, "from a", true]).expect("fits");
        b.table_mut("items").expect("exists").upsert(row![200, "from b", false]).expect("fits");
        b.commit().expect("disjoint");
        a.commit().expect("disjoint");
        prop_assert_eq!(store.wal().replay(&baseline()).expect("replays"), store.db());
    }
}
