//! Property-based recovery laws: for arbitrary committed workloads, WAL
//! replay over the baseline reconstructs the live engine state, and the
//! WAL text codec round-trips.

use proptest::prelude::*;

use esm_engine::{TxStore, Wal, WalRecord};
use esm_store::{row, Database, Delta, Row, Schema, Table, Value, ValueType};

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("label", ValueType::Str),
            ("flag", ValueType::Bool),
        ],
        &["id"],
    )
    .expect("valid schema");
    let t = Table::from_rows(
        schema,
        vec![
            row![0, "zero", false],
            row![1, "one", true],
            row![2, "two", false],
        ],
    )
    .expect("valid rows");
    let mut db = Database::new();
    db.create_table("items", t).expect("fresh");
    db
}

/// One generated mutation: upsert (id, label, flag) or delete by id.
#[derive(Debug, Clone)]
enum Op {
    Upsert(i64, String, bool),
    Delete(i64),
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0i64..30, "[a-z]{0,5}", any::<bool>(), any::<bool>()),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(id, label, flag, is_delete)| {
                if is_delete {
                    Op::Delete(id)
                } else {
                    Op::Upsert(id, label, flag)
                }
            })
            .collect()
    })
}

fn apply_ops(store: &TxStore, ops: &[Op], per_tx: usize) {
    for chunk in ops.chunks(per_tx.max(1)) {
        store
            .transact(1, |tx| {
                let table = tx.table_mut("items")?;
                for op in chunk {
                    match op {
                        Op::Upsert(id, label, flag) => {
                            table.upsert(row![*id, label.as_str(), *flag])?;
                        }
                        Op::Delete(id) => {
                            table.delete_by_key(&row![*id]);
                        }
                    }
                }
                Ok(())
            })
            .expect("serial transactions never conflict");
    }
}

/// Characters chosen to stress the codec: everything the escaping has to
/// handle (separators, escapes, the escape character itself), quoting,
/// format metacharacters (`#`, `+`, `-`, `:`), and a multi-byte point.
const NASTY: &[char] = &[
    'a', 'z', '"', '\'', '\\', '\t', '\n', '\r', ' ', ':', '#', '+', '-', 'λ',
];

fn nasty_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NASTY.len(), 0..8)
        .prop_map(|ix| ix.into_iter().map(|i| NASTY[i]).collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    (0u8..3, any::<i64>(), nasty_string()).prop_map(|(kind, n, s)| match kind {
        0 => Value::Bool(n % 2 == 0),
        1 => Value::Int(n),
        _ => Value::Str(s),
    })
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..3)
}

proptest! {
    #[test]
    fn wal_codec_roundtrips_arbitrary_multitable_deltas(
        raw in proptest::collection::vec(
            (nasty_string(), arb_rows(), arb_rows(), 1u64..4),
            0..12,
        )
    ) {
        // Arbitrary table names (escapes, quotes, separators, unicode),
        // arbitrary heterogeneous rows, empty deltas, and gapped seqs:
        // decode(encode(x)) == x regardless.
        let mut wal = Wal::new();
        let mut seq = 0u64;
        for (table, inserted, deleted, gap) in raw {
            seq += gap;
            wal.push(WalRecord::delta(seq, table, Delta { inserted, deleted }))
                .expect("strictly increasing by construction");
        }
        let text = wal.encode();
        let decoded = Wal::decode(&text).expect("round-trips");
        prop_assert_eq!(decoded, wal);
    }

    #[test]
    fn wal_codec_roundtrips_chains_and_markers(
        raw in proptest::collection::vec(
            (0u8..4, nasty_string(), arb_rows(), 1u64..3),
            0..16,
        )
    ) {
        // Chained deltas, prepare/resolve markers with codec-hostile
        // gtx ids, and plain records, interleaved arbitrarily: the text
        // codec round-trips the full op grammar.
        let mut wal = Wal::new();
        let mut seq = 0u64;
        for (kind, name, rows, gap) in raw {
            seq += gap;
            let rec = match kind {
                0 => WalRecord::delta(seq, format!("t_{name}"), Delta {
                    inserted: rows,
                    deleted: vec![],
                }),
                1 => WalRecord::chained(seq, format!("t_{name}"), Delta {
                    inserted: vec![],
                    deleted: rows,
                }),
                2 => WalRecord::prepare(seq, name, rows.len() as u64),
                _ => WalRecord::resolve(seq, name, rows.len() % 2 == 0),
            };
            wal.push(rec).expect("strictly increasing by construction");
        }
        let decoded = Wal::decode(&wal.encode()).expect("round-trips");
        prop_assert_eq!(decoded, wal);
    }
}

#[test]
fn codec_handles_quotes_newlines_and_empty_deltas() {
    let mut wal = Wal::new();
    // Escaped quotes and newlines inside strings, in table names too.
    wal.append(
        "quoted \" table\nwith newline",
        Delta {
            inserted: vec![vec![
                Value::str("she said \"hi\\there\""),
                Value::str("line1\nline2\r\nline3"),
                Value::str(""),
            ]],
            deleted: vec![vec![Value::str("tab\tseparated\tcells")]],
        },
    );
    // The empty delta and the empty row are records too.
    wal.append("empty_delta", Delta::empty());
    wal.append(
        "empty_row",
        Delta {
            inserted: vec![vec![]],
            deleted: vec![],
        },
    );
    let text = wal.encode();
    // Escaping keeps the line discipline: exactly one header or row per
    // physical line, whatever the payload.
    assert_eq!(text.lines().count(), 3 /* headers */ + 3 /* rows */);
    let back = Wal::decode(&text).expect("decodes");
    assert_eq!(back, wal);
}

proptest! {
    #[test]
    fn wal_replay_reconstructs_live_state(ops in arb_ops(40), per_tx in 1usize..6) {
        let store = TxStore::new(baseline());
        apply_ops(&store, &ops, per_tx);
        let replayed = store.wal().replay(&baseline()).expect("replays");
        prop_assert_eq!(replayed, store.db());
    }

    #[test]
    fn wal_text_codec_round_trips(ops in arb_ops(30), per_tx in 1usize..4) {
        let store = TxStore::new(baseline());
        apply_ops(&store, &ops, per_tx);
        let wal = store.wal();
        let decoded = Wal::decode(&wal.encode()).expect("decodes");
        prop_assert_eq!(&decoded, &wal);
        // Decoded logs recover the same state as live ones.
        prop_assert_eq!(
            decoded.replay(&baseline()).expect("replays"),
            store.db()
        );
    }

    #[test]
    fn interleaved_disjoint_transactions_replay_exactly(seed_ops in arb_ops(20)) {
        // Two snapshot transactions over disjoint key ranges, committed in
        // an interleaved order, still yield a WAL whose replay equals the
        // final state.
        let store = TxStore::new(baseline());
        apply_ops(&store, &seed_ops, 3);
        let mut a = store.begin();
        let mut b = store.begin();
        a.table_mut("items").expect("exists").upsert(row![100, "from a", true]).expect("fits");
        b.table_mut("items").expect("exists").upsert(row![200, "from b", false]).expect("fits");
        b.commit().expect("disjoint");
        a.commit().expect("disjoint");
        prop_assert_eq!(store.wal().replay(&baseline()).expect("replays"), store.db());
    }
}
