//! Property-based sharding laws: the router's key-range partitioning is
//! a bijection on keys — every key routes to exactly one shard, the
//! shard's range contains it (and no other shard's does), and the
//! ranges respect key order — and partitioning a database across a
//! sharded engine loses and duplicates nothing.

use proptest::prelude::*;

use esm_engine::{ShardRouter, ShardedEngineServer};
use esm_store::{row, Database, Row, Schema, Table, Value, ValueType};

/// Sorted, distinct split points from an arbitrary int set.
fn arb_splits() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::btree_set(-1000i64..1000, 0..8)
        .prop_map(|set| set.into_iter().map(|v| row![v]).collect())
}

fn arb_keys() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec((-1500i64..1500).prop_map(|v| row![v]), 1..64)
}

/// Is `key` inside the half-open range `[lo, hi)`?
fn in_range(key: &Row, lo: Option<&Row>, hi: Option<&Row>) -> bool {
    lo.is_none_or(|lo| lo <= key) && hi.is_none_or(|hi| key < hi)
}

proptest! {
    #[test]
    fn routing_is_a_bijection_on_keys(splits in arb_splits(), keys in arb_keys()) {
        let router = ShardRouter::from_splits(splits).expect("sorted distinct splits");
        for key in &keys {
            let shard = router.shard_of(key);
            // Total and in bounds.
            prop_assert!(shard < router.shard_count());
            // Deterministic.
            prop_assert_eq!(shard, router.shard_of(key));
            // The chosen shard's range contains the key…
            let (lo, hi) = router.range_of(shard).expect("in bounds");
            prop_assert!(in_range(key, lo, hi), "{key:?} outside its shard's range");
            // …and no other shard's range does: exactly one owner.
            for other in 0..router.shard_count() {
                if other != shard {
                    let (lo, hi) = router.range_of(other).expect("in bounds");
                    prop_assert!(
                        !in_range(key, lo, hi),
                        "{key:?} owned by both shard {shard} and {other}"
                    );
                }
            }
        }
        // Ranges are contiguous in key order: sorting by (shard, key)
        // equals sorting by key.
        let mut by_key = keys.clone();
        by_key.sort();
        let mut by_shard_then_key: Vec<(usize, Row)> =
            keys.iter().map(|k| (router.shard_of(k), k.clone())).collect();
        by_shard_then_key.sort();
        prop_assert_eq!(
            by_shard_then_key.into_iter().map(|(_, k)| k).collect::<Vec<_>>(),
            by_key
        );
    }

    #[test]
    fn split_refines_and_merge_coarsens_routing(
        splits in arb_splits(),
        keys in arb_keys(),
        at in -1500i64..1500,
    ) {
        let router = ShardRouter::from_splits(splits).expect("sorted distinct");
        let mut refined = router.clone();
        let at_key = row![at];
        match refined.split_at(at_key.clone()) {
            Err(_) => {
                // `at` was already a boundary: nothing changed.
                prop_assert_eq!(refined, router);
            }
            Ok(new_index) => {
                prop_assert_eq!(refined.shard_count(), router.shard_count() + 1);
                for key in &keys {
                    let old = router.shard_of(key);
                    let new = refined.shard_of(key);
                    // A split only renumbers: keys below `at` keep their
                    // relative shard, keys at/above it in the split
                    // shard move to the new one.
                    if old < new_index - 1 {
                        prop_assert_eq!(new, old);
                    } else if old == new_index - 1 {
                        let expected = if key < &at_key { old } else { new_index };
                        prop_assert_eq!(new, expected);
                    } else {
                        prop_assert_eq!(new, old + 1);
                    }
                }
                // Merging the pair back restores the original routing.
                let mut merged = refined.clone();
                merged.merge_into(new_index - 1).expect("adjacent pair");
                prop_assert_eq!(merged, router);
            }
        }
    }

    #[test]
    fn sharded_engines_partition_without_loss(
        splits in arb_splits(),
        ids in proptest::collection::btree_set(-1500i64..1500, 0..40),
    ) {
        let schema = Schema::build(
            &[("id", ValueType::Int), ("v", ValueType::Str)],
            &["id"],
        ).expect("valid schema");
        let rows: Vec<Row> = ids.iter().map(|&i| row![i, format!("r{i}")]).collect();
        let mut db = Database::new();
        db.create_table("kv", Table::from_rows(schema, rows).expect("valid")).expect("fresh");

        let router = ShardRouter::from_splits(splits).expect("sorted distinct");
        let engine = ShardedEngineServer::with_router(db.clone(), router.clone())
            .expect("sharded engine");
        // Nothing lost, nothing duplicated: the assembled snapshot is
        // the original database, and shard sizes sum to the row count.
        prop_assert_eq!(engine.snapshot(), db);
        let total: usize = engine.shard_wals().len();
        prop_assert_eq!(total, router.shard_count());
        // Every key reads back through a keyed transaction routed to
        // its shard.
        for &i in ids.iter().take(8) {
            let receipt = engine
                .transact_keys(&[row![i]], 1, |db| {
                    let t = db.table_mut("kv")?;
                    assert!(t.contains(&row![i, format!("r{i}")]));
                    t.upsert(row![i, "touched"])?;
                    Ok(())
                })
                .expect("commits");
            prop_assert_eq!(receipt.shards, vec![router.shard_of(&row![i])]);
        }
    }
}

#[test]
fn mixed_type_keys_still_partition_bijectively() {
    // Value's cross-variant total order (Bool < Int < Str) keeps the
    // bijection for heterogeneous keys too.
    let router = ShardRouter::from_splits(vec![row![false], row![0], row!["m"]]).unwrap();
    let keys = vec![
        row![true],
        row![false],
        row![-3],
        row![0],
        row![7],
        row![""],
        row!["m"],
        row!["zz"],
    ];
    for key in &keys {
        let shard = router.shard_of(key);
        let (lo, hi) = router.range_of(shard).unwrap();
        assert!(in_range(key, lo, hi));
    }
    assert_eq!(router.shard_of(&row![true]), 1); // false <= true < 0
    assert_eq!(router.shard_of(&row!["zz"]), 3);
}

#[test]
fn values_order_totally_across_variants() {
    // The premise the router rests on.
    let mut vals = vec![
        Value::str("a"),
        Value::Int(5),
        Value::Bool(true),
        Value::Int(-5),
        Value::Bool(false),
    ];
    vals.sort();
    assert_eq!(
        vals,
        vec![
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Int(5),
            Value::str("a"),
        ]
    );
}
