//! End-to-end telemetry acceptance: the phase histograms attribute
//! latency to the right phase and nothing else.
//!
//! The load-bearing test injects a [`SimDisk`] sync delay under a
//! [`SegmentWriter`] and asserts the delay surfaces **only** in the
//! fsync-phase histogram — the WAL-append histogram must not move.
//! The rest proves the registry is actually threaded through the hot
//! paths: durable single-engine commits record every commit phase,
//! cross-shard commits record the 2PC phases per participant, and
//! `Engine::metrics()` on durable hosts (through the trait object, as
//! remote callers see it) carries the merged WAL sub-struct.

use std::path::PathBuf;
use std::time::Duration;

use esm_engine::{
    Durability, DurabilityConfig, Engine, EngineServer, Phase, SegmentWriter, ShardRouter,
    ShardedEngineServer, SimFile, Telemetry, Wal, WalRecord,
};
use esm_store::{row, Database, Delta, Row, Schema, Table, ValueType};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_db(rows: i64) -> Database {
    let schema = Schema::build(&[("id", ValueType::Int), ("v", ValueType::Str)], &["id"]).unwrap();
    let rows: Vec<Row> = (0..rows).map(|i| row![i, format!("r{i}")]).collect();
    let mut db = Database::new();
    db.create_table("kv", Table::from_rows(schema, rows).unwrap())
        .unwrap();
    db
}

fn delta_record(seq: u64) -> WalRecord {
    WalRecord::delta(
        seq,
        "kv",
        Delta {
            inserted: vec![row![seq as i64 + 1000, "x"]],
            deleted: vec![],
        },
    )
}

/// Append+sync a batch through a [`SegmentWriter<SimFile>`] and return
/// the resulting telemetry snapshot.
fn run_writer(delay: Option<Duration>) -> esm_engine::TelemetrySnapshot {
    let file = SimFile::new();
    file.disk().lock().unwrap().sync_delay = delay;
    let telemetry = std::sync::Arc::new(Telemetry::new());
    let mut writer = SegmentWriter::new(file, 1);
    writer.set_telemetry(Some(std::sync::Arc::clone(&telemetry)));
    for seq in 1..=8u64 {
        writer.append(&delta_record(seq)).unwrap();
        assert!(writer.sync().unwrap());
    }
    telemetry.snapshot()
}

#[test]
fn a_slow_disk_shifts_only_the_fsync_histogram() {
    const DELAY: Duration = Duration::from_millis(3);
    let fast = run_writer(None);
    let slow = run_writer(Some(DELAY));

    // Both runs did the same work: 8 appends, 8 fsyncs.
    for snap in [&fast, &slow] {
        assert_eq!(snap.count(Phase::CommitWalAppend), 8);
        assert_eq!(snap.count(Phase::CommitFsync), 8);
    }

    // The delay lands in the fsync phase: every slow-run sync took at
    // least the injected delay; the fast run stayed well under it.
    let delay_ns = DELAY.as_nanos() as u64;
    let slow_fsync = slow.phase(Phase::CommitFsync).unwrap();
    let fast_fsync = fast.phase(Phase::CommitFsync).unwrap();
    assert!(
        slow_fsync.quantile(0.5) >= delay_ns,
        "slow-disk fsync p50 {} must exceed the {delay_ns}ns delay",
        slow_fsync.quantile(0.5)
    );
    assert!(
        fast_fsync.quantile(0.5) < delay_ns,
        "no-delay fsync p50 {} should be far under {delay_ns}ns",
        fast_fsync.quantile(0.5)
    );

    // And ONLY the fsync phase: appends never touch the simulated
    // platter, so even the slow run's worst append stays under the
    // delay — the injected latency did not bleed across phases.
    let slow_append = slow.phase(Phase::CommitWalAppend).unwrap();
    assert!(
        slow_append.max < delay_ns,
        "append max {} contaminated by the fsync delay",
        slow_append.max
    );
}

#[test]
fn durable_commits_record_every_commit_phase() {
    let dir = fresh_dir("engine-phases");
    let engine = EngineServer::with_durability(
        seed_db(16),
        16,
        Durability::Durable(
            DurabilityConfig::new(&dir)
                .group_commit(1)
                .checkpoint_every(0)
                .maintenance_interval_ms(0),
        ),
    )
    .unwrap();
    for i in 0..4i64 {
        engine
            .transact(4, move |db| {
                db.table_mut("kv")?.upsert(row![100 + i, "w"])?;
                Ok(())
            })
            .unwrap();
    }
    let tel = engine.telemetry();
    for phase in [
        Phase::CommitSnapshot,
        Phase::CommitValidate,
        Phase::CommitLockHold,
        Phase::CommitWalAppend,
        Phase::CommitFsync,
    ] {
        assert!(
            tel.count(phase) >= 4,
            "phase {} recorded {} samples, wanted >= 4",
            phase.name(),
            tel.count(phase)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_shard_commits_record_the_twopc_phases_per_participant() {
    let dir = fresh_dir("twopc-phases");
    let engine = ShardedEngineServer::with_durability(
        seed_db(40),
        ShardRouter::uniform_int(2, 0, 40).unwrap(),
        DurabilityConfig::new(&dir)
            .group_commit(1)
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .unwrap();
    // Keys on both shards force 2PC.
    let receipt = engine
        .transact_keys(&[row![1], row![30]], 4, |db| {
            let t = db.table_mut("kv")?;
            t.upsert(row![1, "a"])?;
            t.upsert(row![30, "b"])?;
            Ok(())
        })
        .unwrap();
    assert_eq!(receipt.shards.len(), 2, "the commit crossed shards");
    let tel = engine.telemetry();
    // One sample per participant per phase; both fsync barriers count.
    assert_eq!(tel.count(Phase::TwopcPrepare), 2);
    assert_eq!(tel.count(Phase::TwopcResolve), 2);
    assert_eq!(tel.count(Phase::TwopcParticipantFsync), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dyn_engine_metrics_merge_wal_stats_on_durable_hosts() {
    let dir = fresh_dir("metrics-merge");
    let single: Box<dyn Engine> = Box::new(
        EngineServer::with_durability(
            seed_db(8),
            16,
            Durability::Durable(
                DurabilityConfig::new(dir.join("single"))
                    .group_commit(1)
                    .checkpoint_every(0)
                    .maintenance_interval_ms(0),
            ),
        )
        .unwrap(),
    );
    let sharded: Box<dyn Engine> = Box::new(
        ShardedEngineServer::with_durability(
            seed_db(40),
            ShardRouter::uniform_int(2, 0, 40).unwrap(),
            DurabilityConfig::new(dir.join("sharded"))
                .group_commit(1)
                .checkpoint_every(0)
                .maintenance_interval_ms(0),
        )
        .unwrap(),
    );
    for engine in [&single, &sharded] {
        engine
            .transact(4, &|db: &mut Database| {
                db.table_mut("kv")?.upsert(row![3, "m"])?;
                Ok(())
            })
            .unwrap();
        let m = engine.metrics().expect("metrics through dyn Engine");
        assert!(m.commits >= 1);
        assert!(
            m.wal.appends >= 1,
            "durable host reported wal.appends = 0 through dyn Engine"
        );
        assert!(m.wal.syncs >= 1);
        // The trait surface also exposes telemetry for every host.
        assert!(
            engine
                .telemetry()
                .expect("telemetry through dyn Engine")
                .count(Phase::CommitLockHold)
                >= 1
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_ops_capture_phase_breakdowns_and_stay_bounded() {
    let engine = EngineServer::new(seed_db(8));
    // Force everything to qualify as slow.
    engine.telemetry_registry().set_slow_threshold_ns(0);
    for i in 0..100i64 {
        engine
            .transact(4, move |db| {
                db.table_mut("kv")?.upsert(row![200 + i, "s"])?;
                Ok(())
            })
            .unwrap();
    }
    let tel = engine.telemetry();
    assert!(!tel.slow_ops.is_empty(), "threshold 0 captured nothing");
    assert!(
        tel.slow_ops.len() <= esm_obs::SLOW_OP_CAPACITY,
        "slow-op ring exceeded its bound"
    );
    assert!(
        tel.slow_ops
            .iter()
            .any(|op| op.phases.iter().any(|(p, _)| *p == Phase::CommitLockHold)),
        "no slow op carried a lock-hold breakdown"
    );
    // Reads are non-draining: a second snapshot still sees them.
    assert!(!engine.telemetry().slow_ops.is_empty());
}

#[test]
fn wal_append_and_fsync_remain_separable_after_rotation() {
    let dir = fresh_dir("rotation");
    let engine = EngineServer::with_durability(
        seed_db(8),
        16,
        Durability::Durable(
            DurabilityConfig::new(&dir)
                .group_commit(1)
                .checkpoint_every(0)
                .maintenance_interval_ms(0)
                .segment_bytes(256),
        ),
    )
    .unwrap();
    for i in 0..12i64 {
        engine
            .transact(4, move |db| {
                db.table_mut("kv")?.upsert(row![300 + i, "rotated-away"])?;
                Ok(())
            })
            .unwrap();
    }
    let m = engine.metrics();
    assert!(m.wal.rotations >= 1, "the tiny segment cap never rotated");
    let tel = engine.telemetry();
    // Telemetry survives the writer swap inside rotation: every commit
    // after the rotation kept recording into the same registry.
    assert_eq!(tel.count(Phase::CommitWalAppend), 12);
    assert_eq!(tel.count(Phase::CommitFsync), 12);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_handle_smoke_keeps_compiling() {
    // `Wal` stays exported and replayable (regression guard for the
    // re-export list this PR touches).
    let wal = Wal::new();
    assert!(wal.is_empty());
}
