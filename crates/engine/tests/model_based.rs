//! Model-based concurrency testing: random interleavings of
//! `edit_view_optimistic` / `write_view` across 4 threads, checked
//! against a single-threaded oracle `Database`.
//!
//! Each thread executes a seeded random script of logical operations —
//! contended counter bumps through the whole-table view (optimistic
//! path) and disjoint inserts through its own shard view (pessimistic
//! path). Every committed write tags its row with `(thread, op index)`,
//! so the WAL is a total serialization order over the logical ops. The
//! oracle then re-executes the *logical* operations (not the recorded
//! deltas) single-threadedly in WAL order and must land on exactly the
//! live state, record by record: any lost update, double-apply or torn
//! interleaving diverges.

//! A second run drives a **sharded** engine with cross-shard transfers:
//! every committed transaction carries a commit stamp taken while all
//! its participant shard locks were held, so sorting the workload by
//! stamp is a serialization order — the oracle re-executes it
//! single-threadedly and must land on the live state exactly.
//!
//! Both runs additionally race **reader** threads against the writers:
//! every read is served from a maintained materialized view window, and
//! each must be a consistent committed state — counters never run
//! backwards between successive reads (unsharded), and the money
//! invariant holds in every snapshot (sharded: bumps add 1000, transfer
//! amounts are < 1000, so a half-applied cross-shard transfer would be
//! visible as `sum % 1000 != initial`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use esm_engine::{EngineServer, ShardRouter, ShardedEngineServer};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, Value, ValueType};
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 40;
const COUNTERS: i64 = 3;

/// One logical operation a thread performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Increment shared counter `cid` by 1 (read-modify-write through
    /// the whole-table view, optimistic).
    Bump { cid: i64 },
    /// Insert a fresh row with this id/value into the thread's own shard
    /// (read + whole-window write through the shard view, pessimistic).
    Own { id: i64, val: i64 },
}

fn scripts(seed: u64) -> Vec<Vec<Op>> {
    (0..THREADS)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            (0..OPS_PER_THREAD)
                .map(|j| {
                    if rng.gen_range(0..100u32) < 55 {
                        Op::Bump {
                            cid: rng.gen_range(0..COUNTERS),
                        }
                    } else {
                        Op::Own {
                            id: 1_000 * (t as i64 + 1) + j as i64,
                            val: rng.gen_range(0..1_000i64),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("shard", ValueType::Str),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let mut rows: Vec<Row> = (0..COUNTERS)
        .map(|c| row![c, "shared", "init", 0])
        .collect();
    rows.push(row![500, "t0", "seed", 1]);
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh");
    db
}

fn tag(t: usize, j: usize) -> String {
    format!("t{t}:op{j}")
}

fn parse_tag(owner: &str) -> Option<(usize, usize)> {
    let rest = owner.strip_prefix('t')?;
    let (t, j) = rest.split_once(":op")?;
    Some((t.parse().ok()?, j.parse().ok()?))
}

/// Apply the logical op to the oracle, returning the row it must have
/// written.
fn oracle_apply(oracle: &mut Database, t: usize, j: usize, op: Op) -> Row {
    let table = oracle.table_mut("accounts").expect("exists");
    let written = match op {
        Op::Bump { cid } => {
            let cur = table.get_by_key(&row![cid]).expect("counter exists")[3]
                .as_int()
                .expect("int balance");
            row![cid, "shared", tag(t, j), cur + 1]
        }
        Op::Own { id, val } => row![id, format!("t{t}"), tag(t, j), val],
    };
    table.upsert(written.clone()).expect("fits");
    written
}

#[test]
fn random_interleavings_match_the_single_threaded_oracle() {
    // Several seeds = several distinct schedules and scripts; the OS
    // scheduler supplies fresh interleavings on every run besides.
    for seed in [11, 42, 2026] {
        let scripts = scripts(seed);
        let engine = EngineServer::new(baseline());
        engine
            .define_view("all", "accounts", &ViewDef::base())
            .expect("compiles");
        for t in 0..THREADS {
            engine
                .define_view(
                    format!("shard_{t}"),
                    "accounts",
                    &ViewDef::base().select(Predicate::eq(
                        Operand::col("shard"),
                        Operand::val(format!("t{t}")),
                    )),
                )
                .expect("compiles");
        }

        // Readers race the writers: every view read is served from the
        // maintained window and must be a consistent committed state —
        // counters never run backwards between successive reads.
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = engine.clone();
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut floors = vec![0i64; COUNTERS as usize];
                    let mut reads = 0u64;
                    loop {
                        let view = engine.read_view("all").expect("readable");
                        for cid in 0..COUNTERS {
                            let seen = view.get_by_key(&row![cid]).expect("counter")[3]
                                .as_int()
                                .expect("int");
                            assert!(
                                seen >= floors[cid as usize],
                                "counter {cid} ran backwards: {seen} < {}",
                                floors[cid as usize]
                            );
                            floors[cid as usize] = seen;
                        }
                        reads += 1;
                        if done.load(Ordering::Relaxed) {
                            break reads;
                        }
                    }
                })
            })
            .collect();

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = engine.clone();
                let script = scripts[t].clone();
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xF00D ^ t as u64);
                    for (j, op) in script.into_iter().enumerate() {
                        match op {
                            Op::Bump { cid } => {
                                let owner = tag(t, j);
                                engine
                                    .edit_view_optimistic("all", u32::MAX, |v| {
                                        let cur = v.get_by_key(&row![cid]).expect("counter exists")
                                            [3]
                                        .as_int()
                                        .expect("int");
                                        v.upsert(row![cid, "shared", owner.as_str(), cur + 1])?;
                                        Ok(())
                                    })
                                    .expect("eventually commits");
                            }
                            Op::Own { id, val } => {
                                let view_name = format!("shard_{t}");
                                let mut v = engine.read_view(&view_name).expect("readable");
                                v.upsert(row![id, format!("t{t}"), tag(t, j), val])
                                    .expect("fits");
                                engine.write_view(&view_name, v).expect("commits");
                            }
                        }
                        if rng.gen_range(0..4u32) == 0 {
                            thread::yield_now(); // shake the schedule
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no worker panicked");
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("no reader panicked") > 0, "readers ran");
        }
        // A final read observes every committed bump (read-your-writes
        // through the maintained window).
        let final_view = engine.read_view("all").expect("readable");
        assert_eq!(final_view, engine.table("accounts").expect("exists"));

        let live = engine.snapshot();
        let wal = engine.wal();

        // Law 0: the engine committed exactly one record per logical op.
        assert_eq!(wal.len(), THREADS * OPS_PER_THREAD, "seed {seed}");
        assert_eq!(engine.metrics().commits, (THREADS * OPS_PER_THREAD) as u64);

        // Law 1: replaying the recorded deltas reproduces the live state.
        assert_eq!(
            wal.replay(&engine.baseline()).expect("replays"),
            live,
            "seed {seed}"
        );

        // Law 2 (the model check): re-executing the *logical* ops
        // single-threadedly in WAL serialization order reproduces the
        // live state record by record.
        let mut oracle = baseline();
        for rec in wal.records() {
            let (rec_table, rec_delta) = rec.delta_op().expect("view commits are delta records");
            assert_eq!(rec_table, "accounts");
            assert_eq!(
                rec_delta.inserted.len(),
                1,
                "every op writes exactly one row: {rec:?}"
            );
            let written = &rec_delta.inserted[0];
            let owner = written[2].as_str().expect("owner is a string");
            let (t, j) =
                parse_tag(owner).unwrap_or_else(|| panic!("untagged row in WAL: {written:?}"));
            let expected = oracle_apply(&mut oracle, t, j, scripts[t][j]);
            assert_eq!(
                written, &expected,
                "seed {seed}, seq {}: the committed row must equal the \
                 oracle's at this serialization point",
                rec.seq
            );
        }
        assert_eq!(oracle, live, "seed {seed}: oracle and live state agree");

        // Law 3: the counters add up — no bump was lost or double-run.
        let mut bumps = vec![0i64; COUNTERS as usize];
        for script in &scripts {
            for op in script {
                if let Op::Bump { cid } = op {
                    bumps[*cid as usize] += 1;
                }
            }
        }
        let accounts = live.table("accounts").expect("exists");
        for cid in 0..COUNTERS {
            assert_eq!(
                accounts.get_by_key(&row![cid]).expect("counter")[3],
                Value::Int(bumps[cid as usize]),
                "seed {seed}, counter {cid}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cross-shard model check.
// ---------------------------------------------------------------------

const SHARDS: i64 = 4;
const XOPS_PER_THREAD: usize = 30;

/// One logical operation against the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XOp {
    /// Increment the counter living on shard `c` (single-shard fast
    /// path).
    Bump { c: i64 },
    /// Move `amt` from shard `from`'s counter to shard `to`'s counter
    /// (cross-shard 2PC); `from != to`.
    Transfer { from: i64, to: i64, amt: i64 },
}

fn xscripts(seed: u64) -> Vec<Vec<XOp>> {
    (0..THREADS)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xA5A5));
            (0..XOPS_PER_THREAD)
                .map(|_| {
                    if rng.gen_range(0..100u32) < 50 {
                        XOp::Bump {
                            c: rng.gen_range(0..SHARDS),
                        }
                    } else {
                        let from = rng.gen_range(0..SHARDS);
                        let to = (from + rng.gen_range(1..SHARDS)) % SHARDS;
                        XOp::Transfer {
                            from,
                            to,
                            amt: rng.gen_range(1..20),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// One counter row per shard: ids 0, 1000, 2000, 3000.
fn counter_key(c: i64) -> Row {
    row![1000 * c]
}

fn sharded_baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..SHARDS).map(|c| row![1000 * c, "init", 100]).collect();
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh");
    db
}

/// Apply the logical op to the oracle, tagging like the live run.
fn xoracle_apply(oracle: &mut Database, t: usize, j: usize, op: XOp) {
    let table = oracle.table_mut("accounts").expect("exists");
    match op {
        XOp::Bump { c } => {
            let cur = table.get_by_key(&counter_key(c)).expect("counter")[2]
                .as_int()
                .expect("int");
            // Bumps add 1000 while transfer amounts stay below 1000, so
            // `sum % 1000` is invariant under committed states and
            // perturbed by any torn cross-shard read.
            table
                .upsert(row![1000 * c, tag(t, j), cur + 1000])
                .expect("fits");
        }
        XOp::Transfer { from, to, amt } => {
            let f = table.get_by_key(&counter_key(from)).expect("counter")[2]
                .as_int()
                .expect("int");
            let g = table.get_by_key(&counter_key(to)).expect("counter")[2]
                .as_int()
                .expect("int");
            table
                .upsert(row![1000 * from, tag(t, j), f - amt])
                .expect("fits");
            table
                .upsert(row![1000 * to, tag(t, j), g + amt])
                .expect("fits");
        }
    }
}

#[test]
fn cross_shard_interleavings_match_the_single_threaded_oracle() {
    for seed in [7, 99, 4242] {
        let scripts = xscripts(seed);
        let engine = ShardedEngineServer::with_router(
            sharded_baseline(),
            ShardRouter::uniform_int(SHARDS as usize, 0, 1000 * SHARDS).expect("router"),
        )
        .expect("sharded engine");
        engine
            .define_view("all", "accounts", &ViewDef::base())
            .expect("compiles");
        engine
            .define_view(
                "low",
                "accounts",
                &ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(1000))),
            )
            .expect("compiles");

        // Readers race the writers through the maintained windows. The
        // whole-table view checks the money invariant (a torn 2PC read
        // would break `sum % 1000`); the key-bounded view is served
        // shard-pruned and must only ever show shard 0's counter.
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let engine = engine.clone();
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut reads = 0u64;
                    loop {
                        if r == 0 {
                            let view = engine.read_view("all").expect("readable");
                            assert_eq!(view.len(), SHARDS as usize);
                            let sum: i64 = view.rows().map(|r| r[2].as_int().expect("int")).sum();
                            assert_eq!(
                                sum.rem_euclid(1000),
                                (100 * SHARDS).rem_euclid(1000),
                                "torn cross-shard read: sum {sum}"
                            );
                        } else {
                            let view = engine.read_view("low").expect("readable");
                            assert!(view.rows().all(|row| row[0].as_int().expect("int") < 1000));
                            assert_eq!(view.len(), 1);
                        }
                        reads += 1;
                        if done.load(Ordering::Relaxed) {
                            break reads;
                        }
                    }
                })
            })
            .collect();

        // Each thread runs its script, recording the commit stamp of
        // every transaction: the stamps define the serialization order
        // the oracle replays.
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = engine.clone();
                let script = scripts[t].clone();
                thread::spawn(move || {
                    let mut receipts: Vec<(u64, usize)> = Vec::new();
                    for (j, op) in script.into_iter().enumerate() {
                        let owner = tag(t, j);
                        let receipt = match op {
                            XOp::Bump { c } => engine
                                .transact_keys(&[counter_key(c)], u32::MAX, |db| {
                                    let table = db.table_mut("accounts")?;
                                    let cur = table.get_by_key(&counter_key(c)).expect("counter")
                                        [2]
                                    .as_int()
                                    .expect("int");
                                    table.upsert(row![1000 * c, owner.as_str(), cur + 1000])?;
                                    Ok(())
                                })
                                .expect("eventually commits"),
                            XOp::Transfer { from, to, amt } => engine
                                .transact_keys(
                                    &[counter_key(from), counter_key(to)],
                                    u32::MAX,
                                    |db| {
                                        let table = db.table_mut("accounts")?;
                                        let f = table
                                            .get_by_key(&counter_key(from))
                                            .expect("counter")[2]
                                            .as_int()
                                            .expect("int");
                                        let g =
                                            table.get_by_key(&counter_key(to)).expect("counter")[2]
                                                .as_int()
                                                .expect("int");
                                        table.upsert(row![1000 * from, owner.as_str(), f - amt])?;
                                        table.upsert(row![1000 * to, owner.as_str(), g + amt])?;
                                        Ok(())
                                    },
                                )
                                .expect("eventually commits"),
                        };
                        receipts.push((receipt.stamp, j));
                    }
                    receipts
                })
            })
            .collect();
        let mut serialized: Vec<(u64, usize, usize)> = Vec::new();
        for (t, h) in handles.into_iter().enumerate() {
            for (stamp, j) in h.join().expect("no worker panicked") {
                serialized.push((stamp, t, j));
            }
        }
        serialized.sort_unstable();
        done.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("no reader panicked") > 0, "readers ran");
        }
        // Read-your-writes through the maintained window, and the
        // key-bounded view pruned shards while the writers raced it.
        assert_eq!(
            engine.read_view("all").expect("readable"),
            engine.table("accounts").expect("exists")
        );
        assert!(engine.metrics().view.shards_pruned > 0);

        let live = engine.snapshot();
        let total_ops = THREADS * XOPS_PER_THREAD;

        // Law 0: every logical op committed exactly once, and the fast
        // path / 2PC split matches the scripts.
        let transfers: usize = scripts
            .iter()
            .flatten()
            .filter(|op| matches!(op, XOp::Transfer { .. }))
            .count();
        let m = engine.metrics();
        assert_eq!(m.commits as usize, total_ops, "seed {seed}");
        assert_eq!(
            m.shard.cross_shard_commits as usize, transfers,
            "seed {seed}: every transfer crossed shards"
        );
        assert_eq!(
            m.shard.single_shard_commits as usize,
            total_ops - transfers,
            "seed {seed}: every bump stayed on one shard"
        );
        assert_eq!(m.shard.prepares as usize, 2 * transfers, "seed {seed}");

        // Law 1: every shard's WAL replays to its live piece.
        assert_eq!(
            engine.recovered_database().expect("replays"),
            live,
            "seed {seed}"
        );

        // Law 2 (the model check): re-executing the logical ops
        // single-threadedly in commit-stamp order reproduces the live
        // state exactly — stamps are taken under all participant locks,
        // so they are a serialization order even across shards.
        let mut oracle = sharded_baseline();
        for &(_stamp, t, j) in &serialized {
            xoracle_apply(&mut oracle, t, j, scripts[t][j]);
        }
        assert_eq!(oracle, live, "seed {seed}: oracle and live state agree");

        // Law 3: money is conserved — transfers cancel, each bump adds
        // exactly 1000 to the global sum.
        let bumps: i64 = scripts
            .iter()
            .flatten()
            .filter(|op| matches!(op, XOp::Bump { .. }))
            .count() as i64;
        let sum: i64 = live
            .table("accounts")
            .expect("exists")
            .rows()
            .map(|r| r[2].as_int().expect("int"))
            .sum();
        assert_eq!(sum, 100 * SHARDS + 1000 * bumps, "seed {seed}");
    }
}
