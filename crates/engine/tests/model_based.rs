//! Model-based concurrency testing: random interleavings of
//! `edit_view_optimistic` / `write_view` across 4 threads, checked
//! against a single-threaded oracle `Database`.
//!
//! Each thread executes a seeded random script of logical operations —
//! contended counter bumps through the whole-table view (optimistic
//! path) and disjoint inserts through its own shard view (pessimistic
//! path). Every committed write tags its row with `(thread, op index)`,
//! so the WAL is a total serialization order over the logical ops. The
//! oracle then re-executes the *logical* operations (not the recorded
//! deltas) single-threadedly in WAL order and must land on exactly the
//! live state, record by record: any lost update, double-apply or torn
//! interleaving diverges.

use std::thread;

use esm_engine::EngineServer;
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, Value, ValueType};
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 40;
const COUNTERS: i64 = 3;

/// One logical operation a thread performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Increment shared counter `cid` by 1 (read-modify-write through
    /// the whole-table view, optimistic).
    Bump { cid: i64 },
    /// Insert a fresh row with this id/value into the thread's own shard
    /// (read + whole-window write through the shard view, pessimistic).
    Own { id: i64, val: i64 },
}

fn scripts(seed: u64) -> Vec<Vec<Op>> {
    (0..THREADS)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            (0..OPS_PER_THREAD)
                .map(|j| {
                    if rng.gen_range(0..100u32) < 55 {
                        Op::Bump {
                            cid: rng.gen_range(0..COUNTERS),
                        }
                    } else {
                        Op::Own {
                            id: 1_000 * (t as i64 + 1) + j as i64,
                            val: rng.gen_range(0..1_000i64),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("shard", ValueType::Str),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let mut rows: Vec<Row> = (0..COUNTERS)
        .map(|c| row![c, "shared", "init", 0])
        .collect();
    rows.push(row![500, "t0", "seed", 1]);
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh");
    db
}

fn tag(t: usize, j: usize) -> String {
    format!("t{t}:op{j}")
}

fn parse_tag(owner: &str) -> Option<(usize, usize)> {
    let rest = owner.strip_prefix('t')?;
    let (t, j) = rest.split_once(":op")?;
    Some((t.parse().ok()?, j.parse().ok()?))
}

/// Apply the logical op to the oracle, returning the row it must have
/// written.
fn oracle_apply(oracle: &mut Database, t: usize, j: usize, op: Op) -> Row {
    let table = oracle.table_mut("accounts").expect("exists");
    let written = match op {
        Op::Bump { cid } => {
            let cur = table.get_by_key(&row![cid]).expect("counter exists")[3]
                .as_int()
                .expect("int balance");
            row![cid, "shared", tag(t, j), cur + 1]
        }
        Op::Own { id, val } => row![id, format!("t{t}"), tag(t, j), val],
    };
    table.upsert(written.clone()).expect("fits");
    written
}

#[test]
fn random_interleavings_match_the_single_threaded_oracle() {
    // Several seeds = several distinct schedules and scripts; the OS
    // scheduler supplies fresh interleavings on every run besides.
    for seed in [11, 42, 2026] {
        let scripts = scripts(seed);
        let engine = EngineServer::new(baseline());
        engine
            .define_view("all", "accounts", &ViewDef::base())
            .expect("compiles");
        for t in 0..THREADS {
            engine
                .define_view(
                    format!("shard_{t}"),
                    "accounts",
                    &ViewDef::base().select(Predicate::eq(
                        Operand::col("shard"),
                        Operand::val(format!("t{t}")),
                    )),
                )
                .expect("compiles");
        }

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = engine.clone();
                let script = scripts[t].clone();
                thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xF00D ^ t as u64);
                    for (j, op) in script.into_iter().enumerate() {
                        match op {
                            Op::Bump { cid } => {
                                let owner = tag(t, j);
                                engine
                                    .edit_view_optimistic("all", u32::MAX, |v| {
                                        let cur = v.get_by_key(&row![cid]).expect("counter exists")
                                            [3]
                                        .as_int()
                                        .expect("int");
                                        v.upsert(row![cid, "shared", owner.as_str(), cur + 1])?;
                                        Ok(())
                                    })
                                    .expect("eventually commits");
                            }
                            Op::Own { id, val } => {
                                let view_name = format!("shard_{t}");
                                let mut v = engine.read_view(&view_name).expect("readable");
                                v.upsert(row![id, format!("t{t}"), tag(t, j), val])
                                    .expect("fits");
                                engine.write_view(&view_name, v).expect("commits");
                            }
                        }
                        if rng.gen_range(0..4u32) == 0 {
                            thread::yield_now(); // shake the schedule
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no worker panicked");
        }

        let live = engine.snapshot();
        let wal = engine.wal();

        // Law 0: the engine committed exactly one record per logical op.
        assert_eq!(wal.len(), THREADS * OPS_PER_THREAD, "seed {seed}");
        assert_eq!(engine.metrics().commits, (THREADS * OPS_PER_THREAD) as u64);

        // Law 1: replaying the recorded deltas reproduces the live state.
        assert_eq!(
            wal.replay(&engine.baseline()).expect("replays"),
            live,
            "seed {seed}"
        );

        // Law 2 (the model check): re-executing the *logical* ops
        // single-threadedly in WAL serialization order reproduces the
        // live state record by record.
        let mut oracle = baseline();
        for rec in wal.records() {
            assert_eq!(rec.table, "accounts");
            assert_eq!(
                rec.delta.inserted.len(),
                1,
                "every op writes exactly one row: {rec:?}"
            );
            let written = &rec.delta.inserted[0];
            let owner = written[2].as_str().expect("owner is a string");
            let (t, j) =
                parse_tag(owner).unwrap_or_else(|| panic!("untagged row in WAL: {written:?}"));
            let expected = oracle_apply(&mut oracle, t, j, scripts[t][j]);
            assert_eq!(
                written, &expected,
                "seed {seed}, seq {}: the committed row must equal the \
                 oracle's at this serialization point",
                rec.seq
            );
        }
        assert_eq!(oracle, live, "seed {seed}: oracle and live state agree");

        // Law 3: the counters add up — no bump was lost or double-run.
        let mut bumps = vec![0i64; COUNTERS as usize];
        for script in &scripts {
            for op in script {
                if let Op::Bump { cid } = op {
                    bumps[*cid as usize] += 1;
                }
            }
        }
        let accounts = live.table("accounts").expect("exists");
        for cid in 0..COUNTERS {
            assert_eq!(
                accounts.get_by_key(&row![cid]).expect("counter")[3],
                Value::Int(bumps[cid as usize]),
                "seed {seed}, counter {cid}"
            );
        }
    }
}
