//! Integration: N writer threads × M entangled views over one engine.
//!
//! The acceptance contract for the engine subsystem:
//! * interleaved transactions from ≥4 threads through ≥3 entangled views
//!   commit with **no lost updates** (disjoint writes all land; contended
//!   read-modify-writes serialize via first-committer-wins retries);
//! * every committed write's `get` round-trips (the written rows are
//!   visible through the view that wrote them *and* through the other
//!   entangled views);
//! * replaying the WAL over the baseline equals the live state, including
//!   across the text encode/decode round-trip.

use std::thread;

use esm_engine::{EngineError, EngineServer, TxStore};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Schema, Table, Value, ValueType};

fn accounts_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("shard", ValueType::Str),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows = vec![
        row![0, "counter", "system", 0],
        row![1, "a", "ada", 100],
        row![2, "b", "alan", 200],
        row![3, "c", "grace", 300],
    ];
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh table");
    db
}

/// An engine with four entangled views over the one base table: three
/// shard selections plus a whole-table identity view.
fn engine_with_views() -> EngineServer {
    let engine = EngineServer::new(accounts_db());
    for shard in ["a", "b", "c"] {
        engine
            .define_view(
                format!("shard_{shard}"),
                "accounts",
                &ViewDef::base().select(Predicate::eq(Operand::col("shard"), Operand::val(shard))),
            )
            .expect("view compiles");
    }
    engine
        .define_view("all", "accounts", &ViewDef::base())
        .expect("view compiles");
    engine
}

#[test]
fn disjoint_writes_from_many_threads_all_land() {
    const THREADS: usize = 8;
    const WRITES_PER_THREAD: i64 = 25;

    let engine = engine_with_views();
    let shards = ["a", "b", "c"];

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shard = shards[t % shards.len()];
            let view = engine.view(&format!("shard_{shard}")).expect("registered");
            thread::spawn(move || {
                for i in 0..WRITES_PER_THREAD {
                    let id = 1_000 + (t as i64) * WRITES_PER_THREAD + i;
                    let owner = format!("t{t}w{i}");
                    let delta = view
                        .edit(|v| {
                            v.upsert(row![id, shard, owner.as_str(), i])?;
                            Ok(())
                        })
                        .expect("edit commits");
                    // The committed delta reports exactly this write.
                    assert_eq!(delta.inserted, vec![row![id, shard, owner.as_str(), i]]);
                    // Round-trip: the row is immediately visible through
                    // the view that wrote it.
                    assert!(view.get().expect("readable").contains(&row![
                        id,
                        shard,
                        owner.as_str(),
                        i
                    ]));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no writer panicked");
    }

    // No lost updates: every one of the THREADS × WRITES_PER_THREAD
    // distinct rows landed in the base table.
    let base = engine.table("accounts").expect("exists");
    assert_eq!(base.len(), 4 + THREADS * WRITES_PER_THREAD as usize);
    // And each is visible through the entangled whole-table view.
    let all = engine.read_view("all").expect("readable");
    for t in 0..THREADS {
        for i in 0..WRITES_PER_THREAD {
            let id = 1_000 + (t as i64) * WRITES_PER_THREAD + i;
            assert!(all.get_by_key(&row![id]).is_some(), "lost update: id {id}");
        }
    }

    // WAL replay over the baseline reproduces the live state.
    assert_eq!(
        engine.recovered_database().expect("replays"),
        engine.snapshot()
    );
    let m = engine.metrics();
    assert_eq!(m.commits, (THREADS as u64) * (WRITES_PER_THREAD as u64));
}

#[test]
fn contended_increments_never_lose_an_update() {
    const THREADS: usize = 6;
    const INCREMENTS: i64 = 20;

    let engine = engine_with_views();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let engine = engine.clone();
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    // All threads hammer the same row through the same
                    // view: first-committer-wins + retry must serialize
                    // the read-modify-writes.
                    engine
                        .edit_view_optimistic("all", u32::MAX, |v| {
                            let cur = v.get_by_key(&row![0]).expect("counter row exists").clone();
                            let bumped = cur[3].as_int().expect("int balance") + 1;
                            v.upsert(row![0, "counter", "system", bumped])?;
                            Ok(())
                        })
                        .expect("eventually commits");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no incrementer panicked");
    }

    let base = engine.table("accounts").expect("exists");
    let counter = base.get_by_key(&row![0]).expect("counter row");
    assert_eq!(counter[3], Value::Int((THREADS as i64) * INCREMENTS));

    // Serialized outcome: commits == total increments; conflicts were
    // retried, not dropped.
    let m = engine.metrics();
    assert_eq!(m.commits, (THREADS as u64) * (INCREMENTS as u64));
    assert_eq!(
        m.retries, m.conflicts,
        "every conflict should have been retried"
    );

    assert_eq!(
        engine.recovered_database().expect("replays"),
        engine.snapshot()
    );
}

#[test]
fn mixed_view_traffic_stays_consistent_and_recoverable() {
    const ROUNDS: i64 = 15;

    let engine = engine_with_views();
    let writer = |shard: &'static str, offset: i64| {
        let view = engine.view(&format!("shard_{shard}")).expect("registered");
        thread::spawn(move || {
            for i in 0..ROUNDS {
                let id = offset + i;
                view.edit(move |v| {
                    v.upsert(row![id, shard, "writer", i])?;
                    if i % 3 == 2 {
                        v.delete_by_key(&row![id - 1]);
                    }
                    Ok(())
                })
                .expect("edit commits");
            }
        })
    };
    let reader = {
        let engine = engine.clone();
        thread::spawn(move || {
            for _ in 0..ROUNDS * 4 {
                // Readers must always see *some* consistent view state;
                // every visible row satisfies its view predicate.
                let v = engine.read_view("shard_a").expect("readable");
                assert!(v.rows().all(|r| r[1] == Value::str("a")));
            }
        })
    };

    let threads = vec![
        writer("a", 10_000),
        writer("b", 20_000),
        writer("c", 30_000),
        reader,
    ];
    for h in threads {
        h.join().expect("no thread panicked");
    }

    // The WAL text round-trip preserves recovery exactly.
    let wal = engine.wal();
    let decoded = esm_engine::Wal::decode(&wal.encode()).expect("codec round-trips");
    assert_eq!(decoded, wal);
    assert_eq!(
        decoded.replay(&engine.baseline()).expect("replays"),
        engine.snapshot()
    );
}

#[test]
fn txstore_concurrent_transactions_serialize() {
    const THREADS: i64 = 4;
    const TXNS: i64 = 10;

    let store = TxStore::new(accounts_db());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = store.clone();
            thread::spawn(move || {
                for i in 0..TXNS {
                    // Disjoint insert + contended increment in one tx.
                    store
                        .transact(u32::MAX, |tx| {
                            let table = tx.table_mut("accounts")?;
                            table.upsert(row![500 + t * TXNS + i, "tx", "txn", t])?;
                            let cur = table.get_by_key(&row![0]).expect("counter row exists")[3]
                                .as_int()
                                .expect("int");
                            table.upsert(row![0, "counter", "system", cur + 1])?;
                            Ok(())
                        })
                        .expect("transact eventually commits");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no tx thread panicked");
    }

    let db = store.db();
    let accounts = db.table("accounts").expect("exists");
    assert_eq!(
        accounts.get_by_key(&row![0]).expect("counter")[3],
        Value::Int(THREADS * TXNS)
    );
    assert_eq!(accounts.len() as i64, 4 + THREADS * TXNS);
    assert_eq!(store.wal().replay(&accounts_db()).expect("replays"), db);
    assert_eq!(store.metrics().commits, (THREADS * TXNS) as u64);
}

#[test]
fn stale_committers_lose_first_committer_wins() {
    // A stale writer whose snapshot predates an overlapping commit must
    // abort with a conflict, and the first committer's write must stand.
    let store = TxStore::new(accounts_db());
    let mut stale = store.begin();
    stale
        .table_mut("accounts")
        .expect("exists")
        .upsert(row![1, "a", "ada", 111])
        .expect("fits");
    store
        .transact(1, |tx| {
            tx.table_mut("accounts")?.upsert(row![1, "a", "ada", 999])?;
            Ok(())
        })
        .expect("first committer");
    let err = stale.commit().expect_err("second committer must lose");
    assert!(matches!(err, EngineError::Conflict { ref table, .. } if table == "accounts"));
    assert!(store
        .db()
        .table("accounts")
        .expect("exists")
        .contains(&row![1, "a", "ada", 999]));
    assert_eq!(store.metrics().conflicts, 1);
}
