//! The crash-recovery harness: the paper's equivalence claim (state
//! rebuilt by replaying the log ≡ state observed live), checked
//! *exhaustively* against simulated crashes.
//!
//! A recorded run commits ≥100 times through entangled views over a
//! durable engine while snapshotting the live database after every
//! commit. The harness then:
//!
//! * truncates the durable segment stream at **every byte offset** and
//!   asserts the recovered state equals the live snapshot at the longest
//!   durable prefix of complete records (torn tails included — a crash
//!   can stop mid-line, mid-cell, even mid-code-point);
//! * re-runs a sample of those truncations through the full filesystem
//!   path (`EngineServer::recover` on a reconstructed directory);
//! * injects duplicate and stale segment files and asserts they are
//!   skipped, never re-applied;
//! * corrupts the newest checkpoint and asserts recovery falls back to
//!   an older one, replaying more records to the same state;
//! * asserts checkpointed recovery replays strictly fewer records than
//!   replay-from-genesis would.

use std::path::{Path, PathBuf};

use esm_engine::{
    decode_segment_prefix, plan_recovery, resolve_transactions, scan_segments, Durability,
    DurabilityConfig, EngineError, EngineServer, ScannedSegment, TxStore,
};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Schema, Table};

fn baseline() -> Database {
    let accounts = Schema::build(
        &[
            ("id", esm_store::ValueType::Int),
            ("shard", esm_store::ValueType::Str),
            ("owner", esm_store::ValueType::Str),
            ("balance", esm_store::ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let audit = Schema::build(
        &[
            ("entry", esm_store::ValueType::Int),
            ("note", esm_store::ValueType::Str),
        ],
        &["entry"],
    )
    .expect("valid schema");
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(
            accounts,
            vec![
                row![0, "a", "system", 0],
                row![1, "a", "ada", 100],
                row![2, "b", "alan", 200],
            ],
        )
        .expect("valid rows"),
    )
    .expect("fresh");
    db.create_table(
        "audit",
        Table::from_rows(audit, vec![]).expect("valid rows"),
    )
    .expect("fresh");
    db
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Run `commits` single-record commits through entangled views, durably,
/// snapshotting the live database after each. Returns the engine and the
/// per-seq snapshots (`states[k]` = live state after WAL seq `k`).
///
/// The harness needs byte-deterministic segment streams, so the configs
/// here disable the background maintenance thread
/// (`maintenance_interval_ms(0)`) and this function drives the identical
/// maintenance pass synchronously after every commit.
fn recorded_run(cfg: DurabilityConfig, commits: usize) -> (EngineServer, Vec<Database>) {
    let engine = EngineServer::with_durability(baseline(), 4, Durability::Durable(cfg))
        .expect("durable engine");
    engine
        .define_view(
            "shard_a",
            "accounts",
            &ViewDef::base().select(Predicate::eq(Operand::col("shard"), Operand::val("a"))),
        )
        .expect("view compiles");
    engine
        .define_view("all_accounts", "accounts", &ViewDef::base())
        .expect("view compiles");
    engine
        .define_view("audit_log", "audit", &ViewDef::base())
        .expect("view compiles");

    let mut states = vec![engine.snapshot()];
    for i in 0..commits {
        let i = i as i64;
        match i % 4 {
            // Insert into the shard view, with codec-hostile strings.
            0 => {
                engine
                    .edit_view_optimistic("shard_a", 1, |v| {
                        v.upsert(row![100 + i, "a", format!("own\ter\n{i}"), i])?;
                        Ok(())
                    })
                    .expect("commits");
            }
            // Read-modify-write of the counter row via the whole view.
            1 => {
                engine
                    .edit_view_optimistic("all_accounts", 1, |v| {
                        let cur = v.get_by_key(&row![0]).expect("counter exists").clone();
                        let bumped = cur[3].as_int().expect("int") + 1;
                        v.upsert(row![0, "a", "system", bumped])?;
                        Ok(())
                    })
                    .expect("commits");
            }
            // Pessimistic write to the audit table.
            2 => {
                let mut v = engine.read_view("audit_log").expect("readable");
                v.upsert(row![i, format!("note \\ {i}")]).expect("fits");
                engine.write_view("audit_log", v).expect("commits");
            }
            // Delete + re-insert: exercises `-` rows and multi-row deltas.
            _ => {
                engine
                    .edit_view_optimistic("shard_a", 1, |v| {
                        v.delete_by_key(&row![100 + i - 3]);
                        v.upsert(row![200 + i, "a", "replacement", i])?;
                        Ok(())
                    })
                    .expect("commits");
            }
        }
        engine.run_maintenance().expect("maintenance pass");
        states.push(engine.snapshot());
    }
    engine.sync_wal().expect("final sync");
    (engine, states)
}

/// The segment files of `dir`, as (first_seq, bytes), in log order.
fn segment_bytes(dir: &Path) -> Vec<(u64, Vec<u8>)> {
    scan_segments(dir)
        .expect("scan")
        .iter()
        .map(|seg| {
            let name = dir.join(format!("wal-{:020}.seg", seg.first_seq));
            (seg.first_seq, std::fs::read(name).expect("read segment"))
        })
        .collect()
}

/// Truncate the concatenated segment stream at byte `cut`, returning the
/// per-segment scan a recovery pass would see.
fn truncate_stream(segments: &[(u64, Vec<u8>)], cut: usize) -> Vec<ScannedSegment> {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    for (first_seq, bytes) in segments {
        let remaining = cut.saturating_sub(consumed);
        consumed += bytes.len();
        if remaining == 0 {
            break;
        }
        let keep = remaining.min(bytes.len());
        out.push(ScannedSegment {
            first_seq: *first_seq,
            prefix: decode_segment_prefix(&bytes[..keep]),
        });
        if keep < bytes.len() {
            break;
        }
    }
    out
}

/// Apply `records[applied..]` to `db` in place, mirroring recovery
/// (every record in these runs is a complete single-record transaction,
/// so the transaction resolver is the identity here).
fn apply_records(db: &mut Database, records: &[esm_engine::WalRecord]) {
    for rec in records {
        let (name, delta) = rec.delta_op().expect("single-record transactions");
        let table = db.table(name).expect("table exists");
        let next = delta.apply(table).expect("applies");
        db.replace_table(name.to_string(), next);
    }
}

/// Write a truncated copy of the WAL directory: all checkpoint files,
/// plus the segment stream cut at `cut`.
fn write_truncated_dir(src: &Path, segments: &[(u64, Vec<u8>)], cut: usize, tag: &str) -> PathBuf {
    let dst = fresh_dir(tag);
    for entry in std::fs::read_dir(src).expect("read src") {
        let entry = entry.expect("entry");
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".ckpt")) {
            std::fs::copy(entry.path(), dst.join(&name)).expect("copy checkpoint");
        }
    }
    let mut consumed = 0usize;
    for (first_seq, bytes) in segments {
        let remaining = cut.saturating_sub(consumed);
        consumed += bytes.len();
        if remaining == 0 {
            break;
        }
        let keep = remaining.min(bytes.len());
        std::fs::write(dst.join(format!("wal-{first_seq:020}.seg")), &bytes[..keep])
            .expect("write truncated segment");
        if keep < bytes.len() {
            break;
        }
    }
    dst
}

#[test]
fn truncation_at_every_byte_recovers_the_longest_durable_prefix() {
    const COMMITS: usize = 104;
    let dir = fresh_dir("every-byte");
    // No auto-checkpoints: every record replays from genesis, so every
    // byte of the stream is a reachable crash point. Small segments force
    // rotation mid-run; group commit leaves an unsynced tail shape.
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(900)
        .group_commit(4)
        .checkpoint_every(0)
        .maintenance_interval_ms(0);
    let (engine, states) = recorded_run(cfg, COMMITS);
    assert_eq!(states.len(), COMMITS + 1);
    assert_eq!(
        *states.last().expect("nonempty"),
        engine.snapshot(),
        "recording is faithful"
    );

    let segments = segment_bytes(&dir);
    assert!(
        segments.len() >= 3,
        "rotation produced {} segments",
        segments.len()
    );
    let total: usize = segments.iter().map(|(_, b)| b.len()).sum();

    // Exhaustive: every byte offset is a crash point. Recovery is pure
    // here (plan + replay); the filesystem path is sampled below.
    let mut recovered = states[0].clone();
    let mut applied = 0usize;
    for cut in 0..=total {
        let scan = truncate_stream(&segments, cut);
        let (records, stale) = plan_recovery(0, &scan).expect("truncation never corrupts");
        assert_eq!(stale, 0, "no stale records in a pristine log");
        assert!(
            records.len() >= applied,
            "longer prefix cannot lose records (cut {cut})"
        );
        apply_records(&mut recovered, &records[applied..]);
        applied = records.len();
        assert_eq!(
            recovered, states[applied],
            "cut at byte {cut}: recovered state must equal the live state \
             after seq {applied}"
        );
    }
    assert_eq!(applied, COMMITS, "the full stream recovers every commit");

    // Sampled full-path recoveries, including both edges and a torn
    // mid-record cut for every stride.
    let mut cuts: Vec<usize> = (0..=total).step_by(97).collect();
    cuts.push(total);
    for cut in cuts {
        let scan = truncate_stream(&segments, cut);
        let (records, _) = plan_recovery(0, &scan).expect("plans");
        let k = records.len();
        let case_dir = write_truncated_dir(&dir, &segments, cut, "every-byte-case");
        let (recovered_engine, report) = EngineServer::recover(&case_dir).expect("recovers");
        assert_eq!(
            recovered_engine.snapshot(),
            states[k],
            "full path, cut {cut}"
        );
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.records_replayed as usize, k);
        assert_eq!(report.last_seq as usize, k);
        std::fs::remove_dir_all(&case_dir).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_recovery_replays_strictly_fewer_records() {
    const COMMITS: usize = 120;
    let dir = fresh_dir("checkpointed");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(600)
        .group_commit(1)
        .checkpoint_every(25)
        .maintenance_interval_ms(0);
    let (engine, states) = recorded_run(cfg.clone(), COMMITS);
    let live = engine.snapshot();
    let m = engine.metrics();
    assert!(
        m.wal.checkpoints >= 4,
        "auto-checkpoints fired: {:?}",
        m.wal
    );
    assert!(
        m.wal.segments_compacted > 0,
        "compaction dropped covered segments"
    );

    // Recovery starts from the newest checkpoint and replays strictly
    // fewer records than a genesis replay (which would need all of them).
    let (recovered_engine, report) = EngineServer::recover_with(cfg).expect("recovers");
    assert_eq!(recovered_engine.snapshot(), live);
    assert_eq!(report.last_seq as usize, COMMITS);
    assert!(report.checkpoint_seq >= 100);
    assert_eq!(
        report.records_replayed,
        report.last_seq - report.checkpoint_seq
    );
    assert!(
        report.records_replayed < report.last_seq,
        "checkpointed recovery must beat genesis: replayed {} of {}",
        report.records_replayed,
        report.last_seq
    );

    // Every byte offset of the *surviving* (post-compaction) stream is
    // still a clean crash point: recovery lands on the checkpoint state
    // or a contiguous extension of it.
    let ckpt_seq = report.checkpoint_seq;
    let segments = segment_bytes(&dir);
    let total: usize = segments.iter().map(|(_, b)| b.len()).sum();
    for cut in 0..=total {
        let scan = truncate_stream(&segments, cut);
        let (records, _stale) = plan_recovery(ckpt_seq, &scan).expect("plans");
        let k = ckpt_seq as usize + records.len();
        let mut recovered = states[ckpt_seq as usize].clone();
        apply_records(&mut recovered, &records);
        assert_eq!(recovered, states[k], "cut at byte {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_and_stale_segments_are_skipped_not_reapplied() {
    const COMMITS: usize = 60;
    let dir = fresh_dir("stale-dup");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(500)
        .checkpoint_every(25)
        .maintenance_interval_ms(0);
    let (engine, states) = recorded_run(cfg.clone(), COMMITS);
    let live = engine.snapshot();

    // A fully-stale segment: records 1..=10 re-encoded from the recorded
    // states, under a name compaction freed. A leftover pre-compaction
    // file looks exactly like this.
    let mut stale_text = String::new();
    for seq in 1..=10u64 {
        for rec in rebuild_records(&states, seq) {
            stale_text.push_str(&esm_engine::encode_framed(&rec));
        }
    }
    std::fs::write(dir.join(format!("wal-{:020}.seg", 1)), stale_text).expect("inject stale");

    // A duplicate of a live segment's content under an overlapping name:
    // the same records delivered twice. The injected file mixes codecs
    // — one text frame, then the duplicated binary frames — which the
    // per-frame decoder must take in stride.
    let segments = segment_bytes(&dir);
    let (dup_first, dup_bytes) = segments
        .iter()
        .rev()
        .find(|(_, bytes)| !bytes.is_empty())
        .expect("a 60-commit run keeps non-empty segments")
        .clone();
    assert!(dup_first > 1, "compaction keeps only late segments");
    let mut dup_file: Vec<u8> = rebuild_records(&states, dup_first - 1)
        .iter()
        .map(esm_engine::encode_framed)
        .collect::<String>()
        .into_bytes();
    dup_file.extend_from_slice(&dup_bytes);
    std::fs::write(dir.join(format!("wal-{:020}.seg", dup_first - 1)), dup_file)
        .expect("inject duplicate");

    let (recovered_engine, report) = EngineServer::recover_with(cfg).expect("recovers");
    assert_eq!(
        recovered_engine.snapshot(),
        live,
        "duplicates never re-apply"
    );
    assert!(
        report.stale_skipped >= 10,
        "stale records skipped: {report:?}"
    );
    assert_eq!(report.last_seq as usize, COMMITS);
    std::fs::remove_dir_all(&dir).ok();
}

/// Reconstruct the WAL record at `seq` by diffing consecutive recorded
/// snapshots (each commit touched exactly one table).
fn rebuild_records(states: &[Database], seq: u64) -> Vec<esm_engine::WalRecord> {
    let before = &states[seq as usize - 1];
    let after = &states[seq as usize];
    let mut recs = Vec::new();
    for name in after.table_names() {
        let delta = esm_store::Delta::between(
            before.table(name).expect("exists"),
            after.table(name).expect("exists"),
        )
        .expect("same schema");
        if !delta.is_empty() {
            recs.push(esm_engine::WalRecord::delta(seq, name, delta));
        }
    }
    recs
}

#[test]
fn multi_table_transactions_recover_all_or_nothing_at_every_byte() {
    const TXS: usize = 30;
    let dir = fresh_dir("atomic-tx");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(700)
        .group_commit(3)
        .checkpoint_every(0)
        .maintenance_interval_ms(0);
    // Every transaction touches BOTH tables, so its WAL shape is a
    // 2-record chain; a crash between the records must recover to the
    // previous transaction boundary, never to half a transaction.
    let store = TxStore::with_durability(baseline(), Durability::Durable(cfg.clone()))
        .expect("durable store");
    let mut states = vec![store.db()];
    for i in 0..TXS as i64 {
        store
            .transact(1, |tx| {
                tx.table_mut("accounts")?
                    .upsert(row![500 + i, "a", format!("tx\t{i}"), i])?;
                tx.table_mut("audit")?
                    .upsert(row![i, format!("paired {i}")])?;
                Ok(())
            })
            .expect("commits");
        states.push(store.db());
    }
    store.sync_wal().expect("final sync");
    drop(store);

    let segments = segment_bytes(&dir);
    let total: usize = segments.iter().map(|(_, b)| b.len()).sum();
    let mut mid_chain_cuts = 0usize;
    for cut in 0..=total {
        let scan = truncate_stream(&segments, cut);
        let (records, _stale) = plan_recovery(0, &scan).expect("truncation never corrupts");
        let resolved = resolve_transactions(&records).expect("resolves");
        let kept = match resolved.tail_first_seq {
            Some(first) => {
                mid_chain_cuts += 1;
                (first - 1) as usize
            }
            None => records.len(),
        };
        assert_eq!(
            kept % 2,
            0,
            "cut {cut}: recovery must land on a transaction boundary"
        );
        assert_eq!(resolved.applied.len(), kept);
        let mut db = states[0].clone();
        for (name, delta) in &resolved.applied {
            let next = delta
                .apply(db.table(name).expect("exists"))
                .expect("applies");
            db.replace_table(name.clone(), next);
        }
        assert_eq!(db, states[kept / 2], "cut {cut}");
    }
    assert!(
        mid_chain_cuts > 0,
        "some cuts must land mid-chain or the test proves nothing"
    );

    // Sampled full-path recoveries: the interrupted chain is discarded,
    // truncated off disk, and the store keeps committing.
    let mut cuts: Vec<usize> = (0..=total).step_by(211).collect();
    cuts.push(total);
    for cut in cuts {
        let scan = truncate_stream(&segments, cut);
        let (records, _) = plan_recovery(0, &scan).expect("plans");
        let resolved = resolve_transactions(&records).expect("resolves");
        let kept = match resolved.tail_first_seq {
            Some(first) => (first - 1) as usize,
            None => records.len(),
        };
        let case_dir = write_truncated_dir(&dir, &segments, cut, "atomic-tx-case");
        let case_cfg = DurabilityConfig::new(&case_dir)
            .segment_bytes(700)
            .group_commit(3)
            .checkpoint_every(0)
            .maintenance_interval_ms(0);
        let (recovered, report) = TxStore::recover(case_cfg).expect("recovers");
        assert_eq!(recovered.db(), states[kept / 2], "full path, cut {cut}");
        assert_eq!(report.last_seq as usize, kept);
        assert_eq!(
            report.tail_records_discarded as usize,
            records.len() - kept,
            "full path, cut {cut}"
        );
        recovered
            .transact(1, |tx| {
                tx.table_mut("audit")?
                    .upsert(row![9_000, "post-recovery"])?;
                Ok(())
            })
            .expect("recovered stores keep committing");
        std::fs::remove_dir_all(&case_dir).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_falls_back_when_the_newest_checkpoint_is_torn() {
    const COMMITS: usize = 50;
    let dir = fresh_dir("torn-ckpt");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(100_000) // one segment: no compaction of history
        .checkpoint_every(20)
        .maintenance_interval_ms(0);
    let (engine, _states) = recorded_run(cfg.clone(), COMMITS);
    let live = engine.snapshot();

    let clean = EngineServer::recover_with(cfg.clone()).expect("recovers");
    let newest = clean.1.checkpoint_seq;
    assert!(newest >= 40);

    // Tear the newest checkpoint (crash mid-checkpoint-write: the file
    // exists but the trailer never landed).
    let ckpt_path = dir.join(format!("checkpoint-{newest:020}.ckpt"));
    let bytes = std::fs::read(&ckpt_path).expect("read ckpt");
    std::fs::write(&ckpt_path, &bytes[..bytes.len() / 2]).expect("tear ckpt");

    let (recovered_engine, report) = EngineServer::recover_with(cfg).expect("falls back");
    assert_eq!(recovered_engine.snapshot(), live);
    assert!(report.checkpoint_seq < newest, "older checkpoint used");
    assert!(report.corrupt_checkpoints_skipped >= 1);
    assert!(
        report.records_replayed > clean.1.records_replayed,
        "falling back replays more records to reach the same state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_missing_segment_is_corruption_not_silent_data_loss() {
    const COMMITS: usize = 40;
    let dir = fresh_dir("gap");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(400)
        .checkpoint_every(0)
        .maintenance_interval_ms(0);
    let (_engine, _states) = recorded_run(cfg.clone(), COMMITS);

    let segments = segment_bytes(&dir);
    assert!(segments.len() >= 3);
    // Delete a middle segment: the log now has a hole that no crash can
    // produce.
    let (victim, _) = segments[1];
    std::fs::remove_file(dir.join(format!("wal-{victim:020}.seg"))).expect("remove");
    match EngineServer::recover_with(cfg) {
        Err(EngineError::WalCorrupt(msg)) => {
            assert!(msg.contains("gap"), "useful diagnostics: {msg}")
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_engines_keep_committing_durably() {
    const COMMITS: usize = 30;
    let dir = fresh_dir("continue");
    let cfg = DurabilityConfig::new(&dir)
        .checkpoint_every(0)
        .maintenance_interval_ms(0);
    let (_engine, states) = recorded_run(cfg.clone(), COMMITS);

    // First recovery, then new traffic, then a second recovery: the
    // durable log is a continuous history across restarts.
    let (second, report) = EngineServer::recover_with(cfg.clone()).expect("recovers");
    assert_eq!(second.snapshot(), states[COMMITS]);
    second
        .define_view("all_accounts", "accounts", &ViewDef::base())
        .expect("views re-register after recovery");
    second
        .edit_view_optimistic("all_accounts", 1, |v| {
            v.upsert(row![9_999, "z", "post-recovery", 1])?;
            Ok(())
        })
        .expect("commits");
    assert_eq!(second.wal().records()[0].seq, report.last_seq + 1);
    second.sync_wal().expect("syncs");
    let live = second.snapshot();

    let (third, report2) = EngineServer::recover_with(cfg).expect("recovers again");
    assert_eq!(third.snapshot(), live);
    assert_eq!(report2.last_seq, report.last_seq + 1);
    assert!(third
        .snapshot()
        .table("accounts")
        .expect("exists")
        .contains(&row![9_999, "z", "post-recovery", 1]));
    // And the recovered state still satisfies the in-memory replay law.
    assert_eq!(
        third.recovered_database().expect("replays"),
        third.snapshot()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_and_durable_views_of_state_agree() {
    // The shadow state a checkpoint would serialize always equals the
    // engine's own committed snapshot (the entangled-consistency law for
    // the durability layer).
    let dir = fresh_dir("shadow");
    let cfg = DurabilityConfig::new(&dir)
        .checkpoint_every(7)
        .maintenance_interval_ms(0);
    let (engine, states) = recorded_run(cfg.clone(), 23);
    let ckpt = engine.checkpoint().expect("checkpoints").expect("durable");
    assert_eq!(ckpt, 23);
    let (recovered_engine, report) = EngineServer::recover_with(cfg).expect("recovers");
    assert_eq!(report.checkpoint_seq, 23);
    assert_eq!(report.records_replayed, 0, "checkpoint covers everything");
    assert_eq!(recovered_engine.snapshot(), states[23]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_text_and_binary_segment_directories_recover_cleanly() {
    const COMMITS: usize = 60;
    let dir = fresh_dir("mixed-codec");
    let cfg = DurabilityConfig::new(&dir)
        .segment_bytes(700)
        .checkpoint_every(0)
        .maintenance_interval_ms(0);
    let (engine, states) = recorded_run(cfg.clone(), COMMITS);
    let live = engine.snapshot();
    drop(engine);

    // Rewrite the directory into the shape an upgraded deployment has:
    // the older half of the segments in the legacy text framing, one
    // segment that switches codec mid-file (the writer was restarted
    // with the binary codec mid-segment), and the rest binary as
    // written. Record content is rebuilt from the recorded states, so
    // the stream stays seq-for-seq identical.
    let segments = segment_bytes(&dir);
    assert!(
        segments.len() >= 4,
        "need a multi-segment run, got {}",
        segments.len()
    );
    let half = segments.len() / 2;
    for (i, (first_seq, _)) in segments.iter().enumerate() {
        let last_seq = segments
            .get(i + 1)
            .map_or(COMMITS as u64, |(next, _)| next - 1);
        if i < half {
            let mut text = String::new();
            for seq in *first_seq..=last_seq {
                for rec in rebuild_records(&states, seq) {
                    text.push_str(&esm_engine::encode_framed(&rec));
                }
            }
            std::fs::write(dir.join(format!("wal-{first_seq:020}.seg")), text)
                .expect("rewrite text segment");
        } else if i == half {
            let mid = (*first_seq + last_seq) / 2;
            let mut bytes = Vec::new();
            for seq in *first_seq..=last_seq {
                for rec in rebuild_records(&states, seq) {
                    if seq <= mid {
                        bytes.extend_from_slice(esm_engine::encode_framed(&rec).as_bytes());
                    } else {
                        bytes.extend_from_slice(&esm_engine::encode_framed_binary(&rec));
                    }
                }
            }
            std::fs::write(dir.join(format!("wal-{first_seq:020}.seg")), bytes)
                .expect("rewrite mixed segment");
        }
    }

    // The mixed directory recovers to exactly the live state.
    let (recovered, report) = EngineServer::recover_with(cfg).expect("mixed recovery");
    assert_eq!(recovered.snapshot(), live, "mixed codecs lose nothing");
    assert_eq!(report.records_replayed as usize, COMMITS);
    assert_eq!(report.last_seq as usize, COMMITS);
    drop(recovered);

    // And truncation at every byte of the mixed stream still recovers
    // the longest durable prefix — text frames, binary frames, and the
    // codec boundary are all torn through.
    let mixed = segment_bytes(&dir);
    let total: usize = mixed.iter().map(|(_, b)| b.len()).sum();
    let mut recovered_db = states[0].clone();
    let mut applied = 0usize;
    for cut in 0..=total {
        let scan = truncate_stream(&mixed, cut);
        let (records, stale) = plan_recovery(0, &scan).expect("truncation never corrupts");
        assert_eq!(stale, 0, "no stale records in a pristine mixed log");
        assert!(
            records.len() >= applied,
            "longer prefix cannot lose records (cut {cut})"
        );
        apply_records(&mut recovered_db, &records[applied..]);
        applied = records.len();
        assert_eq!(
            recovered_db, states[applied],
            "cut at byte {cut}: recovered state must equal the live state \
             after seq {applied}"
        );
    }
    assert_eq!(applied, COMMITS, "the full mixed stream recovers all");
    std::fs::remove_dir_all(&dir).ok();
}
