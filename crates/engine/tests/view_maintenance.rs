//! The incremental/recompute equivalence law for materialized views.
//!
//! `read_view` serves a maintained window (deltas folded in since the
//! last read, shard-pruned under key bounds); the law says that after
//! *any* sequence of commits, shard splits and merges, that window
//! equals a fresh lens `get` over the assembled base — the two read
//! paths may never be observably different. The proptests drive random
//! op sequences against both the unsharded and the sharded engine,
//! compare every registered view against recomputation after every op,
//! and finish with a steady-state phase asserting that repeated reads
//! under no writes apply no deltas and trigger no rebuilds.

use proptest::prelude::*;

use esm_engine::{EngineServer, ShardRouter, ShardedEngineServer};
use esm_relational::ViewDef;
use esm_store::{row, Database, Operand, Predicate, Row, Schema, Table, Value, ValueType};

const KEYS: i64 = 80;
const GROUPS: i64 = 5;

fn seed_db() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("grp", ValueType::Str),
            ("val", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..KEYS / 2)
        .map(|i| {
            let id = i * 2;
            row![id, format!("g{}", id % GROUPS), id * 3]
        })
        .collect();
    let mut db = Database::new();
    db.create_table("t", Table::from_rows(schema, rows).expect("valid rows"))
        .expect("fresh");
    db
}

/// Every stage family, including key-bounded selects (pruned on the
/// sharded engine) and multi-stage pipelines.
fn view_defs() -> Vec<(&'static str, ViewDef)> {
    vec![
        ("all", ViewDef::base()),
        (
            "low",
            ViewDef::base().select(Predicate::lt(Operand::col("id"), Operand::val(30))),
        ),
        (
            "grp1",
            ViewDef::base().select(Predicate::eq(Operand::col("grp"), Operand::val("g1"))),
        ),
        (
            "teams",
            ViewDef::base()
                .project(&["id", "grp"], &[("val", Value::Int(0))])
                .rename(&[("grp", "team")]),
        ),
        (
            "band",
            ViewDef::base()
                .select(Predicate::ge(Operand::col("id"), Operand::val(20)))
                .select(Predicate::lt(Operand::col("id"), Operand::val(60)))
                .project(&["id", "val"], &[("grp", Value::str("gx"))]),
        ),
    ]
}

/// The law's right-hand side: a fresh compile + whole-base lens `get`.
fn recompute(def: &ViewDef, base: &Table) -> Table {
    def.compile(base).expect("recompiles").get(base)
}

/// One scripted operation, decoded from an integer triple so the
/// vendored proptest needs only range + tuple strategies.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { id: i64, grp: i64, val: i64 },
    Delete { id: i64 },
    Transfer { a: i64, b: i64 },
    Split { at: i64 },
    Merge { left: i64 },
}

fn decode(kind: u8, a: i64, b: i64) -> Op {
    let id = a.rem_euclid(KEYS);
    match kind {
        0..=4 => Op::Upsert {
            id,
            grp: b.rem_euclid(GROUPS),
            val: b,
        },
        5 | 6 => Op::Delete { id },
        7 => Op::Transfer {
            a: id,
            b: (id + KEYS / 2).rem_euclid(KEYS),
        },
        8 => Op::Split { at: id },
        _ => Op::Merge { left: a },
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..10, 0i64..10_000, 0i64..10_000), 1..30)
}

proptest! {
    #[test]
    fn unsharded_views_equal_fresh_recompute(ops in arb_ops()) {
        let engine = EngineServer::new(seed_db());
        let defs = view_defs();
        for (name, def) in &defs {
            engine.define_view(*name, "t", def).expect("compiles");
        }
        let registration_rebuilds = engine.metrics().view.rebuilds;

        for &(kind, a, b) in &ops {
            match decode(kind, a, b) {
                Op::Upsert { id, grp, val } => {
                    engine
                        .edit_view_optimistic("all", 4, move |v| {
                            v.upsert(row![id, format!("g{grp}"), val])?;
                            Ok(())
                        })
                        .expect("commits");
                }
                // The unsharded engine has no topology ops; everything
                // else degrades to a delete.
                Op::Delete { id } | Op::Transfer { a: id, .. } | Op::Split { at: id }
                | Op::Merge { left: id } => {
                    engine
                        .edit_view_optimistic("all", 4, move |v| {
                            v.delete_by_key(&row![id.rem_euclid(KEYS)]);
                            Ok(())
                        })
                        .expect("commits");
                }
            }
            let base = engine.table("t").expect("exists");
            for (name, def) in &defs {
                prop_assert_eq!(
                    engine.read_view(name).expect("readable"),
                    recompute(def, &base),
                    "view {} diverged from recomputation", name
                );
            }
        }

        // Steady state: with no splits possible, maintenance never once
        // re-ran a whole-base lens get after registration…
        prop_assert_eq!(engine.metrics().view.rebuilds, registration_rebuilds);
        // …and quiescent re-reads apply nothing.
        let before = engine.metrics().view.deltas_applied;
        for (name, _) in &defs {
            engine.read_view(name).expect("readable");
        }
        prop_assert_eq!(engine.metrics().view.deltas_applied, before);
    }

    #[test]
    fn sharded_views_equal_fresh_recompute(ops in arb_ops()) {
        let engine = ShardedEngineServer::with_router(
            seed_db(),
            ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
        )
        .expect("sharded engine");
        let defs = view_defs();
        for (name, def) in &defs {
            engine.define_view(*name, "t", def).expect("compiles");
        }

        for &(kind, a, b) in &ops {
            match decode(kind, a, b) {
                Op::Upsert { id, grp, val } => {
                    engine
                        .transact_keys(&[row![id]], 4, move |db| {
                            db.table_mut("t")?.upsert(row![id, format!("g{grp}"), val])?;
                            Ok(())
                        })
                        .expect("commits");
                }
                Op::Delete { id } => {
                    engine
                        .transact_keys(&[row![id]], 4, move |db| {
                            db.table_mut("t")?.delete_by_key(&row![id]);
                            Ok(())
                        })
                        .expect("commits");
                }
                Op::Transfer { a, b } => {
                    // Touches two shards: exercises 2PC chains in the
                    // per-shard drain.
                    engine
                        .transact_keys(&[row![a], row![b]], 4, move |db| {
                            let t = db.table_mut("t")?;
                            t.upsert(row![a, "g0", -1])?;
                            t.upsert(row![b, "g1", 1])?;
                            Ok(())
                        })
                        .expect("commits");
                }
                Op::Split { at } => {
                    // Splitting at an existing boundary is a scripted
                    // no-op, not a failure.
                    let _ = engine.split_shard(row![at]);
                }
                Op::Merge { left } => {
                    if engine.shard_count() > 1 {
                        let left = (left.unsigned_abs() as usize) % (engine.shard_count() - 1);
                        engine.merge_shards(left).expect("adjacent shards merge");
                    }
                }
            }
            let snap = engine.snapshot();
            let base = snap.table("t").expect("exists");
            for (name, def) in &defs {
                prop_assert_eq!(
                    engine.read_view(name).expect("readable"),
                    recompute(def, base),
                    "view {} diverged from recomputation", name
                );
            }
        }

        // Steady state: the topology is now stable, so repeated reads
        // rebuild nothing and apply nothing.
        let before = engine.metrics().view;
        for _ in 0..3 {
            for (name, _) in &defs {
                engine.read_view(name).expect("readable");
            }
        }
        let after = engine.metrics().view;
        prop_assert_eq!(after.rebuilds, before.rebuilds);
        prop_assert_eq!(after.deltas_applied, before.deltas_applied);
        // The key-bounded views pruned shards along the way (the seed
        // router has 4 shards and `low` touches at most two).
        prop_assert!(after.shards_pruned > 0);
    }
}
