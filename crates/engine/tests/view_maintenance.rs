//! The incremental/recompute equivalence law for materialized views.
//!
//! `read_view` serves a maintained window (deltas folded in since the
//! last read, shard-pruned under key bounds); the law says that after
//! *any* sequence of commits, shard splits and merges, that window
//! equals a fresh lens `get` over the assembled base — the two read
//! paths may never be observably different.
//!
//! The law body lives in [`esm_engine::testkit`] and is written against
//! `&dyn Engine`, so **one code path** checks every implementation: the
//! proptests here drive it against [`EngineServer`] and
//! [`ShardedEngineServer`]; the `esm-net` crate's suite drives the very
//! same function against a `RemoteEngine` over a loopback socket. A
//! sharded-only proptest keeps the topology churn (splits/merges are
//! operator surface, not `Engine` surface).

use proptest::prelude::*;

use esm_engine::testkit::{
    self, check_view_maintenance, decode_op, recompute, seed_db, view_defs, Op, KEYS,
};
use esm_engine::{Engine, EngineServer, ShardRouter, ShardedEngineServer};
use esm_store::row;

fn arb_ops() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..10, 0i64..10_000, 0i64..10_000), 1..30)
}

proptest! {
    #[test]
    fn unsharded_views_equal_fresh_recompute(ops in arb_ops()) {
        let engine = EngineServer::new(seed_db());
        check_view_maintenance(&engine, &ops);
    }

    #[test]
    fn sharded_views_equal_fresh_recompute(ops in arb_ops()) {
        let engine = ShardedEngineServer::with_router(
            seed_db(),
            ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
        )
        .expect("sharded engine");
        check_view_maintenance(&engine, &ops);
        // The key-bounded views pruned shards along the way (the seed
        // router has 4 shards and `low` touches at most two).
        prop_assert!(Engine::metrics(&engine).expect("metrics").view.shards_pruned > 0);
    }

    /// Topology churn stays a sharded-only concern: interleave the
    /// scripted ops with online splits and merges and re-check the law
    /// after every step (epoch bumps invalidate windows; reads must
    /// rebuild correctly).
    #[test]
    fn sharded_views_survive_splits_and_merges(ops in arb_ops()) {
        let engine = ShardedEngineServer::with_router(
            seed_db(),
            ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
        )
        .expect("sharded engine");
        let defs = view_defs();
        for (name, def) in &defs {
            engine.define_view(*name, "t", def).expect("compiles");
        }

        for (i, &(kind, a, b)) in ops.iter().enumerate() {
            match kind {
                8 => {
                    // Splitting at an existing boundary is a scripted
                    // no-op, not a failure.
                    let _ = engine.split_shard(row![a.rem_euclid(KEYS)]);
                }
                9 => {
                    if engine.shard_count() > 1 {
                        let left =
                            (a.unsigned_abs() as usize) % (engine.shard_count() - 1);
                        engine.merge_shards(left).expect("adjacent shards merge");
                    }
                }
                _ => testkit::apply_op(&engine, decode_op(kind % 8, a, b)),
            }
            let snap = engine.snapshot();
            let base = snap.table("t").expect("exists");
            for (name, def) in &defs {
                prop_assert_eq!(
                    Engine::read_view(&engine, name).expect("readable"),
                    recompute(def, base),
                    "view {} diverged from recomputation at op {}", name, i
                );
            }
        }

        // Steady state: the topology is now stable, so repeated reads
        // rebuild nothing and apply nothing.
        let before = Engine::metrics(&engine).expect("metrics").view;
        for _ in 0..3 {
            for (name, _) in &defs {
                Engine::read_view(&engine, name).expect("readable");
            }
        }
        let after = Engine::metrics(&engine).expect("metrics").view;
        prop_assert_eq!(after.rebuilds, before.rebuilds);
        prop_assert_eq!(after.deltas_applied, before.deltas_applied);
    }

    /// The conformance suite also runs through `dyn Engine` handles —
    /// the exact shape the network server holds.
    #[test]
    fn dyn_engine_handles_satisfy_the_law(ops in arb_ops()) {
        let concrete = EngineServer::new(seed_db());
        let dynamic: esm_engine::ArcEngine = concrete.as_engine();
        check_view_maintenance(&*dynamic, &ops);
    }
}

/// Scripted (non-proptest) run so a plain `cargo test` exercises every
/// op shape deterministically on both hosts.
#[test]
fn scripted_ops_cover_all_shapes() {
    let script: Vec<(u8, i64, i64)> = (0..40u8)
        .map(|i| (i % 10, i as i64 * 7, i as i64 * 13))
        .collect();
    let unsharded = EngineServer::new(seed_db());
    check_view_maintenance(&unsharded, &script);
    let sharded = ShardedEngineServer::with_router(
        seed_db(),
        ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
    )
    .expect("sharded engine");
    check_view_maintenance(&sharded, &script);
}

/// The trait-level concurrency oracle on both in-process hosts: racing
/// optimistic editors over clones of one engine must lose no update.
#[test]
fn concurrent_editors_match_the_oracle_in_process() {
    for sharded in [false, true] {
        let engine: esm_engine::ArcEngine = if sharded {
            ShardedEngineServer::with_router(
                seed_db(),
                ShardRouter::uniform_int(4, 0, KEYS).expect("router"),
            )
            .expect("sharded engine")
            .as_engine()
        } else {
            EngineServer::new(seed_db()).as_engine()
        };
        let clients: Vec<esm_engine::ArcEngine> = (0..8).map(|_| engine.as_engine()).collect();
        let total = testkit::check_concurrent_edits(clients, 12);
        assert_eq!(total, 8 * 12);
    }
}

/// Decoded ops stay within the documented families.
#[test]
fn op_decoding_is_total() {
    for kind in 0..=255u8 {
        match decode_op(kind, 123, 456) {
            Op::Upsert { id, .. } | Op::Delete { id } | Op::Transfer { a: id, .. } => {
                assert!((0..KEYS).contains(&id));
            }
        }
    }
}
