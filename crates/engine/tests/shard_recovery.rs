//! Sharded crash recovery: coordinator deaths between 2PC phases must
//! recover **all-or-nothing on every shard**, and rebalance debris
//! (orphan shard directories, rows stranded outside their range) must
//! be repaired, not replayed.
//!
//! The coordinator's [`FailPoint`]s inject the two dangerous crash
//! windows:
//!
//! * after every participant prepared (fsynced) but before any
//!   resolution — recovery must **presume abort** on every shard (no
//!   client was ever acknowledged);
//! * after a *subset* of participants resolved commit — recovery must
//!   **finish the commit** on every shard (the commit point passed).

use std::path::PathBuf;

use esm_engine::{
    DurabilityConfig, DurableWal, EngineError, FailPoint, ShardRouter, ShardedEngineServer,
    WalRecord,
};
use esm_store::{row, Database, Delta, Row, Schema, Table, ValueType};

const SHARDS: usize = 3;
const RANGE: i64 = 3000;

fn baseline() -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..RANGE)
        .step_by(100)
        .map(|i| row![i, format!("o{i}"), 100])
        .collect();
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh");
    db
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-shard-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_engine(dir: &PathBuf) -> ShardedEngineServer {
    ShardedEngineServer::with_durability(
        baseline(),
        ShardRouter::uniform_int(SHARDS, 0, RANGE).expect("router"),
        // Deterministic tests: strongest durability, no background
        // thread.
        DurabilityConfig::new(dir)
            .group_commit(1)
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .expect("durable sharded engine")
}

/// Move 7 units from `from` to `to` (distinct shards → 2PC), with crash
/// injection.
fn transfer(
    engine: &ShardedEngineServer,
    from: i64,
    to: i64,
    failpoint: FailPoint,
) -> Result<esm_engine::CommitReceipt, EngineError> {
    engine.transact_keys_failpoint(&[row![from], row![to]], 1, failpoint, |db| {
        let t = db.table_mut("accounts")?;
        let f = t.get_by_key(&row![from]).expect("exists")[2]
            .as_int()
            .expect("int");
        let g = t.get_by_key(&row![to]).expect("exists")[2]
            .as_int()
            .expect("int");
        t.upsert(row![from, format!("o{from}"), f - 7])?;
        t.upsert(row![to, format!("o{to}"), g + 7])?;
        Ok(())
    })
}

#[test]
fn durable_cross_shard_commits_survive_restart() {
    let dir = fresh_dir("roundtrip");
    let engine = durable_engine(&dir);
    // A mix of single-shard and cross-shard traffic.
    for i in 0..6 {
        engine
            .transact_keys(&[row![i * 100]], 1, |db| {
                db.table_mut("accounts")?
                    .upsert(row![i * 100 + 1, "fresh", i])?;
                Ok(())
            })
            .expect("fast path commits");
    }
    transfer(&engine, 0, 2900, FailPoint::None).expect("2pc commits");
    transfer(&engine, 1500, 200, FailPoint::None).expect("2pc commits");
    engine.sync_wal().expect("syncs");
    let live = engine.snapshot();
    let m = engine.metrics();
    assert_eq!(m.shard.cross_shard_commits, 2);
    assert_eq!(m.shard.single_shard_commits, 6);
    drop(engine);

    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(recovered.snapshot(), live);
    assert_eq!(report.shards.len(), SHARDS);
    assert_eq!(report.committed_in_doubt + report.aborted_in_doubt, 0);
    // The recovered engine keeps serving both paths.
    transfer(&recovered, 0, 2900, FailPoint::None).expect("2pc after recovery");
    assert_eq!(
        recovered.recovered_database().expect("replays"),
        recovered.snapshot()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_crash_after_prepare_presumes_abort_on_every_shard() {
    let dir = fresh_dir("after-prepare");
    let engine = durable_engine(&dir);
    transfer(&engine, 100, 2800, FailPoint::None).expect("a clean transfer first");
    engine.sync_wal().expect("syncs");
    let before = engine.snapshot();

    let err = transfer(&engine, 200, 2700, FailPoint::AfterPrepare).unwrap_err();
    assert!(matches!(err, EngineError::Io(msg) if msg.contains("failpoint")));
    drop(engine); // the coordinator "process" dies here

    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    // Both participants were in doubt; no shard held a commit
    // resolution, so the transaction aborts everywhere — the state is
    // exactly the pre-crash acknowledged state.
    assert_eq!(report.aborted_in_doubt, 2, "{report:?}");
    assert_eq!(report.committed_in_doubt, 0);
    assert_eq!(recovered.snapshot(), before, "all-or-nothing: nothing");
    assert_eq!(recovered.metrics().shard.recovery_aborts, 2);

    // The logs self-healed: a second recovery has nothing in doubt, and
    // the aborted keys are writable again.
    drop(recovered);
    let (again, report2) = ShardedEngineServer::recover(&dir).expect("recovers again");
    assert_eq!(report2.committed_in_doubt + report2.aborted_in_doubt, 0);
    transfer(&again, 200, 2700, FailPoint::None).expect("keys are free");
    assert_eq!(
        again.recovered_database().expect("replays"),
        again.snapshot()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_crash_after_partial_resolve_commits_on_every_shard() {
    let dir = fresh_dir("after-resolve");
    let engine = durable_engine(&dir);
    let before = engine.snapshot();

    // The first participant (lowest shard index) writes its commit
    // resolution; the coordinator dies before the second.
    let err = transfer(&engine, 300, 2600, FailPoint::AfterResolves(1)).unwrap_err();
    assert!(matches!(err, EngineError::Io(msg) if msg.contains("failpoint")));
    drop(engine);

    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    // One shard held the commit verdict: the in-doubt remainder commits
    // too — the transfer is complete on BOTH shards.
    assert_eq!(report.committed_in_doubt, 1, "{report:?}");
    assert_eq!(report.aborted_in_doubt, 0);
    let t = recovered.table("accounts").expect("exists");
    assert_eq!(t.get_by_key(&row![300]).expect("row")[2], 93.into());
    assert_eq!(t.get_by_key(&row![2600]).expect("row")[2], 107.into());
    assert_ne!(recovered.snapshot(), before, "all-or-nothing: everything");
    assert_eq!(
        recovered.recovered_database().expect("replays"),
        recovered.snapshot()
    );

    // Crash with *zero* resolutions behaves like after-prepare: abort.
    let err = transfer(&recovered, 400, 2500, FailPoint::AfterResolves(0)).unwrap_err();
    assert!(matches!(err, EngineError::Io(_)));
    let pre_crash = recovered
        .table("accounts")
        .expect("exists")
        .get_by_key(&row![400])
        .expect("row")
        .clone();
    drop(recovered);
    let (again, report2) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(report2.aborted_in_doubt, 2);
    assert_eq!(
        again
            .table("accounts")
            .expect("exists")
            .get_by_key(&row![400])
            .expect("row"),
        &pre_crash
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_shard_resolutions_are_durable_before_acknowledgement() {
    // With a lazy group-commit cadence an acknowledged 2PC commit could
    // otherwise leave one shard's resolution in an unsynced tail; a
    // peer checkpoint could then compact away the only other copy of
    // the verdict and a crash would flip the tail shard to presumed
    // abort. The coordinator therefore fsyncs every resolution before
    // returning: drop the engine with *no* explicit sync and the
    // transfer must still recover complete on both shards.
    let dir = fresh_dir("resolve-durable");
    let engine = ShardedEngineServer::with_durability(
        baseline(),
        ShardRouter::uniform_int(SHARDS, 0, RANGE).expect("router"),
        DurabilityConfig::new(&dir)
            .group_commit(64) // nothing syncs unless someone insists
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .expect("durable sharded engine");
    transfer(&engine, 100, 2800, FailPoint::None).expect("2pc commits");
    drop(engine); // crash: no sync_wal, no checkpoint

    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(
        report.committed_in_doubt + report.aborted_in_doubt,
        0,
        "every resolution was already durable: {report:?}"
    );
    let t = recovered.table("accounts").expect("exists");
    assert_eq!(t.get_by_key(&row![100]).expect("row")[2], 93.into());
    assert_eq!(t.get_by_key(&row![2800]).expect("row")[2], 107.into());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoints_defer_while_a_peer_is_in_doubt() {
    // A shard checkpoint compacts history — including, potentially, the
    // `!resolve commit` evidence a *peer's* recovery votes with. While
    // any shard holds in-doubt 2PC state, no shard may checkpoint.
    let dir = fresh_dir("ckpt-gate");
    let engine = ShardedEngineServer::with_durability(
        baseline(),
        ShardRouter::uniform_int(SHARDS, 0, RANGE).expect("router"),
        DurabilityConfig::new(&dir)
            .group_commit(1)
            .checkpoint_every(1) // eager: every record is checkpoint-worthy
            .maintenance_interval_ms(0),
    )
    .expect("durable sharded engine");
    transfer(&engine, 100, 2800, FailPoint::None).expect("2pc commits");
    let genesis = SHARDS as u64;
    engine.run_maintenance().expect("maintenance runs");
    let after_clean = engine.metrics().wal.checkpoints;
    assert!(after_clean > genesis, "clean shards checkpoint freely");

    // Now strand an in-doubt transaction on two shards…
    let err = transfer(&engine, 200, 2700, FailPoint::AfterPrepare).unwrap_err();
    assert!(matches!(err, EngineError::Io(_)));
    // …make the third, uninvolved shard checkpoint-due…
    engine
        .transact_keys(&[row![1500]], 1, |db| {
            db.table_mut("accounts")?.upsert(row![1500, "mid", 1])?;
            Ok(())
        })
        .expect("the uninvolved shard keeps committing");
    // …and maintenance must refuse to checkpoint ANY shard (the
    // uninvolved-but-due one included), while the explicit path errors.
    engine.run_maintenance().expect("maintenance still runs");
    assert_eq!(
        engine.metrics().wal.checkpoints,
        after_clean,
        "no checkpoint while a peer is in doubt"
    );
    assert!(matches!(
        engine.checkpoint(),
        Err(EngineError::Io(msg)) if msg.contains("refused")
    ));
    drop(engine);

    // Recovery settles the doubt (presumed abort) and checkpointing
    // resumes.
    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(report.aborted_in_doubt, 2);
    recovered.run_maintenance().expect("maintenance runs");
    assert!(recovered.checkpoint().expect("checkpoints").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn splits_survive_restart_and_debris_is_repaired() {
    let dir = fresh_dir("rebalance");
    let engine = durable_engine(&dir);
    let new_index = engine.split_shard(row![500]).expect("splits");
    assert_eq!(new_index, 1);
    assert_eq!(engine.shard_count(), SHARDS + 1);
    engine
        .transact_keys(&[row![700]], 1, |db| {
            db.table_mut("accounts")?.upsert(row![700, "post", 1])?;
            Ok(())
        })
        .expect("commits to the new shard");
    engine.sync_wal().expect("syncs");
    let live = engine.snapshot();
    drop(engine);

    let (recovered, report) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(recovered.shard_count(), SHARDS + 1);
    assert_eq!(recovered.snapshot(), live);
    assert_eq!(report.repaired_rows, 0);
    assert_eq!(report.orphan_dirs_swept, 0);
    drop(recovered);

    // Debris injection. (a) An orphan shard directory — a split that
    // crashed before its topology rewrite.
    let orphan_cfg = DurabilityConfig::new(dir.join("shard-99"));
    drop(DurableWal::create(orphan_cfg, &baseline()).expect("orphan dir"));
    // (b) A row stranded outside shard 0's range [0, 500) — a rebalance
    // interrupted between moving rows and pruning the donor.
    {
        let shard0_cfg = DurabilityConfig::new(dir.join("shard-0"))
            .checkpoint_every(0)
            .maintenance_interval_ms(0);
        let (mut wal, _db, rep) = DurableWal::open(shard0_cfg).expect("opens shard 0");
        wal.append(&WalRecord::delta(
            rep.last_seq + 1,
            "accounts",
            Delta {
                inserted: vec![row![2999, "stray", 1]],
                deleted: vec![],
            },
        ))
        .expect("stray append");
        wal.sync().expect("syncs");
    }

    let (healed, report2) = ShardedEngineServer::recover(&dir).expect("recovers");
    assert_eq!(report2.orphan_dirs_swept, 1, "{report2:?}");
    assert_eq!(report2.repaired_rows, 1, "{report2:?}");
    assert!(!dir.join("shard-99").exists());
    // The stray row is pruned: shard 2 owns key 2999 and never had it.
    assert_eq!(healed.snapshot(), live);
    assert_eq!(
        healed.recovered_database().expect("replays"),
        healed.snapshot()
    );
    std::fs::remove_dir_all(&dir).ok();
}
