//! WAL-shipping replication, failover promotion, and the rebalance
//! policy, end to end over real directories:
//!
//! * a replica fed **every byte prefix** of the primary's log (grown
//!   one byte at a time through the incremental apply path) always
//!   serves exactly the primary's settled prefix — the crash-recovery
//!   equivalence, restated for a follower that never crashes;
//! * a proptest re-runs that equivalence over random workloads shipped
//!   in random chunk sizes;
//! * killing the primary mid-2PC and promoting the replica keeps every
//!   acknowledged commit and settles in-doubt transactions
//!   all-or-nothing (presume abort before the commit point, finish the
//!   commit after it);
//! * replicas reject writes with a `NotPrimary` redirect and
//!   `most_caught_up` elects the replica with the longest applied log;
//! * replication lag surfaces in `MetricsSnapshot`, the telemetry
//!   gauges and the Prometheus rendering;
//! * a skewed commit stream drives the policy to auto-split until
//!   per-shard commit rates level out within the configured skew.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use esm_engine::repl::{most_caught_up, PolicyAction};
use esm_engine::{
    decode_segment_prefix, render_prometheus, DirWalSource, DurabilityConfig, Engine, EngineError,
    FailPoint, PolicyConfig, RebalancePolicy, ReplicaConfig, ReplicaEngine, ShardRouter,
    ShardedEngineServer,
};
use esm_store::{row, Database, Delta, Row, Schema, Table, ValueType};

const RANGE: i64 = 4000;

fn baseline(step: usize) -> Database {
    let schema = Schema::build(
        &[
            ("id", ValueType::Int),
            ("owner", ValueType::Str),
            ("balance", ValueType::Int),
        ],
        &["id"],
    )
    .expect("valid schema");
    let rows: Vec<Row> = (0..RANGE)
        .step_by(step)
        .map(|i| row![i, format!("own\ter\n{i}"), 100])
        .collect();
    let mut db = Database::new();
    db.create_table(
        "accounts",
        Table::from_rows(schema, rows).expect("valid rows"),
    )
    .expect("fresh");
    db
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable sharded primary: strongest acks (`group_commit = 1`), no
/// background thread, no checkpoint cadence — byte-deterministic logs.
fn durable(dir: &Path, shards: usize) -> ShardedEngineServer {
    ShardedEngineServer::with_durability(
        baseline(100),
        ShardRouter::uniform_int(shards, 0, RANGE).expect("router"),
        DurabilityConfig::new(dir)
            .group_commit(1)
            .checkpoint_every(0)
            .maintenance_interval_ms(0),
    )
    .expect("durable sharded engine")
}

/// One acknowledged single-shard commit: bump `key`'s balance by `by`.
fn bump(engine: &ShardedEngineServer, key: i64, by: i64) {
    engine
        .transact_keys(&[row![key]], 1, |db| {
            let t = db.table_mut("accounts")?;
            let cur = t
                .get_by_key(&row![key])
                .map(|r| r[2].as_int().expect("int"))
                .unwrap_or(0);
            t.upsert(row![key, format!("own\ter\n{key}"), cur + by])?;
            Ok(())
        })
        .expect("acked commit");
}

/// Move 7 units between two keys (distinct shards → 2PC), with crash
/// injection.
fn transfer(
    engine: &ShardedEngineServer,
    from: i64,
    to: i64,
    failpoint: FailPoint,
) -> Result<esm_engine::CommitReceipt, EngineError> {
    engine.transact_keys_failpoint(&[row![from], row![to]], 1, failpoint, |db| {
        let t = db.table_mut("accounts")?;
        let f = t.get_by_key(&row![from]).expect("exists")[2]
            .as_int()
            .expect("int");
        let g = t.get_by_key(&row![to]).expect("exists")[2]
            .as_int()
            .expect("int");
        t.upsert(row![from, format!("own\ter\n{from}"), f - 7])?;
        t.upsert(row![to, format!("own\ter\n{to}"), g + 7])?;
        Ok(())
    })
}

/// A replica over `source_dir`, polling disabled — tests drive
/// `sync_once` deterministically.
fn manual_replica(source_dir: &Path, mirror: &Path, primary_addr: &str) -> ReplicaEngine {
    ReplicaEngine::bootstrap(
        Arc::new(DirWalSource::new(source_dir, primary_addr)),
        ReplicaConfig::new(mirror).poll_interval_ms(0),
    )
    .expect("replica bootstraps")
}

/// The single shard's segment files of a 1-shard primary, as
/// `(file_name, bytes)` in log order.
fn shard0_segments(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let shard_dir = dir.join("shard-0");
    let mut names: Vec<String> = std::fs::read_dir(&shard_dir)
        .expect("shard dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let bytes = std::fs::read(shard_dir.join(&n)).expect("segment");
            (n, bytes)
        })
        .collect()
}

/// How many whole records the first `prefix` bytes of the segment
/// stream hold — the settled seq a replica fed that prefix must serve.
fn settled_records(segments: &[(String, Vec<u8>)], mut prefix: usize) -> u64 {
    let mut settled = 0u64;
    for (_, bytes) in segments {
        let take = prefix.min(bytes.len());
        let p = decode_segment_prefix(&bytes[..take]);
        settled += p.records.len() as u64;
        prefix -= take;
        if prefix == 0 {
            break;
        }
    }
    settled
}

/// A recorded run: the primary's dir, its segment stream (name →
/// bytes, in log order), and `states[k]` = the database after `k`
/// commits.
type RecordedRun = (PathBuf, Vec<(String, Vec<u8>)>, Vec<Database>);

/// Run `commits` acked commits on a 1-shard durable primary,
/// snapshotting after each.
fn recorded_single_shard_run(tag: &str, commits: usize) -> RecordedRun {
    let dir = fresh_dir(tag);
    let engine = durable(&dir, 1);
    let mut states = vec![engine.snapshot()];
    for i in 0..commits {
        let i = i as i64;
        match i % 3 {
            0 => bump(&engine, (i * 97) % RANGE, i + 1),
            1 => bump(&engine, i + RANGE / 2, -i),
            // Delete + insert in one transaction: multi-row deltas.
            _ => engine
                .transact_keys(&[row![i], row![i + 1]], 1, |db| {
                    let t = db.table_mut("accounts")?;
                    t.delete_by_key(&row![(i - 2).max(0)]);
                    t.upsert(row![i + 1, format!("re\\pl{i}"), i])?;
                    Ok(())
                })
                .map(|_| ())
                .expect("acked commit"),
        }
        states.push(engine.snapshot());
    }
    engine.sync_wal().expect("final sync");
    drop(engine);
    let segments = shard0_segments(&dir);
    (dir, segments, states)
}

/// Feed a replica a growing copy of the primary's log, `step` bytes at
/// a time, asserting after every extension that the replica serves
/// exactly the settled prefix. `step = 1` walks every byte boundary.
fn assert_replica_follows_prefixes(tag: &str, commits: usize, step: usize) {
    let (primary_dir, segments, states) = recorded_single_shard_run(tag, commits);

    // The growing "primary": topology and the initial checkpoint are
    // complete (checkpoints appear by atomic rename — never torn), the
    // segment stream starts empty and grows byte by byte.
    let grow_dir = fresh_dir(&format!("{tag}-grow"));
    let grow_shard = grow_dir.join("shard-0");
    std::fs::create_dir_all(&grow_shard).expect("grow dir");
    std::fs::copy(
        primary_dir.join("topology.esm"),
        grow_dir.join("topology.esm"),
    )
    .expect("topology");
    for entry in std::fs::read_dir(primary_dir.join("shard-0")).expect("shard dir") {
        let entry = entry.expect("entry");
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".ckpt")) {
            std::fs::copy(entry.path(), grow_shard.join(&name)).expect("checkpoint");
        }
    }

    let mirror = fresh_dir(&format!("{tag}-mirror"));
    let replica = manual_replica(&grow_dir, &mirror, "");
    assert_eq!(replica.serving().snapshot(), states[0], "empty prefix");

    let total: usize = segments.iter().map(|(_, b)| b.len()).sum();
    let mut written = 0usize;
    while written < total {
        let grow = step.min(total - written);
        // Append `grow` bytes across the segment boundary if needed.
        let mut remaining = grow;
        let mut offset = written;
        for (name, bytes) in &segments {
            if offset >= bytes.len() {
                offset -= bytes.len();
                continue;
            }
            let take = remaining.min(bytes.len() - offset);
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(grow_shard.join(name))
                .expect("segment open");
            f.write_all(&bytes[offset..offset + take]).expect("append");
            remaining -= take;
            offset = 0;
            if remaining == 0 {
                break;
            }
        }
        written += grow;

        replica.sync_once().expect("sync");
        let settled = settled_records(&segments, written) as usize;
        assert_eq!(
            replica.serving().snapshot(),
            states[settled],
            "replica diverged at byte prefix {written} (settled seq {settled})"
        );
        assert_eq!(
            replica.applied_seqs().get(&0).copied(),
            Some(settled as u64),
            "applied seq wrong at byte prefix {written}"
        );
    }
    assert_eq!(
        replica.serving().snapshot(),
        *states.last().expect("states")
    );

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&grow_dir);
    let _ = std::fs::remove_dir_all(&mirror);
}

#[test]
fn replica_fed_every_byte_prefix_serves_the_settled_prefix() {
    assert_replica_follows_prefixes("every-byte", 24, 1);
}

proptest! {
    /// Random workload length, random (coarser) shipping chunk size:
    /// the prefix equivalence is not an artifact of one-byte steps.
    /// Each case replays a full durable run, so cap the sample at 6
    /// regardless of `PROPTEST_CASES` (the generator stays seeded by
    /// the test name, so the sampled cases are deterministic).
    #[test]
    fn replica_follows_random_chunked_prefixes(
        commits in 5usize..40,
        step in 1usize..97,
        salt in 0u32..1000,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASES_RUN: AtomicUsize = AtomicUsize::new(0);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) < 6 {
            assert_replica_follows_prefixes(&format!("chunk-{salt}-{commits}-{step}"), commits, step);
        }
    }
}

/// The promotion invariant, for both 2PC crash windows: every acked
/// commit survives, the in-doubt transaction settles all-or-nothing.
fn promote_after(failpoint: FailPoint, expect_committed: bool, tag: &str) {
    let dir = fresh_dir(&format!("promote-{tag}"));
    let mirror = fresh_dir(&format!("promote-{tag}-mirror"));
    let engine = durable(&dir, 3);
    engine.advertise("old-primary:4400");

    // Acked traffic on every shard, including settled 2PC.
    for i in 0..12 {
        bump(&engine, (i * 331) % RANGE, i + 1);
    }
    transfer(&engine, 0, 3900, FailPoint::None).expect("settled 2pc");
    transfer(&engine, 1500, 200, FailPoint::None).expect("settled 2pc");
    let acked = engine.snapshot();

    // Replica catches up to everything acknowledged so far.
    let replica = manual_replica(&dir, &mirror, "old-primary:4400");
    assert_eq!(replica.serving().snapshot(), acked);

    // The primary dies mid-2PC. The failpoint wedges the engine with
    // the in-doubt chain fsynced but unresolved (AfterPrepare) or
    // partially resolved (AfterResolves) — never acknowledged either
    // way, except past the commit point the outcome must still commit.
    let torn = transfer(&engine, 100, 3800, failpoint);
    assert!(torn.is_err(), "failpoint wedges the coordinator");
    drop(engine);

    // Failover: drain the dead primary's disk, recover over the mirror.
    let promotion = replica.promote("new-primary:4401").expect("promotes");
    let promoted = promotion.engine;
    assert_eq!(
        promoted.advertised_addr().as_deref(),
        Some("new-primary:4401")
    );

    // Every acked commit survived; the in-doubt transfer settled
    // all-or-nothing.
    let balance = |db: &Database, key: i64| -> i64 {
        db.table("accounts")
            .expect("table")
            .get_by_key(&row![key])
            .expect("row")[2]
            .as_int()
            .expect("int")
    };
    let after = promoted.snapshot();
    let (from_before, to_before) = (balance(&acked, 100), balance(&acked, 3800));
    let (from_after, to_after) = (balance(&after, 100), balance(&after, 3800));
    if expect_committed {
        assert_eq!(
            (from_after, to_after),
            (from_before - 7, to_before + 7),
            "past the commit point the transfer must finish"
        );
        assert!(promotion.report.committed_in_doubt >= 1);
    } else {
        assert_eq!(
            (from_after, to_after),
            (from_before, to_before),
            "before the commit point recovery must presume abort"
        );
        assert!(promotion.report.aborted_in_doubt >= 1);
    }
    // Money is conserved either way, and every acked row is intact.
    let mut check = after.clone();
    let t = check.table_mut("accounts").expect("table");
    if expect_committed {
        let f = t.get_by_key(&row![100]).expect("row").clone();
        let g = t.get_by_key(&row![3800]).expect("row").clone();
        t.upsert(row![100, f[1].clone(), f[2].as_int().unwrap() + 7])
            .expect("undo");
        t.upsert(row![3800, g[1].clone(), g[2].as_int().unwrap() - 7])
            .expect("undo");
        assert_eq!(check, acked, "only the transfer distinguishes the states");
    } else {
        assert_eq!(after, acked, "aborted in-doubt leaves the acked state");
    }

    // The promoted engine is a real primary: it takes writes.
    bump(&promoted, 100, 1);
    transfer(&promoted, 100, 3800, FailPoint::None).expect("2pc after promotion");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&mirror);
}

#[test]
fn promotion_presumes_abort_when_the_primary_dies_after_prepare() {
    promote_after(FailPoint::AfterPrepare, false, "after-prepare");
}

#[test]
fn promotion_finishes_the_commit_when_the_primary_died_past_the_commit_point() {
    promote_after(FailPoint::AfterResolves(1), true, "after-resolve");
}

#[test]
fn replicas_reject_writes_with_a_redirect_and_election_picks_the_most_caught_up() {
    let dir = fresh_dir("election");
    let engine = durable(&dir, 2);
    for i in 0..4 {
        bump(&engine, i * 500, 1);
    }
    engine.sync_wal().expect("sync");

    let mirror_a = fresh_dir("election-a");
    let mirror_b = fresh_dir("election-b");
    let behind = manual_replica(&dir, &mirror_a, "primary:1");
    // More acked traffic the first replica never ships.
    for i in 0..6 {
        bump(&engine, i * 300 + 100, 2);
    }
    engine.sync_wal().expect("sync");
    let caught_up = manual_replica(&dir, &mirror_b, "primary:1");

    // Write paths return the typed redirect, reads serve.
    let err = Engine::commit_checked(
        &behind,
        &[(
            "accounts".to_string(),
            Delta {
                inserted: vec![row![1, "x", 1]],
                deleted: vec![],
            },
        )],
    )
    .expect_err("replicas take no writes");
    assert_eq!(
        err,
        EngineError::NotPrimary {
            primary: "primary:1".to_string()
        }
    );
    assert!(Engine::table_names(&behind)
        .expect("reads serve")
        .contains(&"accounts".to_string()));

    let replicas = [behind, caught_up];
    assert_eq!(
        most_caught_up(&replicas),
        Some(1),
        "longest applied log wins"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&mirror_a);
    let _ = std::fs::remove_dir_all(&mirror_b);
}

#[test]
fn replication_lag_surfaces_in_metrics_gauges_and_prometheus() {
    let dir = fresh_dir("lag");
    let engine = durable(&dir, 2);
    bump(&engine, 10, 1);
    engine.sync_wal().expect("sync");

    let mirror = fresh_dir("lag-mirror");
    let replica = manual_replica(&dir, &mirror, "");
    // New acked commits the replica has not shipped yet: real lag. The
    // bare-directory source cannot see the primary's durable frontier,
    // so lag is measured against a live-engine source.
    for i in 0..5 {
        bump(&engine, 20 + i, 1);
    }
    engine.sync_wal().expect("sync");
    let live_source = engine.repl_source().expect("durable engine ships");
    let lagging = ReplicaEngine::bootstrap(
        Arc::new(OneShotStale::new(live_source)),
        ReplicaConfig::new(fresh_dir("lag-mirror2")).poll_interval_ms(0),
    )
    .expect("replica");
    lagging.sync_once().expect("sync");

    let m = lagging.metrics();
    assert!(m.repl.ship_passes >= 1);
    assert_eq!(m.repl.max_records_behind(), 0, "caught up after sync");
    assert_eq!(m.repl.lag.len(), 2, "one lag entry per shard");

    // Catch the replica mid-lag: stale mirror, fresh manifest seqs.
    for i in 0..3 {
        bump(&engine, 40 + i, 1);
    }
    engine.sync_wal().expect("sync");
    let snap = lagging.telemetry();
    let _ = snap; // gauges update on sync; force one more pass below
    lagging.sync_once().expect("sync");
    let snap = lagging.telemetry();
    assert!(
        snap.gauge("repl_lag_records").is_some(),
        "lag gauge registered"
    );
    let rendered = render_prometheus("esm", &snap);
    assert!(
        rendered.contains("# TYPE esm_repl_lag_records gauge"),
        "prometheus carries the lag gauge:\n{rendered}"
    );

    drop(replica);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&mirror);
}

/// A [`esm_engine::WalSource`] wrapper used to observe lag: serves the
/// wrapped source unchanged (the test drives staleness by committing
/// between syncs).
#[derive(Debug)]
struct OneShotStale {
    inner: Arc<dyn esm_engine::WalSource>,
}

impl OneShotStale {
    fn new(inner: Arc<dyn esm_engine::WalSource>) -> OneShotStale {
        OneShotStale { inner }
    }
}

impl esm_engine::WalSource for OneShotStale {
    fn manifest(&self) -> Result<esm_engine::ReplManifest, EngineError> {
        self.inner.manifest()
    }
    fn fetch(&self, shard: u64, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, EngineError> {
        self.inner.fetch(shard, file, offset, len)
    }
}

#[test]
fn skewed_commit_stream_auto_splits_until_rates_level() {
    // In-memory sharded engine: the policy acts through the same online
    // split/merge paths durability uses, and in-memory ticks are fast
    // enough to watch EWMAs converge.
    let engine = ShardedEngineServer::with_router(
        baseline(4),
        ShardRouter::uniform_int(2, 0, RANGE).expect("router"),
    )
    .expect("sharded engine");

    let mut policy = RebalancePolicy::new(PolicyConfig {
        interval_ms: 0, // unused — ticks are driven manually
        alpha_milli: 700,
        split_skew_milli: 2000,
        min_rows_split: 8,
        max_shards: 8,
        merge_skew_milli: 4000,
        min_shards: 1,
        cooldown_ticks: 1,
    });

    let mut splits = 0usize;
    let mut leveled = false;
    for round in 0..400 {
        // 90% of commits land uniformly across the upper half of the
        // key space, 10% in the lower: shard 1 starts 9x hotter.
        // "Uniform" must hold per round, not just in aggregate — each
        // round's 18 hot keys are evenly spaced over the whole upper
        // half (sliding by one key per round), so every post-split
        // shard keeps a steady rate and the EWMAs can settle.
        for i in 0..20i64 {
            let key = if i % 10 == 0 {
                (i / 10) * (RANGE / 4) + (round as i64 % 997)
            } else {
                RANGE / 2 + (i * (RANGE / 2) / 20 + round as i64) % (RANGE / 2)
            };
            bump(&engine, key, 1);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        match policy.tick(&engine).expect("tick") {
            PolicyAction::Split(_, _) => splits += 1,
            PolicyAction::Merge(_) => {}
            PolicyAction::None => {}
        }
        let m = engine.metrics();
        // Steady state: splits stop once every hot shard's rate is
        // within 2x of the cold shard's — the acceptance bound.
        if splits >= 1 && m.shard.commit_rate_skew_milli <= 2000 {
            leveled = true;
            break;
        }
    }
    assert!(
        splits >= 1,
        "skewed load must trigger at least one auto-split"
    );
    assert!(
        leveled,
        "per-shard commit rates must level within the skew bound"
    );
    let m = engine.metrics();
    assert_eq!(m.shard.auto_splits, splits as u64);
    assert!(
        m.shard.splits >= m.shard.auto_splits,
        "policy splits are real splits"
    );
    assert!(!m.shard_load.is_empty(), "policy publishes the load view");
}
