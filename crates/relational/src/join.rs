//! The join lens (delete-left policy): a natural join as a bidirectional
//! view over a *pair* of source tables.

use esm_lens::Lens;
use esm_store::{StoreError, Table};

/// The `join_dl` lens: `get` is the natural join; `put` propagates view
/// deletions to the **left** table (hence "delete-left") and upserts the
/// right table's projection.
///
/// ```text
/// get(l, r)      = l ⋈ r
/// put((l, r), v) = ( π_{cols(l)}(v),  r ⊎ π_{cols(r)}(v) )
/// ```
///
/// Well-behavedness domain (the relational-lenses typing obligations,
/// reproduced here as documented preconditions and checked by the law
/// suites):
/// * the right table's key must be contained in the shared (join)
///   columns, so each left row joins at most one right row and upserts
///   replace by join key;
/// * *referential integrity*: every left row must match some right row
///   (otherwise (GetPut) fails — the unmatched row vanishes);
/// * written-back views must be join-consistent: their right-column
///   projection functional on the join key (otherwise (PutGet) fails).
///
/// [`validate_join_sources`] checks the source-side preconditions.
pub fn join_dl_lens() -> Lens<(Table, Table), Table> {
    Lens::new(
        |s: &(Table, Table)| {
            s.0.natural_join(&s.1)
                .expect("join lens sources must be join-compatible")
        },
        |s: (Table, Table), v: Table| {
            let (l, r) = s;
            let cols_l: Vec<String> = l
                .schema()
                .column_names()
                .into_iter()
                .map(str::to_string)
                .collect();
            let cols_r: Vec<String> = r
                .schema()
                .column_names()
                .into_iter()
                .map(str::to_string)
                .collect();
            let l_rows = v
                .project(&cols_l)
                .expect("view must contain the left columns");
            // Rebuild with the *source* schema: the projection's inferred
            // key metadata differs from the left table's declared key.
            let l2 = Table::from_rows(l.schema().clone(), l_rows.rows().cloned())
                .expect("projected view rows fit the left schema");
            let r_updates = v
                .project(&cols_r)
                .expect("view must contain the right columns");
            let mut r2 = r;
            for row in r_updates.rows() {
                r2.upsert(row.clone())
                    .expect("projected view rows fit the right schema");
            }
            (l2, r2)
        },
    )
}

/// Validate the join lens's source-side preconditions: shared columns
/// exist, the right key is contained in them, and every left row matches
/// some right row (referential integrity).
pub fn validate_join_sources(l: &Table, r: &Table) -> Result<(), StoreError> {
    let shared = l.schema().shared_columns(r.schema())?;
    if shared.is_empty() {
        return Err(StoreError::BadQuery("join lens: no shared columns".into()));
    }
    if r.schema().key().is_empty() || !r.schema().key().iter().all(|k| shared.contains(k)) {
        return Err(StoreError::BadQuery(format!(
            "join lens: right key {:?} must be contained in the join columns {shared:?}",
            r.schema().key()
        )));
    }
    let l_shared = l.schema().indices_of(&shared)?;
    let r_shared = r.schema().indices_of(&shared)?;
    // One pass to collect the right join keys, then O(log n) probes per
    // left row instead of rescanning the right table for each.
    let r_keys: std::collections::BTreeSet<Vec<&esm_store::Value>> = r
        .rows()
        .map(|rrow| r_shared.iter().map(|&i| &rrow[i]).collect())
        .collect();
    for lrow in l.rows() {
        let key: Vec<_> = l_shared.iter().map(|&i| &lrow[i]).collect();
        let matched = r_keys.contains(&key);
        if !matched {
            return Err(StoreError::BadQuery(format!(
                "join lens: left row {lrow:?} has no right match (referential integrity)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_lens::laws::{check_get_put, check_well_behaved};
    use esm_store::{row, Row, Schema, ValueType};

    fn orders(rows: Vec<Row>) -> Table {
        Table::from_rows(
            Schema::build(
                &[
                    ("oid", ValueType::Int),
                    ("pid", ValueType::Int),
                    ("qty", ValueType::Int),
                ],
                &["oid"],
            )
            .unwrap(),
            rows,
        )
        .unwrap()
    }

    fn products(rows: Vec<Row>) -> Table {
        Table::from_rows(
            Schema::build(
                &[("pid", ValueType::Int), ("pname", ValueType::Str)],
                &["pid"],
            )
            .unwrap(),
            rows,
        )
        .unwrap()
    }

    fn joined(rows: Vec<Row>) -> Table {
        Table::from_rows(
            Schema::build(
                &[
                    ("oid", ValueType::Int),
                    ("pid", ValueType::Int),
                    ("qty", ValueType::Int),
                    ("pname", ValueType::Str),
                ],
                &["oid", "pid"],
            )
            .unwrap(),
            rows,
        )
        .unwrap()
    }

    fn good_sources() -> (Table, Table) {
        (
            orders(vec![row![100, 1, 3], row![101, 2, 1]]),
            products(vec![row![1, "widget"], row![2, "gadget"]]),
        )
    }

    #[test]
    fn get_is_the_natural_join() {
        let l = join_dl_lens();
        let v = l.get(&good_sources());
        assert_eq!(v.len(), 2);
        assert!(v.contains(&row![100, 1, 3, "widget"]));
    }

    #[test]
    fn put_deletes_left_keeps_right() {
        let l = join_dl_lens();
        // Remove order 101 from the view.
        let v = joined(vec![row![100, 1, 3, "widget"]]);
        let (l2, r2) = l.put(good_sources(), v);
        assert_eq!(l2.len(), 1); // order deleted
        assert_eq!(r2.len(), 2); // product kept (delete-left policy)
    }

    #[test]
    fn put_propagates_edits_to_both_sides() {
        let l = join_dl_lens();
        // Rename widget and bump the order quantity through the view.
        let v = joined(vec![
            row![100, 1, 5, "widget pro"],
            row![101, 2, 1, "gadget"],
        ]);
        let (l2, r2) = l.put(good_sources(), v);
        assert!(l2.contains(&row![100, 1, 5]));
        assert!(r2.contains(&row![1, "widget pro"]));
    }

    #[test]
    fn put_inserts_into_both_sides() {
        let l = join_dl_lens();
        let v = joined(vec![
            row![100, 1, 3, "widget"],
            row![101, 2, 1, "gadget"],
            row![102, 3, 9, "sprocket"],
        ]);
        let (l2, r2) = l.put(good_sources(), v);
        assert!(l2.contains(&row![102, 3, 9]));
        assert!(r2.contains(&row![3, "sprocket"]));
    }

    #[test]
    fn lawful_on_the_documented_domain() {
        let l = join_dl_lens();
        let sources = [good_sources()];
        let views = [
            joined(vec![row![100, 1, 3, "widget"], row![101, 2, 1, "gadget"]]),
            joined(vec![row![100, 2, 7, "gadget"]]),
            joined(vec![]),
        ];
        assert!(check_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn get_put_fails_without_referential_integrity() {
        // Order 102 references product 9 which doesn't exist: the row is
        // invisible in the view and vanishes on write-back.
        let bad = (
            orders(vec![row![100, 1, 3], row![102, 9, 1]]),
            products(vec![row![1, "widget"]]),
        );
        assert!(validate_join_sources(&bad.0, &bad.1).is_err());
        let l = join_dl_lens();
        assert!(!check_get_put(&l, &[bad]).is_empty());
    }

    #[test]
    fn validate_accepts_good_sources() {
        let (l, r) = good_sources();
        assert!(validate_join_sources(&l, &r).is_ok());
    }

    #[test]
    fn validate_rejects_right_key_outside_join_columns() {
        // Right table keyed on a non-shared column.
        let r = Table::from_rows(
            Schema::build(
                &[("pid", ValueType::Int), ("pname", ValueType::Str)],
                &["pname"],
            )
            .unwrap(),
            vec![row![1, "widget"]],
        )
        .unwrap();
        let l = orders(vec![row![100, 1, 3]]);
        assert!(validate_join_sources(&l, &r).is_err());
    }
}
