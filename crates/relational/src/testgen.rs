//! Seeded random generators for tables and views, used by the law suites,
//! integration tests and benchmarks.
//!
//! Generators are deterministic given a seed, so every failure is
//! reproducible. They generate data *within the documented
//! well-behavedness domains* of the relational lenses (unique keys,
//! predicate-respecting views, referential integrity), since that is where
//! the laws are claimed to hold; the negative tests construct their own
//! out-of-domain data by hand.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use esm_store::{Row, Schema, Table, Value, ValueType};

/// The fixed schema used by generated "people" tables:
/// `(*id: int, name: str, age: int)`.
pub fn people_schema() -> Schema {
    Schema::build(
        &[
            ("id", ValueType::Int),
            ("name", ValueType::Str),
            ("age", ValueType::Int),
        ],
        &["id"],
    )
    .expect("static schema is valid")
}

/// Generate a people table with `n` rows and distinct ids, ages in
/// `0..100`.
pub fn gen_people(seed: u64, n: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Row> = Vec::with_capacity(n);
    let mut ids: Vec<i64> = (0..(n as i64 * 2)).collect();
    for i in 0..n {
        let idx = rng.gen_range(0..ids.len());
        let id = ids.swap_remove(idx);
        rows.push(vec![
            Value::Int(id),
            Value::Str(format!("p{i}")),
            Value::Int(rng.gen_range(0..100)),
        ]);
    }
    Table::from_rows(people_schema(), rows).expect("generated keys are distinct")
}

/// Generate a view for the "adults" select lens: rows with distinct ids
/// and ages in `min_age..100` (all satisfy `age >= min_age`).
pub fn gen_adults_view(seed: u64, n: usize, min_age: i64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Row> = Vec::with_capacity(n);
    let mut ids: Vec<i64> = (1000..(1000 + n as i64 * 2)).collect();
    for i in 0..n {
        let idx = rng.gen_range(0..ids.len());
        let id = ids.swap_remove(idx);
        rows.push(vec![
            Value::Int(id),
            Value::Str(format!("v{i}")),
            Value::Int(rng.gen_range(min_age..100)),
        ]);
    }
    Table::from_rows(people_schema(), rows).expect("generated keys are distinct")
}

/// The schemas used by generated order/product pairs for the join lens.
pub fn orders_schema() -> Schema {
    Schema::build(
        &[
            ("oid", ValueType::Int),
            ("pid", ValueType::Int),
            ("qty", ValueType::Int),
        ],
        &["oid"],
    )
    .expect("static schema is valid")
}

/// Schema of the products side of the generated join pair.
pub fn products_schema() -> Schema {
    Schema::build(
        &[("pid", ValueType::Int), ("pname", ValueType::Str)],
        &["pid"],
    )
    .expect("static schema is valid")
}

/// Generate a referentially-intact (orders, products) pair: `n_orders`
/// orders over `n_products` products, every order's product existing.
pub fn gen_orders_products(seed: u64, n_orders: usize, n_products: usize) -> (Table, Table) {
    assert!(n_products > 0, "need at least one product");
    let mut rng = StdRng::seed_from_u64(seed);
    let products: Vec<Row> = (0..n_products)
        .map(|p| vec![Value::Int(p as i64), Value::Str(format!("prod{p}"))])
        .collect();
    let orders: Vec<Row> = (0..n_orders)
        .map(|o| {
            vec![
                Value::Int(o as i64),
                Value::Int(rng.gen_range(0..n_products as i64)),
                Value::Int(rng.gen_range(1..10)),
            ]
        })
        .collect();
    (
        Table::from_rows(orders_schema(), orders).expect("order ids are distinct"),
        Table::from_rows(products_schema(), products).expect("product ids are distinct"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::validate_join_sources;
    use crate::select::validate_select_view;
    use esm_store::{Operand, Predicate};

    #[test]
    fn people_tables_have_exact_row_counts_and_unique_keys() {
        let t = gen_people(42, 50);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(gen_people(7, 20), gen_people(7, 20));
        assert_ne!(gen_people(7, 20), gen_people(8, 20));
    }

    #[test]
    fn adult_views_respect_the_predicate() {
        let v = gen_adults_view(1, 30, 18);
        let p = Predicate::ge(Operand::col("age"), Operand::val(18));
        assert!(validate_select_view(&p, &v).is_ok());
    }

    #[test]
    fn generated_join_sources_validate() {
        let (o, p) = gen_orders_products(5, 40, 7);
        assert_eq!(o.len(), 40);
        assert_eq!(p.len(), 7);
        assert!(validate_join_sources(&o, &p).is_ok());
    }
}
